//! Engine-equivalence property suite: FuzzyFlow's own differential-testing
//! method applied to our two execution engines.
//!
//! Random small SDFGs — maps (strided, nested, parameter-dependent),
//! tasklets with selects, WCR accumulation, non-affine subscripts, device
//! (garbage-initialized) containers, inter-state loops and library nodes —
//! run on both the legacy tree-walk interpreter and the compiled
//! [`Program`], on identical inputs. Results must match bit for bit:
//! the `Result` (including the exact `ExecError`), the final `ExecState`
//! (exact bits, not tolerance), and the recorded coverage.

use fuzzyflow_interp::coverage::MAP_SIZE;
use fuzzyflow_interp::value::GARBAGE_BITS;
use fuzzyflow_interp::{
    jit_native_runs, jit_native_runs_split, run_with_tree_walk, ArrayValue, CompileOptions,
    CoverageMap, ExecError, ExecOptions, ExecState, Program, ResetPolicy,
};
use fuzzyflow_ir::{
    sym, BinOp, CmpOp, DType, LibraryOp, Memlet, ScalarExpr, Schedule, Sdfg, SdfgBuilder, Storage,
    Subset, SymExpr, SymRange, Tasklet, TaskletStmt, UnOp, Wcr,
};
use proptest::prelude::*;

/// Knobs of one generated program + input.
#[derive(Clone, Debug)]
struct Cfg {
    n: i64,
    /// Map stride (1 = dense).
    stride: i64,
    /// Subscript offset; > 0 without `use_mod` produces out-of-bounds
    /// accesses, exercising crash-parity.
    offset: i64,
    /// Wrap the subscript in `% N` — a non-affine form that forces the
    /// compiled-expression fallback.
    use_mod: bool,
    wcr: Option<Wcr>,
    select: bool,
    /// Add a device-storage transient read (deterministic garbage).
    device: bool,
    /// Add an inter-state counting loop driven by edge assignments.
    loop_states: bool,
    /// 0 = none, 1 = softmax, 2 = reduce-sum.
    lib: u8,
    /// Step budget; small values exercise hang-oracle parity.
    max_steps: u64,
    vals: Vec<i64>,
}

fn arb_cfg() -> impl Strategy<Value = Cfg> {
    (
        (1i64..7, 1i64..4, 0i64..3, 0usize..2, 0usize..4),
        (0usize..2, 0usize..2, 0usize..2, 0u8..3, 0usize..3),
        proptest::collection::vec(-100i64..100, 8..9),
    )
        .prop_map(
            |(
                (n, stride, offset, use_mod, wcr),
                (select, device, loop_states, lib, budget),
                vals,
            )| Cfg {
                n,
                stride,
                offset,
                use_mod: use_mod == 1,
                wcr: match wcr {
                    0 | 1 => None,
                    2 => Some(Wcr::Sum),
                    _ => Some(Wcr::Max),
                },
                select: select == 1,
                device: device == 1,
                loop_states: loop_states == 1,
                lib,
                max_steps: match budget {
                    0 => 40,
                    1 => 400,
                    _ => 1_000_000,
                },
                vals,
            },
        )
}

/// Builds the program described by `cfg`.
fn build(cfg: &Cfg) -> Sdfg {
    let mut b = SdfgBuilder::new("equiv");
    b.symbol("N");
    b.array("A", DType::F64, &["N"]);
    b.array("B", DType::F64, &["N"]);
    b.scalar("s", DType::F64);
    if cfg.device {
        b.array_desc(
            "D",
            fuzzyflow_ir::DataDesc::array(DType::F64, vec![sym("N")])
                .transient()
                .in_storage(Storage::Device),
        );
        b.array("C", DType::F64, &["N"]);
    }
    if cfg.lib > 0 {
        b.array("L", DType::F64, &["N"]);
    }
    let st = b.start();
    let offset = cfg.offset;
    let use_mod = cfg.use_mod;
    let wcr = cfg.wcr;
    let select = cfg.select;
    let stride = cfg.stride;
    let device = cfg.device;
    let lib = cfg.lib;
    b.in_state(st, |df| {
        let a = df.access("A");
        let o = df.access("B");
        let subscript: SymExpr = if use_mod {
            (sym("i") + SymExpr::Int(offset)).rem(sym("N"))
        } else {
            sym("i") + SymExpr::Int(offset)
        };
        let m = df.map(
            &["i"],
            vec![SymRange::strided(
                SymExpr::Int(0),
                sym("N"),
                SymExpr::Int(stride),
            )],
            Schedule::Parallel,
            |body| {
                let a = body.access("A");
                let o = body.access("B");
                let expr = if select {
                    ScalarExpr::r("x").lt(ScalarExpr::f64(0.0)).select(
                        ScalarExpr::r("x").neg(),
                        ScalarExpr::r("x").add(ScalarExpr::r("i")),
                    )
                } else {
                    ScalarExpr::r("x")
                        .mul(ScalarExpr::f64(2.0))
                        .add(ScalarExpr::r("i"))
                };
                let t = body.tasklet(Tasklet::with_code(
                    "t",
                    vec!["x"],
                    vec!["y"],
                    vec![
                        TaskletStmt {
                            dst: "tmp".into(),
                            value: expr,
                        },
                        TaskletStmt {
                            dst: "y".into(),
                            value: ScalarExpr::r("tmp"),
                        },
                    ],
                ));
                body.read(
                    a,
                    t,
                    Memlet::new("A", Subset::at(vec![subscript.clone()])).to_conn("x"),
                );
                let mut w = Memlet::new("B", Subset::at(vec![sym("i")])).from_conn("y");
                if let Some(w_op) = wcr {
                    w = w.with_wcr(w_op);
                }
                body.write(t, o, w);
            },
        );
        df.auto_wire(m, &[a], &[o]);

        if device {
            // Read the uninitialized device buffer into a host container —
            // the CLOUDSC garbage-copyback pattern (paper Fig. 7).
            let d = df.access("D");
            let c = df.access("C");
            let m2 = df.map(
                &["j"],
                vec![SymRange::full(sym("N"))],
                Schedule::Parallel,
                |body| {
                    let d = body.access("D");
                    let c = body.access("C");
                    let t = body.tasklet(Tasklet::simple("cp", vec!["g"], "h", ScalarExpr::r("g")));
                    body.read(
                        d,
                        t,
                        Memlet::new("D", Subset::at(vec![sym("j")])).to_conn("g"),
                    );
                    body.write(
                        t,
                        c,
                        Memlet::new("C", Subset::at(vec![sym("j")])).from_conn("h"),
                    );
                },
            );
            df.auto_wire(m2, &[d], &[c]);
        }

        if lib > 0 {
            let a2 = df.access("A");
            let l = df.access("L");
            let node = if lib == 1 {
                df.library("soft", LibraryOp::Softmax)
            } else {
                df.library(
                    "red",
                    LibraryOp::Reduce {
                        op: Wcr::Sum,
                        axis: 0,
                    },
                )
            };
            df.read(
                a2,
                node,
                Memlet::new("A", Subset::full(&[sym("N")])).to_conn("in"),
            );
            let out_subset = if lib == 1 {
                Subset::full(&[sym("N")])
            } else {
                Subset::at(vec![SymExpr::Int(0)])
            };
            df.write(node, l, Memlet::new("L", out_subset).from_conn("out"));
        }
    });

    if cfg.loop_states {
        // start -> body (k=0); body -> body (k<3, k+=1, s += k via tasklet);
        // body -> exit (k>=3).
        let body = b.add_state("loop_body");
        let exit = b.add_state("exit");
        b.edge(
            st,
            body,
            fuzzyflow_ir::InterstateEdge::always().assign("k", SymExpr::Int(0)),
        );
        b.in_state(body, |df| {
            let s_in = df.access("s");
            let s_out = df.access("s");
            let t = df.tasklet(Tasklet::simple(
                "acc",
                vec!["v"],
                "w",
                ScalarExpr::r("v").add(ScalarExpr::r("k")),
            ));
            df.read(s_in, t, Memlet::new("s", Subset::new(vec![])).to_conn("v"));
            df.write(
                t,
                s_out,
                Memlet::new("s", Subset::new(vec![])).from_conn("w"),
            );
        });
        b.edge(
            body,
            body,
            fuzzyflow_ir::InterstateEdge::when(fuzzyflow_ir::CondExpr::cmp(
                fuzzyflow_ir::SymCmpOp::Lt,
                sym("k"),
                SymExpr::Int(3),
            ))
            .assign("k", sym("k") + SymExpr::Int(1)),
        );
        b.edge(
            body,
            exit,
            fuzzyflow_ir::InterstateEdge::when(fuzzyflow_ir::CondExpr::cmp(
                fuzzyflow_ir::SymCmpOp::Ge,
                sym("k"),
                SymExpr::Int(3),
            )),
        );
    }
    b.build()
}

fn input_for(cfg: &Cfg) -> ExecState {
    let mut st = ExecState::new();
    st.bind("N", cfg.n);
    let vals: Vec<f64> = (0..cfg.n as usize)
        .map(|i| cfg.vals[i % cfg.vals.len()] as f64 / 8.0)
        .collect();
    st.set_array("A", ArrayValue::from_f64(vec![cfg.n], &vals));
    st
}

/// Runs all four engines — the tree walk, the generic compiled bytecode
/// (`specialize_f64 = false`), the per-element f64 fast path
/// (`fuse_maps = false`) and the default compiled program with fused map
/// kernels — on identical inputs, asserting bit-identical results, final
/// states and coverage. Returns the shared outcome.
fn assert_engines_agree(p: &Sdfg, input: &ExecState, max_steps: u64) -> Result<(), ExecError> {
    let opts = ExecOptions {
        max_steps,
        ..ExecOptions::default()
    };

    let mut tree_state = input.clone();
    let mut tree_cov = CoverageMap::new();
    let tree_res = run_with_tree_walk(p, &mut tree_state, &opts, None, Some(&mut tree_cov));

    let prog = Program::compile(p);
    let mut comp_state = input.clone();
    let mut comp_cov = CoverageMap::new();
    let comp_res = prog.run_with(&mut comp_state, &opts, None, Some(&mut comp_cov));

    assert_eq!(tree_res, comp_res, "engine results diverge");
    assert_states_bit_identical(&tree_state, &comp_state);

    let generic = Program::compile_with_options(
        p,
        &CompileOptions {
            specialize_f64: false,
            ..Default::default()
        },
    );
    let mut gen_state = input.clone();
    let mut gen_cov = CoverageMap::new();
    let gen_res = generic.run_with(&mut gen_state, &opts, None, Some(&mut gen_cov));
    assert_eq!(tree_res, gen_res, "generic bytecode diverges");
    assert_states_bit_identical(&tree_state, &gen_state);

    let unfused = Program::compile_with_options(
        p,
        &CompileOptions {
            fuse_maps: false,
            ..Default::default()
        },
    );
    let mut unf_state = input.clone();
    let mut unf_cov = CoverageMap::new();
    let unf_res = unfused.run_with(&mut unf_state, &opts, None, Some(&mut unf_cov));
    assert_eq!(tree_res, unf_res, "per-element fast path diverges");
    assert_states_bit_identical(&tree_state, &unf_state);

    // Sixth axis: the default run above had the native JIT tier enabled
    // (wherever its static and runtime eligibility held); the same fused
    // program with the JIT forced off must stay bit-identical in
    // results, errors, final state, step accounting and coverage.
    let mut nojit_opts = opts.clone();
    nojit_opts.jit = false;
    let mut nj_state = input.clone();
    let mut nj_cov = CoverageMap::new();
    let nj_res = prog.run_with(&mut nj_state, &nojit_opts, None, Some(&mut nj_cov));
    assert_eq!(tree_res, nj_res, "jit-off fused engine diverges");
    assert_states_bit_identical(&tree_state, &nj_state);

    // Seventh axis: the same jit-on/jit-off pair *without* coverage.
    // Coverage interleaves per-branch records for select bodies and
    // blocks the native tier there, so this pair is where select
    // kernels — scalar `jcc` bodies and the packed tier's unrolled
    // lane-scalar mode — actually execute native code. Both runs must
    // stay bit-identical to the tree walk.
    let mut nc_state = input.clone();
    let nc_res = prog.run_with(&mut nc_state, &opts, None, None);
    assert_eq!(tree_res, nc_res, "no-coverage jit run diverges");
    assert_states_bit_identical(&tree_state, &nc_state);
    let mut nc_off_state = input.clone();
    let nc_off_res = prog.run_with(&mut nc_off_state, &nojit_opts, None, None);
    assert_eq!(tree_res, nc_off_res, "no-coverage jit-off run diverges");
    assert_states_bit_identical(&tree_state, &nc_off_state);

    let mut tree_virgin = [0u8; MAP_SIZE];
    let mut comp_virgin = [0u8; MAP_SIZE];
    let mut gen_virgin = [0u8; MAP_SIZE];
    let mut unf_virgin = [0u8; MAP_SIZE];
    let mut nj_virgin = [0u8; MAP_SIZE];
    tree_cov.merge_into(&mut tree_virgin);
    comp_cov.merge_into(&mut comp_virgin);
    gen_cov.merge_into(&mut gen_virgin);
    unf_cov.merge_into(&mut unf_virgin);
    nj_cov.merge_into(&mut nj_virgin);
    assert!(
        tree_virgin[..] == nj_virgin[..],
        "jit-off coverage map diverges ({} vs {} edges)",
        tree_cov.edges_hit(),
        nj_cov.edges_hit()
    );
    assert!(
        tree_virgin[..] == comp_virgin[..],
        "coverage maps diverge (tree {} edges, compiled {} edges)",
        tree_cov.edges_hit(),
        comp_cov.edges_hit()
    );
    assert!(
        tree_virgin[..] == gen_virgin[..],
        "generic coverage map diverges ({} vs {} edges)",
        tree_cov.edges_hit(),
        gen_cov.edges_hit()
    );
    assert!(
        tree_virgin[..] == unf_virgin[..],
        "per-element fast-path coverage map diverges ({} vs {} edges)",
        tree_cov.edges_hit(),
        unf_cov.edges_hit()
    );

    // A reused executor must behave exactly like a fresh one (the arena
    // reset is what the trial loop relies on). The fifth equivalence axis
    // runs the reuse under both reset policies: the dirty-region reset
    // must stay bit-identical — results, states, step accounting and
    // coverage — to the exhaustive full reset across repeated trials.
    let mut dirty_opts = opts.clone();
    dirty_opts.reset = ResetPolicy::Dirty;
    let mut full_opts = opts.clone();
    full_opts.reset = ResetPolicy::Full;
    let mut dirty_exec = prog.executor();
    let mut full_exec = prog.executor();
    for trial in 0..3 {
        let mut dirty_cov = CoverageMap::new();
        let mut full_cov = CoverageMap::new();
        let d = dirty_exec.execute(input, &dirty_opts, None, Some(&mut dirty_cov));
        let f = full_exec.execute(input, &full_opts, None, Some(&mut full_cov));
        assert_eq!(
            format!("{d:?}"),
            format!("{tree_res:?}"),
            "reused executor diverges on trial {trial}"
        );
        assert_eq!(
            format!("{d:?}"),
            format!("{f:?}"),
            "dirty-reset result diverges from full reset on trial {trial}"
        );
        if tree_res.is_ok() {
            assert_states_bit_identical(&tree_state, &dirty_exec.to_state());
        }
        assert_states_bit_identical(&dirty_exec.to_state(), &full_exec.to_state());
        let mut dirty_virgin = [0u8; MAP_SIZE];
        let mut full_virgin = [0u8; MAP_SIZE];
        dirty_cov.merge_into(&mut dirty_virgin);
        full_cov.merge_into(&mut full_virgin);
        assert!(
            dirty_virgin[..] == full_virgin[..],
            "dirty-reset coverage diverges from full reset on trial {trial}"
        );
        assert!(
            dirty_virgin[..] == tree_virgin[..],
            "reused-executor coverage diverges from fresh run on trial {trial}"
        );
    }
    tree_res
}

/// Bit-exact state equality: same symbols, same containers, same dtypes,
/// shapes and element bits (NaN-safe, unlike `PartialEq` on floats).
fn assert_states_bit_identical(a: &ExecState, b: &ExecState) {
    assert_eq!(a.symbols, b.symbols, "final symbol bindings diverge");
    let names_a: Vec<&String> = a.arrays.keys().collect();
    let names_b: Vec<&String> = b.arrays.keys().collect();
    assert_eq!(names_a, names_b, "container sets diverge");
    for (name, arr_a) in &a.arrays {
        let arr_b = &b.arrays[name];
        assert_eq!(arr_a.dtype(), arr_b.dtype(), "dtype of '{name}' diverges");
        assert_eq!(arr_a.shape(), arr_b.shape(), "shape of '{name}' diverges");
        assert_eq!(
            arr_a.first_mismatch(arr_b, 0.0),
            None,
            "contents of '{name}' diverge"
        );
    }
}

proptest! {
    /// The headline property: for arbitrary generated programs and inputs,
    /// the compiled engine is bit-identical to the tree-walk engine —
    /// results, errors, final states, step accounting and coverage.
    #[test]
    fn compiled_engine_matches_tree_walk(cfg in arb_cfg()) {
        let p = build(&cfg);
        let input = input_for(&cfg);
        let _ = assert_engines_agree(&p, &input, cfg.max_steps);
    }
}

// ----- deterministic plan-level parity tests ---------------------------

/// `A[(i + 1) % N]` is non-affine: the compiler must fall back to the
/// compiled-expression form and still match the tree walk bit for bit.
#[test]
fn non_affine_subscript_fallback_matches() {
    let cfg = Cfg {
        n: 5,
        stride: 1,
        offset: 1,
        use_mod: true,
        wcr: None,
        select: false,
        device: false,
        loop_states: false,
        lib: 0,
        max_steps: 1_000_000,
        vals: (0..8).collect(),
    };
    let p = build(&cfg);
    let res = assert_engines_agree(&p, &input_for(&cfg), cfg.max_steps);
    assert!(res.is_ok(), "modular subscript stays in bounds: {res:?}");
}

/// `A[i + 2]` runs out of bounds: the compiled engine must report the
/// same `ExecError::OutOfBounds`, with the same point and shape.
#[test]
fn out_of_bounds_error_parity() {
    let cfg = Cfg {
        n: 4,
        stride: 1,
        offset: 2,
        use_mod: false,
        wcr: None,
        select: false,
        device: false,
        loop_states: false,
        lib: 0,
        max_steps: 1_000_000,
        vals: (0..8).collect(),
    };
    let p = build(&cfg);
    let res = assert_engines_agree(&p, &input_for(&cfg), cfg.max_steps);
    match res {
        Err(ExecError::OutOfBounds { data, point, shape }) => {
            assert_eq!(data, "A");
            assert_eq!(point, vec![4]);
            assert_eq!(shape, vec![4]);
        }
        other => panic!("expected OutOfBounds, got {other:?}"),
    }
}

/// Device containers read back the deterministic GARBAGE_BITS pattern in
/// both engines (the paper's uninitialized-GPU-memory oracle).
#[test]
fn garbage_bits_read_parity() {
    let cfg = Cfg {
        n: 3,
        stride: 1,
        offset: 0,
        use_mod: false,
        wcr: None,
        select: false,
        device: true,
        loop_states: false,
        lib: 0,
        max_steps: 1_000_000,
        vals: (0..8).collect(),
    };
    let p = build(&cfg);
    let input = input_for(&cfg);
    assert_engines_agree(&p, &input, cfg.max_steps).unwrap();
    let prog = Program::compile(&p);
    let mut st = input.clone();
    prog.run(&mut st).unwrap();
    let c = st.array("C").unwrap();
    for i in 0..c.len() {
        assert_eq!(
            c.get(i).as_f64().to_bits(),
            GARBAGE_BITS,
            "element {i} is not the garbage pattern"
        );
    }
}

/// The step budget (hang oracle) trips at the identical step in both
/// engines — the strongest check that tick accounting matches.
#[test]
fn step_limit_parity_across_budgets() {
    let cfg = Cfg {
        n: 6,
        stride: 1,
        offset: 0,
        use_mod: false,
        wcr: Some(Wcr::Sum),
        select: true,
        device: true,
        loop_states: true,
        lib: 1,
        max_steps: 0, // overwritten below
        vals: (0..8).collect(),
    };
    let p = build(&cfg);
    let input = input_for(&cfg);
    let mut seen_hang = false;
    for budget in 1..120u64 {
        let res = assert_engines_agree(&p, &input, budget);
        if matches!(res, Err(ExecError::StepLimitExceeded { .. })) {
            seen_hang = true;
        }
    }
    assert!(seen_hang, "small budgets must trip the hang oracle");
}

/// Subscript lowering must not change *overflow* behavior: expressions
/// whose tree evaluation overflows (or doesn't) at i64 extremes must do
/// exactly the same after compilation — algebraically simplifying
/// `0 * (N + M)` or redistributing `a - b` would diverge. Regression test
/// for the affine access-plan recognizer.
#[test]
fn overflow_error_parity_in_subscripts() {
    let cases: [(SymExpr, i64, i64); 4] = [
        // Tree evaluates N + M first -> overflow; folding the zero
        // coefficient away would silently return 0.
        (SymExpr::Int(0) * (sym("N") + sym("M")), i64::MAX, 1),
        // Tree computes -1 - M = i64::MAX (no overflow); negating M's
        // coefficient at compile time would overflow spuriously.
        (SymExpr::Int(-1) - sym("M"), 0, i64::MIN),
        // Plain affine chain at the overflow edge.
        (sym("N") + SymExpr::Int(1), i64::MAX, 0),
        // Right-nested constant: tree folds M + 1 first.
        (sym("N") + (sym("M") + SymExpr::Int(1)), 1, i64::MAX),
    ];
    for (expr, n, m) in cases {
        let mut b = SdfgBuilder::new("ovf");
        b.symbol("N");
        b.symbol("M");
        b.array("A", DType::F64, &["4"]);
        b.array("B", DType::F64, &["4"]);
        let st = b.start();
        let e = expr.clone();
        b.in_state(st, |df| {
            let a = df.access("A");
            let o = df.access("B");
            let t = df.tasklet(Tasklet::simple("cp", vec!["x"], "y", ScalarExpr::r("x")));
            df.read(a, t, Memlet::new("A", Subset::at(vec![e])).to_conn("x"));
            df.write(
                t,
                o,
                Memlet::new("B", Subset::at(vec![SymExpr::Int(0)])).from_conn("y"),
            );
        });
        let p = b.build();
        let mut input = ExecState::new();
        input.bind("N", n).bind("M", m);
        input.set_array("A", ArrayValue::from_f64(vec![4], &[1.0, 2.0, 3.0, 4.0]));
        let res = assert_engines_agree(&p, &input, 1_000_000);
        // The point of the case set: at least the first two are extreme
        // enough that a careless lowering diverges; agreement is the
        // assertion, the concrete outcome is free to be Ok or Err.
        let _ = res;
    }
}

// ----- f64 fast-path numeric edges -------------------------------------

/// `B[i] = op(A[i])` over a 1-D map, for an arbitrary per-element body —
/// the canonical fast-path-eligible shape.
fn elementwise(body: ScalarExpr) -> Sdfg {
    let mut b = SdfgBuilder::new("edge");
    b.symbol("N");
    b.array("A", DType::F64, &["N"]);
    b.array("B", DType::F64, &["N"]);
    let st = b.start();
    b.in_state(st, |df| {
        let a = df.access("A");
        let o = df.access("B");
        let body = body.clone();
        let m = df.map(
            &["i"],
            vec![SymRange::full(sym("N"))],
            Schedule::Parallel,
            move |mb| {
                let a = mb.access("A");
                let o = mb.access("B");
                let t = mb.tasklet(Tasklet::simple("t", vec!["x"], "y", body.clone()));
                mb.read(
                    a,
                    t,
                    Memlet::new("A", Subset::at(vec![sym("i")])).to_conn("x"),
                );
                mb.write(
                    t,
                    o,
                    Memlet::new("B", Subset::at(vec![sym("i")])).from_conn("y"),
                );
            },
        );
        df.auto_wire(m, &[a], &[o]);
    });
    b.build()
}

fn state_with_f64(vals: &[f64]) -> ExecState {
    let mut st = ExecState::new();
    st.bind("N", vals.len() as i64);
    st.set_array("A", ArrayValue::from_f64(vec![vals.len() as i64], vals));
    st
}

/// Satellite acceptance: NaN payloads must propagate bit-identically
/// through the fast path — division, Euclidean remainder, min/max (whose
/// `f64::max` NaN behavior differs from IEEE `maxNum`), sqrt of negative
/// numbers, and select conditions on NaN (`NaN != 0.0` is true).
#[test]
fn fast_path_nan_propagation_parity() {
    let nan = f64::NAN;
    let inputs = [nan, -nan, 1.0, f64::INFINITY, -f64::INFINITY, 0.0, -2.5];
    let bodies = [
        ScalarExpr::r("x").div(ScalarExpr::f64(0.0)),
        ScalarExpr::f64(0.0).div(ScalarExpr::r("x")),
        ScalarExpr::r("x").sub(ScalarExpr::r("x")),
        ScalarExpr::Bin(
            fuzzyflow_ir::BinOp::Mod,
            Box::new(ScalarExpr::r("x")),
            Box::new(ScalarExpr::f64(0.0)),
        ),
        ScalarExpr::r("x").min(ScalarExpr::f64(1.0)),
        ScalarExpr::r("x").max(ScalarExpr::f64(1.0)),
        ScalarExpr::r("x").sqrt(),
        ScalarExpr::r("x")
            .lt(ScalarExpr::f64(0.0))
            .select(ScalarExpr::r("x").neg(), ScalarExpr::r("x")),
        ScalarExpr::Select(
            Box::new(ScalarExpr::r("x")),
            Box::new(ScalarExpr::f64(1.0)),
            Box::new(ScalarExpr::f64(2.0)),
        ),
    ];
    for body in bodies {
        let p = elementwise(body.clone());
        let res = assert_engines_agree(&p, &state_with_f64(&inputs), 1_000_000);
        assert!(res.is_ok(), "{body:?}: {res:?}");
    }
}

/// Satellite acceptance: signed zeros must survive the fast path exactly
/// — `-0.0` differs from `0.0` only in its bit pattern, which the
/// bit-identical state comparison in `assert_engines_agree` checks.
#[test]
fn fast_path_signed_zero_parity() {
    let inputs = [0.0, -0.0, 1.0, -1.0];
    let bodies = [
        ScalarExpr::r("x").neg(),
        ScalarExpr::r("x").mul(ScalarExpr::f64(-0.0)),
        ScalarExpr::r("x").add(ScalarExpr::f64(-0.0)),
        ScalarExpr::r("x").min(ScalarExpr::f64(0.0)),
        ScalarExpr::r("x").max(ScalarExpr::f64(-0.0)),
        // `-0.0 == 0.0` is true: the select must take the then-branch and
        // record the same coverage.
        ScalarExpr::Cmp(
            fuzzyflow_ir::CmpOp::Eq,
            Box::new(ScalarExpr::r("x")),
            Box::new(ScalarExpr::f64(0.0)),
        )
        .select(ScalarExpr::f64(7.0), ScalarExpr::r("x")),
    ];
    for body in bodies {
        let p = elementwise(body.clone());
        let res = assert_engines_agree(&p, &state_with_f64(&inputs), 1_000_000);
        assert!(res.is_ok(), "{body:?}: {res:?}");
        // Spot-check that negating preserves the sign bit end to end.
        if body == ScalarExpr::r("x").neg() {
            let prog = Program::compile(&p);
            let mut st = state_with_f64(&inputs);
            prog.run(&mut st).unwrap();
            let b = st.array("B").unwrap();
            assert_eq!(b.get(0).as_f64().to_bits(), (-0.0f64).to_bits());
            assert_eq!(b.get(1).as_f64().to_bits(), 0.0f64.to_bits());
        }
    }
}

/// Satellite acceptance: i64 extremes must behave exactly as
/// `run_tree_walk`. Two regimes matter: expressions that *operate* on two
/// integers (wrapping `i64` arithmetic — must be rejected by the
/// eligibility pass and stay on the generic bytecode) and integer values
/// flowing into float contexts past 2^53 (where the single `as f64`
/// conversion must happen at the same abstract moment in both engines).
#[test]
fn fast_path_i64_overflow_parity_with_tree_walk() {
    let bodies = [
        // Integer + integer: the tree walk wraps (i64::MAX + 1 =
        // i64::MIN); a careless float lowering would produce 2^63.
        ScalarExpr::r("K")
            .add(ScalarExpr::i64(1))
            .add(ScalarExpr::r("x")),
        // Integer literal * symbol at the i64 edge: wraps to a huge
        // negative, not -2^64 as f64 math would give.
        ScalarExpr::r("K")
            .mul(ScalarExpr::i64(2))
            .add(ScalarExpr::r("x")),
        // Integer / integer truncates; float division would not.
        ScalarExpr::r("K")
            .div(ScalarExpr::i64(3))
            .add(ScalarExpr::r("x")),
        // Integer-integer compare past 2^53: `K` and `K + 1` convert to
        // the same f64, so a float compare would lie.
        ScalarExpr::Cmp(
            fuzzyflow_ir::CmpOp::Lt,
            Box::new(ScalarExpr::r("K")),
            Box::new(ScalarExpr::i64(i64::MAX)),
        )
        .select(ScalarExpr::r("x"), ScalarExpr::f64(0.0)),
        // Float context: the symbol converts with one lossy `as f64` in
        // both engines — eligible, and still bit-identical.
        ScalarExpr::r("x").add(ScalarExpr::r("K")),
        ScalarExpr::r("x").mul(ScalarExpr::r("K")),
    ];
    for k in [i64::MAX, i64::MIN, (1i64 << 53) + 1, -1] {
        for body in &bodies {
            let p = elementwise(body.clone());
            let mut input = state_with_f64(&[1.0, -3.5, 0.0]);
            input.bind("K", k);
            // The assertion is the three-way agreement itself; the
            // reference outcome is the tree walk's.
            let res = assert_engines_agree(&p, &input, 1_000_000);
            let mut tree = input.clone();
            let tree_res = run_with_tree_walk(&p, &mut tree, &ExecOptions::default(), None, None);
            assert_eq!(res.is_ok(), tree_res.is_ok(), "K={k} {body:?}");
        }
    }
}

/// A tasklet that is statically eligible must still fall back to the
/// generic interpreter when the caller substitutes a non-f64 buffer for a
/// declared-F64 container at runtime (the dtype guard).
#[test]
fn fast_path_runtime_dtype_guard_falls_back() {
    let p = elementwise(ScalarExpr::r("x").mul(ScalarExpr::f64(2.0)));
    // An I64 payload in the declared-F64 container: the tree walk reads
    // I64 scalars (integer semantics); the compiled engine must match.
    let mut st = ExecState::new();
    st.bind("N", 3);
    let mut arr = ArrayValue::zeros(DType::I64, vec![3]);
    for (i, v) in [5i64, -7, 40].into_iter().enumerate() {
        arr.set(i, fuzzyflow_ir::Scalar::I64(v));
    }
    st.set_array("A", arr);
    let res = assert_engines_agree(&p, &st, 1_000_000);
    assert!(res.is_ok(), "{res:?}");
}

/// Strided and multi-row reads must agree between the dense bulk-copy
/// route, the per-element route and the tree walk — including the
/// out-of-bounds error when a row hangs over the edge.
#[test]
fn fast_path_bulk_copy_parity() {
    use fuzzyflow_ir::SymExpr;
    // B[0:N] = A[0:N] via a single full-subset lane tasklet is covered by
    // the proptest; here exercise a 2-D dense block and an OOB variant.
    for (rows, cols, oob) in [(3i64, 4i64, false), (3, 4, true)] {
        let mut b = SdfgBuilder::new("bulk");
        b.array("A", DType::F64, &["3", "4"]);
        b.array("B", DType::F64, &["3", "4"]);
        let st = b.start();
        b.in_state(st, |df| {
            let a = df.access("A");
            let o = df.access("B");
            let lanes = (rows * cols) as u32;
            let mut t = Tasklet::simple("cp", vec!["x"], "y", ScalarExpr::r("x"));
            t.lanes = lanes;
            let t = df.tasklet(t);
            let hi = if oob {
                SymExpr::Int(cols + 1)
            } else {
                SymExpr::Int(cols)
            };
            df.read(
                a,
                t,
                Memlet::new(
                    "A",
                    Subset::new(vec![
                        SymRange::span(SymExpr::Int(0), SymExpr::Int(rows)),
                        SymRange::span(SymExpr::Int(0), hi),
                    ]),
                )
                .to_conn("x"),
            );
            df.write(
                t,
                o,
                Memlet::new(
                    "B",
                    Subset::new(vec![
                        SymRange::span(SymExpr::Int(0), SymExpr::Int(rows)),
                        SymRange::span(SymExpr::Int(0), SymExpr::Int(cols)),
                    ]),
                )
                .from_conn("y"),
            );
        });
        let p = b.build();
        let mut input = ExecState::new();
        let vals: Vec<f64> = (0..12).map(|i| i as f64 + 0.5).collect();
        input.set_array("A", ArrayValue::from_f64(vec![3, 4], &vals));
        let res = assert_engines_agree(&p, &input, 1_000_000);
        assert_eq!(res.is_err(), oob, "oob={oob}: {res:?}");
    }
}

// ----- fused map kernels ------------------------------------------------

/// `B[write_sub] = 2 * A[read_sub]` over a map with the given ranges —
/// the shape generator of the fused-kernel parity tests.
fn fused_shape(
    params: &[&str],
    ranges: Vec<SymRange>,
    read_sub: Vec<SymExpr>,
    write_sub: Vec<SymExpr>,
    wcr: Option<Wcr>,
) -> Sdfg {
    let mut b = SdfgBuilder::new("fused_shape");
    b.symbol("N");
    b.symbol("M");
    b.array("A", DType::F64, &["N"]);
    b.array("B", DType::F64, &["N"]);
    let st = b.start();
    let params: Vec<String> = params.iter().map(|p| p.to_string()).collect();
    b.in_state(st, move |df| {
        let a = df.access("A");
        let o = df.access("B");
        let param_refs: Vec<&str> = params.iter().map(|p| p.as_str()).collect();
        let read_sub = read_sub.clone();
        let write_sub = write_sub.clone();
        let m = df.map(&param_refs, ranges.clone(), Schedule::Parallel, move |mb| {
            let a = mb.access("A");
            let o = mb.access("B");
            let t = mb.tasklet(Tasklet::simple(
                "t",
                vec!["x"],
                "y",
                ScalarExpr::r("x").mul(ScalarExpr::f64(2.0)),
            ));
            mb.read(
                a,
                t,
                Memlet::new("A", Subset::at(read_sub.clone())).to_conn("x"),
            );
            let mut w = Memlet::new("B", Subset::at(write_sub.clone())).from_conn("y");
            if let Some(op) = wcr {
                w = w.with_wcr(op);
            }
            mb.write(t, o, w);
        });
        df.auto_wire(m, &[a], &[o]);
    });
    b.build()
}

fn fused_input(n: i64, m: i64) -> ExecState {
    let mut st = ExecState::new();
    st.bind("N", n).bind("M", m);
    let vals: Vec<f64> = (0..n).map(|i| i as f64 * 1.5 - 3.0).collect();
    st.set_array("A", ArrayValue::from_f64(vec![n], &vals));
    st
}

fn assert_scope_fused(p: &Sdfg, expect: bool) {
    let stats = Program::compile(p).tasklet_stats();
    let map = &stats.maps[0];
    assert_eq!(
        map.fused, expect,
        "scope {} fusion mismatch (reason: {:?})",
        map.label, map.reason
    );
}

/// Satellite acceptance: non-unit and negative access strides, strided
/// map ranges and scalar (stride-0) WCR reductions all run through the
/// fused kernel and stay bit-identical to every other engine.
#[test]
fn fused_kernel_stride_shapes_parity() {
    // Reversed read A[N-1-i]: negative linear stride.
    let reversed = fused_shape(
        &["i"],
        vec![SymRange::full(sym("N"))],
        vec![sym("N") - SymExpr::Int(1) - sym("i")],
        vec![sym("i")],
        None,
    );
    // Dilated read A[2*i] over i in 0..M (bound so 2M-1 < N).
    let dilated = fused_shape(
        &["i"],
        vec![SymRange::full(sym("M"))],
        vec![SymExpr::Int(2) * sym("i")],
        vec![sym("i")],
        None,
    );
    // Strided map range: every second element.
    let strided = fused_shape(
        &["i"],
        vec![SymRange::strided(
            SymExpr::Int(0),
            sym("N"),
            SymExpr::Int(2),
        )],
        vec![sym("i")],
        vec![sym("i")],
        None,
    );
    // Stride-0 WCR reduction into B[0], combine order = element order.
    let reduce = fused_shape(
        &["i"],
        vec![SymRange::full(sym("N"))],
        vec![sym("i")],
        vec![SymExpr::Int(0)],
        Some(Wcr::Sum),
    );
    for p in [&reversed, &dilated, &strided, &reduce] {
        assert_scope_fused(p, true);
        let res = assert_engines_agree(p, &fused_input(8, 4), 1_000_000);
        assert!(res.is_ok(), "{res:?}");
    }
}

/// Satellite acceptance: zero-trip maps — an empty first dimension, an
/// empty inner dimension behind a non-empty outer one, and a dynamic
/// range that is empty at runtime — are no-ops in every engine.
#[test]
fn fused_kernel_zero_trip_parity() {
    let empty_outer = fused_shape(
        &["i"],
        vec![SymRange::span(SymExpr::Int(3), SymExpr::Int(3))],
        vec![sym("i")],
        vec![sym("i")],
        None,
    );
    let empty_inner = fused_shape(
        &["i", "j"],
        vec![
            SymRange::full(sym("N")),
            SymRange::span(SymExpr::Int(2), SymExpr::Int(2)),
        ],
        vec![sym("i")],
        vec![sym("i")],
        None,
    );
    for p in [&empty_outer, &empty_inner] {
        assert_scope_fused(p, true);
        let res = assert_engines_agree(p, &fused_input(6, 4), 1_000_000);
        assert!(res.is_ok(), "{res:?}");
    }
    // Dynamic range 0..M with M = 0 at runtime.
    let dynamic = fused_shape(
        &["i"],
        vec![SymRange::full(sym("M"))],
        vec![sym("i")],
        vec![sym("i")],
        None,
    );
    assert_engines_agree(&dynamic, &fused_input(6, 0), 1_000_000).unwrap();
}

/// Satellite acceptance: dynamic map ranges from runtime symbols run
/// fused for every concrete extent, including extents that make the
/// subscripts run out of bounds (where the kernel must fall back so the
/// error surfaces exactly as in the per-element engines).
#[test]
fn fused_kernel_dynamic_ranges_parity() {
    let dynamic = fused_shape(
        &["i"],
        vec![SymRange::full(sym("M"))],
        vec![sym("i")],
        vec![sym("i")],
        None,
    );
    assert_scope_fused(&dynamic, true);
    for m in 0..10 {
        let res = assert_engines_agree(&dynamic, &fused_input(6, m), 1_000_000);
        assert_eq!(res.is_err(), m > 6, "M={m}: {res:?}");
    }
}

/// A single-iteration map dimension with a huge step combined with a
/// huge subscript coefficient: every concrete access is in bounds (the
/// dimension only ever takes its start value), but the precheck's wide
/// stride arithmetic would overflow even `i128` if it accumulated a
/// stride for that dimension. Regression: must run (or fall back)
/// without panicking, bit-identical to the per-element engines.
#[test]
fn fused_kernel_extreme_strides_do_not_overflow_the_precheck() {
    let mut b = SdfgBuilder::new("extreme");
    b.array("A2", DType::F64, &["2", "8"]);
    b.array("B2", DType::F64, &["2", "8"]);
    let st = b.start();
    b.in_state(st, |df| {
        let a = df.access("A2");
        let o = df.access("B2");
        let m = df.map(
            &["i", "j"],
            vec![
                SymRange::strided(SymExpr::Int(0), SymExpr::Int(1), SymExpr::Int(1 << 62)),
                SymRange::span(SymExpr::Int(0), SymExpr::Int(8)),
            ],
            Schedule::Parallel,
            |mb| {
                let a = mb.access("A2");
                let o = mb.access("B2");
                let t = mb.tasklet(Tasklet::simple(
                    "t",
                    vec!["x"],
                    "y",
                    ScalarExpr::r("x").mul(ScalarExpr::f64(2.0)),
                ));
                mb.read(
                    a,
                    t,
                    Memlet::new(
                        "A2",
                        Subset::at(vec![sym("i") * SymExpr::Int(i64::MAX), sym("j")]),
                    )
                    .to_conn("x"),
                );
                mb.write(
                    t,
                    o,
                    Memlet::new("B2", Subset::at(vec![sym("i"), sym("j")])).from_conn("y"),
                );
            },
        );
        df.auto_wire(m, &[a], &[o]);
    });
    let p = b.build();
    let mut input = ExecState::new();
    let vals: Vec<f64> = (0..16).map(|i| i as f64).collect();
    input.set_array("A2", ArrayValue::from_f64(vec![2, 8], &vals));
    let res = assert_engines_agree(&p, &input, 1_000_000);
    assert!(res.is_ok(), "{res:?}");
}

/// Satellite acceptance: a scope reading and writing the same container
/// must not fuse (chunked execution could observe its own writes) and
/// must still agree with every engine through the per-element fallback —
/// here with a genuine cross-element dependency (B[i] = 2 * B[0]).
#[test]
fn fused_kernel_overlap_falls_back_and_agrees() {
    let mut b = SdfgBuilder::new("overlap");
    b.symbol("N");
    b.array("B", DType::F64, &["N"]);
    let st = b.start();
    b.in_state(st, |df| {
        let b_in = df.access("B");
        let b_out = df.access("B");
        let m = df.map(
            &["i"],
            vec![SymRange::full(sym("N"))],
            Schedule::Parallel,
            |mb| {
                let a = mb.access("B");
                let o = mb.access("B");
                let t = mb.tasklet(Tasklet::simple(
                    "t",
                    vec!["x"],
                    "y",
                    ScalarExpr::r("x").mul(ScalarExpr::f64(2.0)),
                ));
                mb.read(
                    a,
                    t,
                    Memlet::new("B", Subset::at(vec![SymExpr::Int(0)])).to_conn("x"),
                );
                mb.write(
                    t,
                    o,
                    Memlet::new("B", Subset::at(vec![sym("i")])).from_conn("y"),
                );
            },
        );
        df.auto_wire(m, &[b_in], &[b_out]);
    });
    let p = b.build();
    let stats = Program::compile(&p).tasklet_stats();
    assert!(!stats.maps[0].fused);
    assert!(
        stats.maps[0].reason.unwrap().contains("overlap"),
        "{:?}",
        stats.maps[0].reason
    );
    let mut input = ExecState::new();
    input.bind("N", 5);
    input.set_array(
        "B",
        ArrayValue::from_f64(vec![5], &[3.0, 1.0, 4.0, 1.0, 5.0]),
    );
    assert_engines_agree(&p, &input, 1_000_000).unwrap();
    // The cross-element dependency is real: element 0 doubles B[0] in
    // place, so every later element reads the doubled value and writes 12
    // — a chunked kernel reading all lanes up front would write 6.
    let mut st = input.clone();
    Program::compile(&p).run(&mut st).unwrap();
    assert_eq!(
        st.array("B").unwrap().to_f64_vec(),
        vec![6.0, 12.0, 12.0, 12.0, 12.0]
    );
}

/// Interned-name accessors of the executor resolve symbols and arrays the
/// program knows, and pass through extras it does not.
#[test]
fn executor_accessors_resolve_interned_and_extra_names() {
    let cfg = Cfg {
        n: 4,
        stride: 1,
        offset: 0,
        use_mod: false,
        wcr: None,
        select: false,
        device: false,
        loop_states: false,
        lib: 0,
        max_steps: 1_000_000,
        vals: (0..8).collect(),
    };
    let p = build(&cfg);
    let mut input = input_for(&cfg);
    input.bind("UNRELATED", 99);
    input.set_array("extra", ArrayValue::from_f64(vec![2], &[7.0, 8.0]));
    let prog = Program::compile(&p);
    let mut exec = prog.executor();
    exec.execute(&input, &ExecOptions::default(), None, None)
        .unwrap();
    assert_eq!(exec.symbol("N"), Some(4));
    assert_eq!(exec.symbol("UNRELATED"), Some(99), "extra symbol preserved");
    assert!(exec.array("B").is_some());
    assert_eq!(
        exec.array("extra").unwrap().to_f64_vec(),
        vec![7.0, 8.0],
        "extra container preserved"
    );
    // And the tree-walk engine agrees on the full final state.
    let mut tree = input.clone();
    run_with_tree_walk(&p, &mut tree, &ExecOptions::default(), None, None).unwrap();
    assert_states_bit_identical(&tree, &exec.to_state());
}

// ----- tier-2 fused kernels: vectorized, select-bodied, pipelined -------

/// Knobs of one generated tier-2 map: either a lane-blocked vectorized
/// tasklet (`lanes > 1`, single stage) or a scalar multi-tasklet pipeline
/// (`lanes == 1`, `depth` stages), with optionally select-heavy bodies.
#[derive(Clone, Debug)]
struct T2Cfg {
    blocks: i64,
    lanes: u32,
    depth: usize,
    select: bool,
    /// Bind `M` one element short of `blocks * lanes`, so the last
    /// block's access is out of bounds: the fused bounds precheck must
    /// fall back and every engine must raise the identical error.
    over: bool,
    max_steps: u64,
    vals: Vec<i64>,
}

/// A map over `i in [0, N)` whose body is a chain of `depth` tasklets
/// `A -> T1 -> ... -> B`; with `lanes > 1` each stage reads/writes the
/// lane block `[i*lanes, (i+1)*lanes)` instead of the single index `i`.
fn tier2_build(cfg: &T2Cfg) -> Sdfg {
    let mut b = SdfgBuilder::new("tier2");
    b.symbol("N");
    b.symbol("M");
    b.array("A", DType::F64, &["M"]);
    b.array("B", DType::F64, &["M"]);
    for k in 1..cfg.depth {
        b.array(&format!("T{k}"), DType::F64, &["M"]);
    }
    let st = b.start();
    let lanes = cfg.lanes;
    let depth = cfg.depth;
    let select = cfg.select;
    b.in_state(st, move |df| {
        let a = df.access("A");
        let o = df.access("B");
        let mids: Vec<_> = (1..depth).map(|k| df.access(&format!("T{k}"))).collect();
        let m = df.map(
            &["i"],
            vec![SymRange::full(sym("N"))],
            Schedule::Parallel,
            move |mb| {
                let sub = || -> Subset {
                    if lanes > 1 {
                        let base = SymExpr::Int(lanes as i64) * sym("i");
                        let end = base.clone() + SymExpr::Int(lanes as i64);
                        Subset::new(vec![SymRange::span(base, end)])
                    } else {
                        Subset::at(vec![sym("i")])
                    }
                };
                let names: Vec<String> = std::iter::once("A".to_string())
                    .chain((1..depth).map(|k| format!("T{k}")))
                    .chain(std::iter::once("B".to_string()))
                    .collect();
                let nodes: Vec<_> = names.iter().map(|n| mb.access(n)).collect();
                for k in 0..depth {
                    let body = if select {
                        ScalarExpr::r("x").lt(ScalarExpr::f64(0.0)).select(
                            ScalarExpr::r("x").neg(),
                            ScalarExpr::r("x").mul(ScalarExpr::f64(k as f64 + 2.0)),
                        )
                    } else {
                        ScalarExpr::r("x")
                            .mul(ScalarExpr::f64(k as f64 + 2.0))
                            .add(ScalarExpr::f64(1.0))
                    };
                    let mut t = Tasklet::simple(format!("s{k}"), vec!["x"], "y", body);
                    t.lanes = lanes;
                    let t = mb.tasklet(t);
                    mb.read(
                        nodes[k],
                        t,
                        Memlet::new(names[k].clone(), sub()).to_conn("x"),
                    );
                    mb.write(
                        t,
                        nodes[k + 1],
                        Memlet::new(names[k + 1].clone(), sub()).from_conn("y"),
                    );
                }
            },
        );
        let outs: Vec<_> = mids.iter().copied().chain(std::iter::once(o)).collect();
        df.auto_wire(m, &[a], &outs);
    });
    b.build()
}

fn tier2_input(cfg: &T2Cfg) -> ExecState {
    let m = cfg.blocks * cfg.lanes as i64 - if cfg.over { 1 } else { 0 };
    let mut st = ExecState::new();
    st.bind("N", cfg.blocks).bind("M", m);
    let vals: Vec<f64> = (0..m)
        .map(|i| cfg.vals[i as usize % cfg.vals.len()] as f64 * 0.5)
        .collect();
    st.set_array("A", ArrayValue::from_f64(vec![m], &vals));
    st
}

fn arb_t2() -> impl Strategy<Value = T2Cfg> {
    (
        (1i64..5, 0u32..4, 1usize..4, 0usize..2, 0usize..2, 0usize..3),
        proptest::collection::vec(-100i64..100, 8..9),
    )
        .prop_map(|((blocks, lanes_pow, depth, select, over, budget), vals)| {
            let lanes = 1u32 << lanes_pow;
            T2Cfg {
                blocks,
                lanes,
                // Vectorized pipelines are rejected at compile time
                // (FuseReject::LanePipeline); generate one or the other
                // here and test the reject deterministically below.
                depth: if lanes > 1 { 1 } else { depth },
                select: select == 1,
                over: over == 1,
                max_steps: match budget {
                    0 => 25,
                    1 => 400,
                    _ => 1_000_000,
                },
                vals,
            }
        })
}

proptest! {
    /// Tier-2 acceptance: vectorized (`lanes ∈ {2,4,8}`), select-bodied
    /// and multi-tasklet-pipeline maps all compile to fused kernels and
    /// stay bit-identical — results, `ExecError`s, step accounting and
    /// select-branch coverage ids — across all four engine tiers and
    /// both reset policies.
    #[test]
    fn tier2_kernels_match_all_engines(cfg in arb_t2()) {
        let p = tier2_build(&cfg);
        assert_scope_fused(&p, true);
        let _ = assert_engines_agree(&p, &tier2_input(&cfg), cfg.max_steps);
    }
}

/// Every supported lane width fuses and agrees, with and without a
/// select body (the select forces the per-lane scalar loop in-kernel).
#[test]
fn tier2_vectorized_lane_widths_parity() {
    for lanes in [2u32, 4, 8] {
        for select in [false, true] {
            let cfg = T2Cfg {
                blocks: 3,
                lanes,
                depth: 1,
                select,
                over: false,
                max_steps: 1_000_000,
                vals: vec![-3, 1, -4, 1, -5, 9, -2, 6],
            };
            let p = tier2_build(&cfg);
            assert_scope_fused(&p, true);
            assert_engines_agree(&p, &tier2_input(&cfg), 1_000_000).unwrap();
        }
    }
}

/// Multi-tasklet pipelines fuse into one kernel (intermediates stay in
/// registers) and agree at full budget; an undersized step budget must
/// hang at the identical step in every engine.
#[test]
fn tier2_pipeline_depths_parity() {
    for depth in [2usize, 3] {
        for select in [false, true] {
            let cfg = T2Cfg {
                blocks: 4,
                lanes: 1,
                depth,
                select,
                over: false,
                max_steps: 1_000_000,
                vals: vec![2, -7, 1, -8, 2, -8, 1, -8],
            };
            let p = tier2_build(&cfg);
            assert_scope_fused(&p, true);
            assert_engines_agree(&p, &tier2_input(&cfg), 1_000_000).unwrap();
            let res = assert_engines_agree(&p, &tier2_input(&cfg), 9);
            assert!(res.is_err(), "budget 9 should not complete depth {depth}");
        }
    }
}

/// A vectorized multi-tasklet pipeline is the one tier-2 shape the fuser
/// refuses (per-lane register forwarding cannot be interleaved with
/// per-element coverage); it must fall back and still agree everywhere.
#[test]
fn tier2_vectorized_pipeline_rejects_and_agrees() {
    let cfg = T2Cfg {
        blocks: 3,
        lanes: 2,
        depth: 2,
        select: true,
        over: false,
        max_steps: 1_000_000,
        vals: vec![-3, 1, -4, 1, -5, 9, -2, 6],
    };
    let p = tier2_build(&cfg);
    let stats = Program::compile(&p).tasklet_stats();
    assert!(!stats.maps[0].fused);
    assert_eq!(
        stats.maps[0].reason,
        Some("vectorized multi-tasklet pipeline")
    );
    assert_engines_agree(&p, &tier2_input(&cfg), 1_000_000).unwrap();
}

/// Compile-time fusion survives a runtime shape it cannot prove safe: a
/// short `M` puts the last lane block out of bounds, the precheck falls
/// back, and the per-element path raises the same error as every engine.
#[test]
fn tier2_vectorized_oob_crash_parity() {
    let cfg = T2Cfg {
        blocks: 3,
        lanes: 4,
        depth: 1,
        select: false,
        over: true,
        max_steps: 1_000_000,
        vals: vec![3, 1, 4, 1, 5, 9, 2, 6],
    };
    let p = tier2_build(&cfg);
    assert_scope_fused(&p, true);
    let res = assert_engines_agree(&p, &tier2_input(&cfg), 1_000_000);
    assert!(res.is_err(), "short M must raise out of bounds everywhere");
}

/// The recorded select-branch ids are data-dependent, not a uniform
/// per-site constant: flipping input signs must light different edges.
#[test]
fn tier2_select_branch_coverage_is_input_sensitive() {
    let cfg = T2Cfg {
        blocks: 4,
        lanes: 1,
        depth: 1,
        select: true,
        over: false,
        max_steps: 1_000_000,
        vals: vec![1, 2, 3, 4, 5, 6, 7, 8],
    };
    let p = tier2_build(&cfg);
    assert_scope_fused(&p, true);
    let pos = tier2_input(&cfg);
    let mut mixed_cfg = cfg.clone();
    mixed_cfg.vals = vec![1, -2, 3, -4, 5, -6, 7, -8];
    let mixed = tier2_input(&mixed_cfg);
    assert_engines_agree(&p, &pos, 1_000_000).unwrap();
    assert_engines_agree(&p, &mixed, 1_000_000).unwrap();
    let prog = Program::compile(&p);
    let run = |input: &ExecState| {
        let mut st = input.clone();
        let mut cov = CoverageMap::new();
        prog.run_with(&mut st, &ExecOptions::default(), None, Some(&mut cov))
            .unwrap();
        let mut virgin = [0u8; MAP_SIZE];
        cov.merge_into(&mut virgin);
        virgin
    };
    assert!(
        run(&pos)[..] != run(&mixed)[..],
        "select branch coverage ignores the taken branch"
    );
}

// ----- native JIT tier: targeted parity, engagement and fallback tests --

/// One dense map `B[i] = expr(x = A[i], i)`, the minimal shape that
/// fuses and (for expressions inside the emitted SSE2 subset) clears the
/// JIT's static eligibility.
fn jit_case(expr: ScalarExpr, wcr: Option<Wcr>) -> Sdfg {
    let mut b = SdfgBuilder::new("jit_case");
    b.symbol("N");
    b.array("A", DType::F64, &["N"]);
    b.array("B", DType::F64, &["N"]);
    let st = b.start();
    b.in_state(st, |df| {
        let a = df.access("A");
        let o = df.access("B");
        let m = df.map(
            &["i"],
            vec![SymRange::full(sym("N"))],
            Schedule::Parallel,
            |body| {
                let a = body.access("A");
                let o = body.access("B");
                let t = body.tasklet(Tasklet::simple("t", vec!["x"], "y", expr.clone()));
                body.read(
                    a,
                    t,
                    Memlet::new("A", Subset::at(vec![sym("i")])).to_conn("x"),
                );
                let mut w = Memlet::new("B", Subset::at(vec![sym("i")])).from_conn("y");
                if let Some(op) = wcr {
                    w = w.with_wcr(op);
                }
                body.write(t, o, w);
            },
        );
        df.auto_wire(m, &[a], &[o]);
    });
    b.build()
}

fn jit_input(vals: &[f64]) -> ExecState {
    let mut st = ExecState::new();
    st.bind("N", vals.len() as i64);
    st.set_array("A", ArrayValue::from_f64(vec![vals.len() as i64], vals));
    st
}

/// The static JIT verdict of the program's single map scope.
fn jit_verdict(p: &Sdfg) -> (bool, Option<&'static str>) {
    let prog = Program::compile(p);
    let stats = prog.tasklet_stats();
    assert_eq!(stats.maps.len(), 1, "one map scope expected");
    assert_eq!(stats.jit_maps, usize::from(stats.maps[0].jit));
    (stats.maps[0].jit, stats.maps[0].jit_reason)
}

/// A straight-line arithmetic kernel is statically eligible, actually
/// executes native code, and stays bit-identical across all six axes —
/// including NaN produced mid-kernel (`sqrt` of negatives).
#[test]
fn jit_engages_and_matches_on_straight_line_kernel() {
    let expr = ScalarExpr::r("x")
        .mul(ScalarExpr::f64(1.5))
        .add(ScalarExpr::r("i"))
        .sqrt()
        .sub(ScalarExpr::r("x").neg());
    let p = jit_case(expr, None);
    let (jit, reason) = jit_verdict(&p);
    assert!(
        jit,
        "straight-line f64 kernel should be eligible: {reason:?}"
    );
    let input = jit_input(&[0.5, -100.0, 2.25, 9.0, -0.0, 1e300]);
    let before = jit_native_runs();
    assert_engines_agree(&p, &input, 1_000_000).unwrap();
    if cfg!(all(unix, target_arch = "x86_64")) {
        assert!(jit_native_runs() > before, "native tier did not engage");
    }
}

/// NaN and signed-zero semantics through native comparisons, selects,
/// negation, abs and division: every unordered-comparison recipe and
/// both zero signs, bit-compared against the tree walk.
#[test]
fn jit_nan_and_signed_zero_parity() {
    let x = || ScalarExpr::r("x");
    // x == 0.0 ? |−x| : (x < i ? x / 0.0 : x − x)
    let expr = ScalarExpr::Cmp(CmpOp::Eq, Box::new(x()), Box::new(ScalarExpr::f64(0.0))).select(
        ScalarExpr::Un(UnOp::Abs, Box::new(x().neg())),
        x().lt(ScalarExpr::r("i"))
            .select(x().div(ScalarExpr::f64(0.0)), x().sub(x())),
    );
    let p = jit_case(expr, None);
    let (jit, reason) = jit_verdict(&p);
    assert!(jit, "select kernel should be eligible: {reason:?}");
    let vals = [
        f64::NAN,
        -0.0,
        0.0,
        f64::INFINITY,
        f64::NEG_INFINITY,
        1.5,
        -2.5,
        f64::MIN_POSITIVE,
    ];
    let input = jit_input(&vals);
    // All six axes agree (under coverage the select kernel interleaves
    // per-branch records, so this exercises the runtime fallback)...
    assert_engines_agree(&p, &input, 1_000_000).unwrap();
    // ...and without coverage the select body runs natively (branches
    // lower to jcc): compare that run against the tree walk directly.
    let prog = Program::compile(&p);
    let opts = ExecOptions::default();
    let before = jit_native_runs();
    let mut jstate = input.clone();
    let jres = prog.run_with(&mut jstate, &opts, None, None);
    if cfg!(all(unix, target_arch = "x86_64")) {
        assert!(jit_native_runs() > before, "native select did not engage");
    }
    let mut tstate = input.clone();
    let tres = run_with_tree_walk(&p, &mut tstate, &opts, None, None);
    assert_eq!(tres, jres);
    assert_states_bit_identical(&tstate, &jstate);
}

/// Statically rejected bodies report their reason, keep their fused
/// kernel, and still agree across every engine axis — while the reject
/// classes the packed-SIMD tier closed (`min`/`max` bodies, Min/Max WCR
/// combiners) are now eligible and actually run native.
#[test]
fn jit_rejects_fall_back_and_agree() {
    // Pow has no SSE2 lowering and stays rejected.
    let pow = jit_case(
        ScalarExpr::Bin(
            BinOp::Pow,
            Box::new(ScalarExpr::r("x")),
            Box::new(ScalarExpr::f64(2.0)),
        ),
        None,
    );
    let (jit, reason) = jit_verdict(&pow);
    assert!(!jit);
    assert_eq!(reason, Some("instruction outside the emitted SSE2 subset"));
    // min/max lower NaN- and signed-zero-exactly since the packed-SIMD
    // tier — both as body instructions and as WCR combiners.
    let minmax = jit_case(
        ScalarExpr::r("x")
            .max(ScalarExpr::f64(0.0))
            .min(ScalarExpr::r("i")),
        None,
    );
    let (jit, reason) = jit_verdict(&minmax);
    assert!(jit, "min/max body should be eligible: {reason:?}");
    let wcr_max = jit_case(ScalarExpr::r("x"), Some(Wcr::Max));
    let (jit, reason) = jit_verdict(&wcr_max);
    assert!(jit, "WCR Max should be eligible: {reason:?}");
    // ...except a Min/Max combiner gathered from the bool register file:
    // the blend needs the stored value live in a float register.
    let wcr_bool = jit_case(ScalarExpr::r("x").lt(ScalarExpr::f64(0.0)), Some(Wcr::Min));
    let (jit, reason) = jit_verdict(&wcr_bool);
    assert!(!jit);
    assert_eq!(
        reason,
        Some("write-conflict combiner without exact SSE2 equivalent")
    );
    // WCR Sum lowers exactly (load-add-store per element) and stays in.
    let wcr_sum = jit_case(ScalarExpr::r("x"), Some(Wcr::Sum));
    let (jit, reason) = jit_verdict(&wcr_sum);
    assert!(jit, "WCR Sum should stay eligible: {reason:?}");
    let input = jit_input(&[f64::NAN, -0.0, 3.5, -1.25]);
    let before = jit_native_runs();
    for p in [&pow, &minmax, &wcr_max, &wcr_bool, &wcr_sum] {
        assert_engines_agree(p, &input, 1_000_000).unwrap();
    }
    if cfg!(all(unix, target_arch = "x86_64")) {
        assert!(
            jit_native_runs() > before,
            "eligible min/max kernels did not run native"
        );
    }
}

// ----- packed JIT tier: lane-parallel native code ------------------------

/// The adversarial f64 pool every packed test samples from: NaN, both
/// zero signs, both infinities and ordinary values (`bits_eq` rule: NaN
/// sign-insensitive, payloads and zero signs distinguish).
const SPECIALS: [f64; 8] = [
    f64::NAN,
    -0.0,
    0.0,
    f64::INFINITY,
    f64::NEG_INFINITY,
    1.5,
    -2.5,
    1e-300,
];

/// One lane-blocked map `B[w·i : w·i+w : stride] = expr(x = A[...], i)`
/// with `w = lanes · stride` — the minimal vectorized shape that fuses
/// into a `lanes > 1` kernel. `stride > 1` spreads the lanes apart,
/// forcing the packed blob's runtime unit-stride fallback; `wcr`
/// applies a combiner on the write.
fn lane_case(lanes: u32, stride: i64, expr: ScalarExpr, wcr: Option<Wcr>) -> Sdfg {
    let mut b = SdfgBuilder::new("lane_case");
    b.symbol("N");
    b.symbol("M");
    b.array("A", DType::F64, &["M"]);
    b.array("B", DType::F64, &["M"]);
    let st = b.start();
    b.in_state(st, move |df| {
        let a = df.access("A");
        let o = df.access("B");
        let m = df.map(
            &["i"],
            vec![SymRange::full(sym("N"))],
            Schedule::Parallel,
            move |mb| {
                let sub = || {
                    let w = lanes as i64 * stride;
                    let base = SymExpr::Int(w) * sym("i");
                    let end = base.clone() + SymExpr::Int(w);
                    Subset::new(vec![SymRange::strided(base, end, SymExpr::Int(stride))])
                };
                let a = mb.access("A");
                let o = mb.access("B");
                let mut t = Tasklet::simple("t", vec!["x"], "y", expr.clone());
                t.lanes = lanes;
                let t = mb.tasklet(t);
                mb.read(a, t, Memlet::new("A", sub()).to_conn("x"));
                let mut w = Memlet::new("B", sub()).from_conn("y");
                if let Some(op) = wcr {
                    w = w.with_wcr(op);
                }
                mb.write(t, o, w);
            },
        );
        df.auto_wire(m, &[a], &[o]);
    });
    b.build()
}

fn lane_input(lanes: u32, stride: i64, blocks: i64, vals: &[f64]) -> ExecState {
    let m = blocks * lanes as i64 * stride;
    let mut st = ExecState::new();
    st.bind("N", blocks).bind("M", m);
    let data: Vec<f64> = (0..m).map(|i| vals[i as usize % vals.len()]).collect();
    st.set_array("A", ArrayValue::from_f64(vec![m], &data));
    st
}

/// Vectorized straight-line kernels are statically eligible and execute
/// *packed* native code at every supported lane width — odd widths
/// exercise the scalar remainder element after the pairs.
#[test]
fn packed_jit_engages_across_lane_widths() {
    for lanes in [2u32, 3, 4, 5, 8] {
        let expr = ScalarExpr::r("x")
            .mul(ScalarExpr::f64(1.5))
            .add(ScalarExpr::r("i"))
            .sqrt();
        let p = lane_case(lanes, 1, expr, None);
        let (jit, reason) = jit_verdict(&p);
        assert!(jit, "lanes={lanes} kernel should be eligible: {reason:?}");
        let input = lane_input(lanes, 1, 3, &[0.5, 2.25, 9.0, -1.0, 1e300, 0.0, -0.0, 7.5]);
        let before = jit_native_runs_split().1;
        assert_engines_agree(&p, &input, 1_000_000).unwrap();
        if cfg!(all(unix, target_arch = "x86_64")) {
            assert!(
                jit_native_runs_split().1 > before,
                "packed tier did not engage at lanes={lanes}"
            );
        }
    }
}

/// min/max bodies and Min/Max WCR combiners on vectorized kernels —
/// previously `Vectorized`/`UnsupportedOp` rejects — run packed native
/// code and stay bit-identical on NaN, signed zero and infinities.
#[test]
fn packed_jit_minmax_wcr_nan_signed_zero_parity() {
    let body = ScalarExpr::r("x")
        .max(ScalarExpr::f64(0.0))
        .min(ScalarExpr::r("i"));
    for lanes in [2u32, 4, 5] {
        for wcr in [None, Some(Wcr::Min), Some(Wcr::Max)] {
            let p = lane_case(lanes, 1, body.clone(), wcr);
            let (jit, reason) = jit_verdict(&p);
            assert!(
                jit,
                "lanes={lanes} min/max kernel (wcr {wcr:?}) should be eligible: {reason:?}"
            );
            let input = lane_input(lanes, 1, 2, &SPECIALS);
            let before = jit_native_runs_split().1;
            assert_engines_agree(&p, &input, 1_000_000).unwrap();
            if cfg!(all(unix, target_arch = "x86_64")) {
                assert!(
                    jit_native_runs_split().1 > before,
                    "packed tier did not engage (lanes={lanes}, wcr {wcr:?})"
                );
            }
        }
    }
}

/// Select bodies on vectorized kernels run native in the unrolled
/// lane-scalar mode (per-element branches, no packed predication) and
/// stay bit-identical to the tree walk.
#[test]
fn packed_jit_select_bodies_run_native() {
    let expr = ScalarExpr::r("x")
        .lt(ScalarExpr::f64(0.0))
        .select(ScalarExpr::r("x").neg(), ScalarExpr::r("x").sqrt());
    let p = lane_case(4, 1, expr, None);
    let (jit, reason) = jit_verdict(&p);
    assert!(jit, "vector select kernel should be eligible: {reason:?}");
    let input = lane_input(4, 1, 3, &SPECIALS);
    assert_engines_agree(&p, &input, 1_000_000).unwrap();
    // Without coverage the select body runs natively; compare that run
    // against the tree walk directly.
    let prog = Program::compile(&p);
    let opts = ExecOptions::default();
    let before = jit_native_runs_split().1;
    let mut jstate = input.clone();
    let jres = prog.run_with(&mut jstate, &opts, None, None);
    if cfg!(all(unix, target_arch = "x86_64")) {
        assert!(
            jit_native_runs_split().1 > before,
            "native lane-scalar select did not engage"
        );
    }
    let mut tstate = input.clone();
    let tres = run_with_tree_walk(&p, &mut tstate, &opts, None, None);
    assert_eq!(tres, jres);
    assert_states_bit_identical(&tstate, &jstate);
}

/// A statically pointwise second read in a vectorized kernel broadcasts
/// one value — including NaN — across the lanes.
#[test]
fn packed_jit_broadcast_inputs_parity() {
    let mut b = SdfgBuilder::new("lane_bcast");
    b.symbol("N");
    b.symbol("M");
    b.array("A", DType::F64, &["M"]);
    b.array("C", DType::F64, &["N"]);
    b.array("B", DType::F64, &["M"]);
    let st = b.start();
    b.in_state(st, |df| {
        let a = df.access("A");
        let c = df.access("C");
        let o = df.access("B");
        let m = df.map(
            &["i"],
            vec![SymRange::full(sym("N"))],
            Schedule::Parallel,
            |mb| {
                let lane_sub = || {
                    let base = SymExpr::Int(4) * sym("i");
                    Subset::new(vec![SymRange::span(base.clone(), base + SymExpr::Int(4))])
                };
                let a = mb.access("A");
                let c = mb.access("C");
                let o = mb.access("B");
                let mut t = Tasklet::simple(
                    "t",
                    vec!["x", "b"],
                    "y",
                    ScalarExpr::r("x")
                        .mul(ScalarExpr::r("b"))
                        .max(ScalarExpr::r("b")),
                );
                t.lanes = 4;
                let t = mb.tasklet(t);
                mb.read(a, t, Memlet::new("A", lane_sub()).to_conn("x"));
                mb.read(
                    c,
                    t,
                    Memlet::new("C", Subset::at(vec![sym("i")])).to_conn("b"),
                );
                mb.write(t, o, Memlet::new("B", lane_sub()).from_conn("y"));
            },
        );
        df.auto_wire(m, &[a, c], &[o]);
    });
    let p = b.build();
    let (jit, reason) = jit_verdict(&p);
    assert!(jit, "broadcast-input kernel should be eligible: {reason:?}");
    let mut input = lane_input(4, 1, 3, &SPECIALS);
    input.set_array("C", ArrayValue::from_f64(vec![3], &[2.0, f64::NAN, -0.0]));
    let before = jit_native_runs_split().1;
    assert_engines_agree(&p, &input, 1_000_000).unwrap();
    if cfg!(all(unix, target_arch = "x86_64")) {
        assert!(
            jit_native_runs_split().1 > before,
            "packed tier did not engage on broadcast input"
        );
    }
}

/// A run that spreads the lanes at stride 2 cannot use the packed
/// blob's unit-stride loads: the static verdict stays eligible (blobs
/// are shape-independent), the run falls back per-kernel
/// (`NonUnitStrideLanes`) and every engine still agrees bit-exactly.
#[test]
fn packed_jit_non_unit_stride_falls_back_and_agrees() {
    let expr = ScalarExpr::r("x").mul(ScalarExpr::f64(2.0));
    let p = lane_case(4, 2, expr, None);
    let (jit, reason) = jit_verdict(&p);
    assert!(jit, "static verdict is shape-independent: {reason:?}");
    let input = lane_input(4, 2, 3, &SPECIALS);
    assert_engines_agree(&p, &input, 1_000_000).unwrap();
}

proptest! {
    /// Packed-JIT acceptance sweep: arbitrary lane widths (odd ones
    /// exercise the remainder element), plain / min-max / select
    /// bodies, WCR combiners and special-value inputs stay
    /// bit-identical across all seven engine axes.
    #[test]
    fn packed_jit_parity(
        lanes in 2u32..9,
        blocks in 1i64..4,
        body in 0u8..3,
        wcr in 0u8..4,
        idx in proptest::collection::vec(0usize..8, 8..9),
    ) {
        let expr = match body {
            0 => ScalarExpr::r("x")
                .mul(ScalarExpr::f64(1.5))
                .add(ScalarExpr::r("i")),
            1 => ScalarExpr::r("x")
                .max(ScalarExpr::f64(0.0))
                .min(ScalarExpr::r("i")),
            _ => ScalarExpr::r("x").lt(ScalarExpr::f64(0.0)).select(
                ScalarExpr::r("x").neg(),
                ScalarExpr::r("x").mul(ScalarExpr::f64(3.0)),
            ),
        };
        let wcr = match wcr {
            0 | 1 => None,
            2 => Some(Wcr::Sum),
            _ => Some(Wcr::Max),
        };
        let p = lane_case(lanes, 1, expr, wcr);
        let vals: Vec<f64> = idx.iter().map(|&i| SPECIALS[i]).collect();
        let input = lane_input(lanes, 1, blocks, &vals);
        assert_engines_agree(&p, &input, 1_000_000).unwrap();
    }
}
