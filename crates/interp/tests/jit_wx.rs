//! W^X smoke test for the native JIT tier: after forcing real code
//! emission and execution, no mapping in this process may be both
//! writable and executable. Linux-only (reads `/proc/self/maps`), which
//! is also the only place the emitter targets in CI.
#![cfg(all(target_os = "linux", target_arch = "x86_64"))]

use fuzzyflow_interp::{jit_native_runs, jit_native_runs_split, ArrayValue, ExecState, Program};
use fuzzyflow_ir::{
    sym, DType, Memlet, ScalarExpr, Schedule, Sdfg, SdfgBuilder, Subset, SymExpr, SymRange, Tasklet,
};

fn eligible_map() -> Sdfg {
    let mut b = SdfgBuilder::new("wx_probe");
    b.symbol("N");
    b.array("A", DType::F64, &["N"]);
    b.array("B", DType::F64, &["N"]);
    let st = b.start();
    b.in_state(st, |df| {
        let a = df.access("A");
        let o = df.access("B");
        let m = df.map(
            &["i"],
            vec![SymRange::full(sym("N"))],
            Schedule::Parallel,
            |body| {
                let a = body.access("A");
                let o = body.access("B");
                let t = body.tasklet(Tasklet::simple(
                    "t",
                    vec!["x"],
                    "y",
                    ScalarExpr::r("x").mul(ScalarExpr::f64(3.0)).sqrt(),
                ));
                body.read(
                    a,
                    t,
                    Memlet::new("A", Subset::at(vec![sym("i")])).to_conn("x"),
                );
                body.write(
                    t,
                    o,
                    Memlet::new("B", Subset::at(vec![sym("i")])).from_conn("y"),
                );
            },
        );
        df.auto_wire(m, &[a], &[o]);
    });
    b.build()
}

/// A lanes-8 vectorized kernel (4 packed pairs, min/max body) for the
/// packed-emission smoke test.
fn eligible_packed_map() -> Sdfg {
    let mut b = SdfgBuilder::new("wx_probe_packed");
    b.symbol("N");
    b.symbol("M");
    b.array("A", DType::F64, &["M"]);
    b.array("B", DType::F64, &["M"]);
    let st = b.start();
    b.in_state(st, |df| {
        let a = df.access("A");
        let o = df.access("B");
        let m = df.map(
            &["i"],
            vec![SymRange::full(sym("N"))],
            Schedule::Parallel,
            |body| {
                let sub = || {
                    let base = SymExpr::Int(8) * sym("i");
                    Subset::new(vec![SymRange::span(base.clone(), base + SymExpr::Int(8))])
                };
                let a = body.access("A");
                let o = body.access("B");
                let mut t = Tasklet::simple(
                    "t",
                    vec!["x"],
                    "y",
                    ScalarExpr::r("x")
                        .max(ScalarExpr::f64(0.0))
                        .min(ScalarExpr::f64(100.0)),
                );
                t.lanes = 8;
                let t = body.tasklet(t);
                body.read(a, t, Memlet::new("A", sub()).to_conn("x"));
                body.write(t, o, Memlet::new("B", sub()).from_conn("y"));
            },
        );
        df.auto_wire(m, &[a], &[o]);
    });
    b.build()
}

fn assert_no_wx_mappings() {
    let maps = std::fs::read_to_string("/proc/self/maps").expect("readable /proc/self/maps");
    let wx: Vec<&str> = maps
        .lines()
        .filter(|l| {
            // Column 2 is the permission field, e.g. `rwxp`.
            l.split_whitespace()
                .nth(1)
                .is_some_and(|p| p.contains('w') && p.contains('x'))
        })
        .collect();
    assert!(
        wx.is_empty(),
        "simultaneously writable+executable mappings found:\n{}",
        wx.join("\n")
    );
}

#[test]
fn emitted_pages_are_never_writable_and_executable() {
    // Force an emission + native execution so at least one RX code
    // mapping exists while we scan.
    let p = eligible_map();
    let prog = Program::compile(&p);
    let mut st = ExecState::new();
    st.bind("N", 64);
    st.set_array("A", ArrayValue::from_f64(vec![64], &vec![1.25; 64]));
    let before = jit_native_runs();
    prog.run(&mut st).unwrap();
    assert!(jit_native_runs() > before, "native tier did not engage");
    assert_no_wx_mappings();
}

/// Same invariant for packed (lane-parallel) emission: a lanes-8 kernel
/// runs through the *packed* counter and leaves no W+X mapping behind.
#[test]
fn packed_emitted_pages_are_never_writable_and_executable() {
    let p = eligible_packed_map();
    let prog = Program::compile(&p);
    let mut st = ExecState::new();
    st.bind("N", 16).bind("M", 128);
    let data: Vec<f64> = (0..128).map(|i| (i as f64) - 64.0).collect();
    st.set_array("A", ArrayValue::from_f64(vec![128], &data));
    let before = jit_native_runs_split().1;
    prog.run(&mut st).unwrap();
    assert!(
        jit_native_runs_split().1 > before,
        "packed native tier did not engage"
    );
    assert_no_wx_mappings();
}
