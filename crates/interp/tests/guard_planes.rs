//! Dirty-region tracking and guard-plane tests.
//!
//! Two properties of the selective-reset layer are pinned here:
//!
//! 1. **Coverage** — the dirty set an execution records for a container
//!    is a superset of every element the run actually wrote, across the
//!    per-element plans, bulk range copies, WCR accumulation and the
//!    fused-kernel path (shadow-diffed against the pristine zero fill).
//! 2. **Guard planes** — out-of-bounds stores land where native code
//!    would put them: in trap mode they raise `OutOfBounds`; in slop
//!    mode a near miss corrupts the poisoned guard plane and is reported
//!    post-run as a `GuardViolation` naming the container and the
//!    faulting element, a payload fold-back silently corrupts the
//!    neighboring element, and a far wild store still traps.

use fuzzyflow_interp::{
    ArrayValue, CompileOptions, ExecError, ExecOptions, ExecState, Program, ResetPolicy,
};
use fuzzyflow_ir::{
    sym, DType, LibraryOp, Memlet, ScalarExpr, Schedule, Sdfg, SdfgBuilder, Subset, SymExpr,
    SymRange, Tasklet, Wcr,
};
use proptest::prelude::*;

/// Container size comfortably above the selective-reset threshold, so
/// warm trials of these programs exercise the dirty-span refill path.
const BIG: &str = "8192";

/// `B[i*stride + offset] (=|+=) A[i]` over `i in 0..N`, with `B` a big
/// engine-allocated container — per-element stores (fused, f64 fast
/// path, or generic bytecode depending on compile options).
fn scatter_program(wcr: Option<Wcr>, stride: i64, offset: i64) -> Sdfg {
    let mut b = SdfgBuilder::new("scatter");
    b.symbol("N");
    b.array("A", DType::F64, &["N"]);
    b.array("B", DType::F64, &[BIG]);
    let st = b.start();
    b.in_state(st, |df| {
        let a = df.access("A");
        let o = df.access("B");
        let m = df.map(
            &["i"],
            vec![SymRange::strided(
                SymExpr::Int(0),
                sym("N"),
                SymExpr::Int(stride),
            )],
            Schedule::Parallel,
            |body| {
                let a = body.access("A");
                let o = body.access("B");
                let t = body.tasklet(Tasklet::simple(
                    "t",
                    vec!["x"],
                    "y",
                    ScalarExpr::r("x").add(ScalarExpr::f64(1.0)),
                ));
                body.read(
                    a,
                    t,
                    Memlet::new("A", Subset::at(vec![sym("i")])).to_conn("x"),
                );
                let mut w = Memlet::new("B", Subset::at(vec![sym("i") + SymExpr::Int(offset)]))
                    .from_conn("y");
                if let Some(op) = wcr {
                    w = w.with_wcr(op);
                }
                body.write(t, o, w);
            },
        );
        df.auto_wire(m, &[a], &[o]);
    });
    b.build()
}

/// `B[0:N] = softmax(A[0:N])` — a bulk range write into the prefix of a
/// big container through the library-node path.
fn bulk_program() -> Sdfg {
    let mut b = SdfgBuilder::new("bulk");
    b.symbol("N");
    b.array("A", DType::F64, &["N"]);
    b.array("B", DType::F64, &[BIG]);
    let st = b.start();
    b.in_state(st, |df| {
        let a = df.access("A");
        let o = df.access("B");
        let node = df.library("soft", LibraryOp::Softmax);
        df.read(
            a,
            node,
            Memlet::new("A", Subset::full(&[sym("N")])).to_conn("in"),
        );
        df.write(
            node,
            o,
            Memlet::new("B", Subset::full(&[sym("N")])).from_conn("out"),
        );
    });
    b.build()
}

fn input_for(n: i64) -> ExecState {
    let mut st = ExecState::new();
    st.bind("N", n);
    let vals: Vec<f64> = (0..n).map(|i| (i * 3 % 17) as f64 / 4.0).collect();
    st.set_array("A", ArrayValue::from_f64(vec![n], &vals));
    st
}

/// Runs `p` three times on one executor (fresh alloc, then two
/// dirty-reset reuses) and asserts, per trial, that every element of `B`
/// that differs from the pristine zero fill lies inside the recorded
/// dirty set, and that warm trials are bit-identical to the first.
fn assert_dirty_covers_writes(p: &Sdfg, input: &ExecState, copts: &CompileOptions) {
    let prog = Program::compile_with_options(p, copts);
    let mut exec = prog.executor();
    let opts = ExecOptions::default();
    let mut first_bits: Option<Vec<u64>> = None;
    for trial in 0..3 {
        exec.execute(input, &opts, None, None)
            .unwrap_or_else(|e| panic!("trial {trial} failed: {e}"));
        let arr = exec.array("B").expect("B allocated");
        let bits: Vec<u64> = (0..arr.len())
            .map(|i| arr.get(i).as_f64().to_bits())
            .collect();
        let (all, spans) = exec.dirty_spans("B").expect("B tracked");
        for (i, &b) in bits.iter().enumerate() {
            if b != 0 {
                assert!(
                    all || spans.iter().any(|&(lo, hi)| lo <= i && i < hi),
                    "trial {trial}: element {i} was written but is not in the \
                     dirty set (all={all}, spans={spans:?})"
                );
            }
        }
        match &first_bits {
            None => first_bits = Some(bits),
            Some(first) => assert_eq!(
                first, &bits,
                "trial {trial} diverged from the fresh-allocation trial"
            ),
        }
    }
}

fn engine_variants() -> [CompileOptions; 3] {
    [
        CompileOptions::default(),
        CompileOptions {
            fuse_maps: false,
            ..Default::default()
        },
        CompileOptions {
            specialize_f64: false,
            ..Default::default()
        },
    ]
}

proptest! {
    /// Shadow-diff property: across strides, offsets, WCR and all three
    /// compiled-engine variants, `dirty ⊇ written`.
    #[test]
    fn dirty_set_covers_every_written_element(
        n in 1i64..48,
        stride in 1i64..5,
        offset in 0i64..2048,
        wcr in 0usize..3,
    ) {
        let wcr = match wcr {
            0 => None,
            1 => Some(Wcr::Sum),
            _ => Some(Wcr::Max),
        };
        let p = scatter_program(wcr, stride, offset);
        let input = input_for(n);
        for copts in engine_variants() {
            assert_dirty_covers_writes(&p, &input, &copts);
        }
    }
}

#[test]
fn dirty_set_covers_bulk_range_writes() {
    let p = bulk_program();
    let input = input_for(33);
    for copts in engine_variants() {
        assert_dirty_covers_writes(&p, &input, &copts);
    }
}

#[test]
fn selective_reset_matches_full_reset_bitwise() {
    // Interleave dirty-reset and full-reset executors over trials with
    // *different* inputs (so stale residue from a bad reset would show).
    let p = scatter_program(Some(Wcr::Sum), 1, 777);
    let prog = Program::compile(&p);
    let mut dirty_exec = prog.executor();
    let mut full_exec = prog.executor();
    let dirty_opts = ExecOptions {
        reset: ResetPolicy::Dirty,
        ..Default::default()
    };
    let full_opts = ExecOptions {
        reset: ResetPolicy::Full,
        ..Default::default()
    };
    for n in [40, 7, 23, 40, 1] {
        let input = input_for(n);
        dirty_exec.execute(&input, &dirty_opts, None, None).unwrap();
        full_exec.execute(&input, &full_opts, None, None).unwrap();
        let d = dirty_exec.array("B").unwrap();
        let f = full_exec.array("B").unwrap();
        assert_eq!(d.len(), f.len());
        for i in 0..d.len() {
            assert_eq!(
                d.get(i).as_f64().to_bits(),
                f.get(i).as_f64().to_bits(),
                "B[{i}] diverges between dirty and full resets (n={n})"
            );
        }
    }
}

// ----- guard planes ----------------------------------------------------

/// `B[i + off] = A[i]` over `i in 0..N` with `B` of shape `[N]`: the last
/// iteration stores `off` elements past the end.
fn off_by_program(off: i64, wcr: Option<Wcr>) -> Sdfg {
    let mut b = SdfgBuilder::new("offby");
    b.symbol("N");
    b.array("A", DType::F64, &["N"]);
    b.array("B", DType::F64, &["N"]);
    let st = b.start();
    b.in_state(st, |df| {
        let a = df.access("A");
        let o = df.access("B");
        let m = df.map(
            &["i"],
            vec![SymRange::full(sym("N"))],
            Schedule::Parallel,
            |body| {
                let a = body.access("A");
                let o = body.access("B");
                let t = body.tasklet(Tasklet::simple("cp", vec!["x"], "y", ScalarExpr::r("x")));
                body.read(
                    a,
                    t,
                    Memlet::new("A", Subset::at(vec![sym("i")])).to_conn("x"),
                );
                let mut w =
                    Memlet::new("B", Subset::at(vec![sym("i") + SymExpr::Int(off)])).from_conn("y");
                if let Some(op) = wcr {
                    w = w.with_wcr(op);
                }
                body.write(t, o, w);
            },
        );
        df.auto_wire(m, &[a], &[o]);
    });
    b.build()
}

fn run_compiled(p: &Sdfg, input: &ExecState, opts: &ExecOptions) -> Result<(), ExecError> {
    Program::compile(p)
        .executor()
        .execute(input, opts, None, None)
}

#[test]
fn oob_write_traps_by_default() {
    let p = off_by_program(1, None);
    let err = run_compiled(&p, &input_for(8), &ExecOptions::default()).unwrap_err();
    assert_eq!(
        err,
        ExecError::OutOfBounds {
            data: "B".into(),
            point: vec![8],
            shape: vec![8],
        }
    );
}

#[test]
fn oob_write_in_slop_mode_is_a_guard_fault_at_the_element() {
    let p = off_by_program(1, None);
    let opts = ExecOptions {
        oob_slop: true,
        ..Default::default()
    };
    let err = run_compiled(&p, &input_for(8), &opts).unwrap_err();
    assert_eq!(
        err,
        ExecError::GuardViolation {
            data: "B".into(),
            point: vec![8],
            shape: vec![8],
        }
    );
    let msg = err.to_string();
    assert!(
        msg.contains("'B'") && msg.contains("[8]"),
        "triage message names container and element: {msg}"
    );
    assert!(err.is_crash(), "guard faults classify as crashes");
}

#[test]
fn far_oob_write_still_traps_in_slop_mode() {
    // 100 elements past the end is outside the guard window — a native
    // run would segfault, and the slop mode keeps the trap.
    let p = off_by_program(100, None);
    let opts = ExecOptions {
        oob_slop: true,
        ..Default::default()
    };
    let err = run_compiled(&p, &input_for(8), &opts).unwrap_err();
    assert!(
        matches!(err, ExecError::OutOfBounds { .. }),
        "far wild store must keep trapping: {err:?}"
    );
}

#[test]
fn wcr_oob_write_still_traps_in_slop_mode() {
    // Read-modify-write has no native single-store analogue — it reads
    // out of bounds first, so it keeps the trap even in slop mode.
    let p = off_by_program(1, Some(Wcr::Sum));
    let opts = ExecOptions {
        oob_slop: true,
        ..Default::default()
    };
    let err = run_compiled(&p, &input_for(8), &opts).unwrap_err();
    assert!(
        matches!(err, ExecError::OutOfBounds { .. }),
        "WCR stores must keep trapping: {err:?}"
    );
}

/// `B[1, j+1] = A[j]` over `j in 0..N` on a 2-D `B[N, N]`: the last store
/// targets point `[1, N]`, whose row-major linear offset `2N` is still
/// inside the payload — a native wild store silently corrupts `B[2, 0]`.
#[test]
fn payload_foldback_corrupts_neighbor_silently_in_slop_mode() {
    let n: i64 = 6;
    let mut b = SdfgBuilder::new("fold");
    b.symbol("N");
    b.array("A", DType::F64, &["N"]);
    b.array("B", DType::F64, &["N", "N"]);
    let st = b.start();
    b.in_state(st, |df| {
        let a = df.access("A");
        let o = df.access("B");
        let m = df.map(
            &["j"],
            vec![SymRange::full(sym("N"))],
            Schedule::Parallel,
            |body| {
                let a = body.access("A");
                let o = body.access("B");
                let t = body.tasklet(Tasklet::simple("cp", vec!["x"], "y", ScalarExpr::r("x")));
                body.read(
                    a,
                    t,
                    Memlet::new("A", Subset::at(vec![sym("j")])).to_conn("x"),
                );
                body.write(
                    t,
                    o,
                    Memlet::new(
                        "B",
                        Subset::at(vec![SymExpr::Int(1), sym("j") + SymExpr::Int(1)]),
                    )
                    .from_conn("y"),
                );
            },
        );
        df.auto_wire(m, &[a], &[o]);
    });
    let p = b.build();
    let input = input_for(n);

    // Trap mode: the engines agree this is out of bounds at [1, N].
    let err = run_compiled(&p, &input, &ExecOptions::default()).unwrap_err();
    assert_eq!(
        err,
        ExecError::OutOfBounds {
            data: "B".into(),
            point: vec![1, n],
            shape: vec![n, n],
        }
    );

    // Slop mode: the store folds back into B[2, 0] and the run succeeds —
    // exactly the silent corruption native code would exhibit.
    let opts = ExecOptions {
        oob_slop: true,
        ..Default::default()
    };
    let prog = Program::compile(&p);
    let mut exec = prog.executor();
    exec.execute(&input, &opts, None, None)
        .expect("fold-back is silent");
    let arr = exec.array("B").unwrap();
    let a_last = (((n - 1) * 3 % 17) as f64) / 4.0;
    assert_eq!(
        arr.get((2 * n) as usize).as_f64(),
        a_last,
        "B[2,0] holds the folded-back store of A[N-1]"
    );
    let (all, spans) = exec.dirty_spans("B").unwrap();
    let off = (2 * n) as usize;
    assert!(
        all || spans.iter().any(|&(lo, hi)| lo <= off && off < hi),
        "the folded-back element must be in the dirty set (spans {spans:?})"
    );
}
