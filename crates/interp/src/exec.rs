//! The interpreter proper.

use crate::coverage::{location_id, CoverageMap};
use crate::error::ExecError;
use crate::value::ArrayValue;
use fuzzyflow_ir::{
    BinOp, Bindings, CmpOp, CommOp, DataDesc, Dataflow, DfNode, LibraryOp, MapScope, Memlet,
    Scalar, ScalarExpr, Sdfg, State, Storage, Tasklet, UnOp, Wcr,
};
use std::collections::BTreeMap;

/// How a reused [`Executor`](crate::Executor) restores its retained
/// allocation buffers between trials.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ResetPolicy {
    /// Reset only the granules the previous run dirtied, from the
    /// pristine fill pattern tracked in the arena — bit-identical to
    /// [`ResetPolicy::Full`] (enforced by the engine-equivalence suite)
    /// but skipping the full-container memset/refill on large,
    /// sparsely-written containers. Falls back to a full reset whenever
    /// tracking cannot vouch for a buffer (fresh allocations, tiny
    /// containers, program or shape changes, non-affine writes).
    #[default]
    Dirty,
    /// Unconditionally refill every reused allocation (the reference
    /// behavior; the `trial_reset` bench measures the gap).
    Full,
}

/// Options controlling one execution.
#[derive(Clone, Debug)]
pub struct ExecOptions {
    /// Step budget; exceeding it raises [`ExecError::StepLimitExceeded`]
    /// (the hang oracle of paper Sec. 5.1).
    pub max_steps: u64,
    /// Between-trial reset strategy for reused executors. Ignored by the
    /// tree-walk engine, which never reuses buffers.
    pub reset: ResetPolicy,
    /// Out-of-bounds *slop* mode for the compiled engine: a plain
    /// (non-WCR) store whose subscript fails its bounds check is modeled
    /// like a native wild store instead of trapping immediately — it
    /// lands at its row-major linear offset, corrupting a poisoned guard
    /// plane (reported after the run as
    /// [`ExecError::GuardViolation`] with the faulting container and
    /// element) or, when the offset
    /// folds back into the payload, silently corrupting a neighboring
    /// element exactly as native code would. Offsets beyond the guard
    /// windows still trap ([`ExecError::OutOfBounds`] — the "far
    /// segfault"). Off by default: the default trap mode is what the
    /// cross-engine equivalence suite pins, and reads always trap.
    pub oob_slop: bool,
    /// Whether fused kernels may execute natively-emitted machine code
    /// (the fifth engine tier, see [`crate::jit`]). On by default;
    /// bit-identical to the bytecode tiers wherever it engages, so
    /// turning it off only trades speed. Ignored by the tree-walk
    /// engine and by kernels the JIT rejects.
    pub jit: bool,
}

impl ExecOptions {
    /// The default step budget of [`ExecOptions::default`].
    pub const DEFAULT_MAX_STEPS: u64 = 50_000_000;
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            max_steps: Self::DEFAULT_MAX_STEPS,
            reset: ResetPolicy::default(),
            oob_slop: false,
            jit: true,
        }
    }
}

/// Handler for distributed collectives, installed by the `fuzzyflow-dist`
/// simulated runtime. Single-node executions run without one; reaching a
/// communication node then fails with [`ExecError::NoCommHandler`].
pub trait CommHandler: Sync {
    /// Executes a collective for the calling `rank`, given its local
    /// contribution; returns the rank's local result buffer.
    fn collective(
        &self,
        node: &str,
        op: &CommOp,
        rank: i64,
        input: &ArrayValue,
    ) -> Result<ArrayValue, ExecError>;
}

/// The mutable program state of an execution: symbol values plus array
/// contents. Pre-populate symbols and input arrays, run, then inspect
/// output arrays — together these are the paper's *input configuration*
/// and *system state*.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExecState {
    pub symbols: Bindings,
    pub arrays: BTreeMap<String, ArrayValue>,
}

/// A detected difference between two executions' system states.
#[derive(Clone, Debug, PartialEq)]
pub struct StateMismatch {
    pub data: String,
    /// Linear element index of the first difference.
    pub index: usize,
    pub lhs: String,
    pub rhs: String,
}

impl std::fmt::Display for StateMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "'{}' differs at element {}: {} vs {}",
            self.data, self.index, self.lhs, self.rhs
        )
    }
}

impl ExecState {
    /// Empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds a symbol value.
    pub fn bind(&mut self, name: &str, value: i64) -> &mut Self {
        self.symbols.set(name, value);
        self
    }

    /// Installs an input array.
    pub fn set_array(&mut self, name: &str, value: ArrayValue) -> &mut Self {
        self.arrays.insert(name.to_string(), value);
        self
    }

    /// Array accessor.
    pub fn array(&self, name: &str) -> Option<&ArrayValue> {
        self.arrays.get(name)
    }

    /// Compares the named containers between two states. `tol == 0` means
    /// bit-exact comparison (paper Sec. 5.1). Returns the first mismatch.
    pub fn compare_on(
        &self,
        other: &ExecState,
        names: &[String],
        tol: f64,
    ) -> Option<StateMismatch> {
        for name in names {
            match (self.arrays.get(name), other.arrays.get(name)) {
                (Some(a), Some(b)) => {
                    if let Some(i) = a.first_mismatch(b, tol) {
                        let lhs = if i < a.len() {
                            a.get(i).to_string()
                        } else {
                            "<shape>".into()
                        };
                        let rhs = if i < b.len() {
                            b.get(i).to_string()
                        } else {
                            "<shape>".into()
                        };
                        return Some(StateMismatch {
                            data: name.clone(),
                            index: i,
                            lhs,
                            rhs,
                        });
                    }
                }
                (a, b) => {
                    if a.is_some() != b.is_some() {
                        return Some(StateMismatch {
                            data: name.clone(),
                            index: 0,
                            lhs: if a.is_some() {
                                "<present>".into()
                            } else {
                                "<missing>".into()
                            },
                            rhs: if b.is_some() {
                                "<present>".into()
                            } else {
                                "<missing>".into()
                            },
                        });
                    }
                }
            }
        }
        None
    }
}

/// Runs an SDFG to completion with default options and no comm/coverage.
///
/// Thin compile-then-execute convenience over [`crate::Program`]: the SDFG
/// is lowered to a compiled program and executed once. Call sites that run
/// the same SDFG many times should compile once with
/// [`Program::compile`](crate::Program::compile) and reuse an
/// [`Executor`](crate::Executor) instead.
pub fn run(sdfg: &Sdfg, state: &mut ExecState) -> Result<(), ExecError> {
    run_with(sdfg, state, &ExecOptions::default(), None, None)
}

/// Runs an SDFG with explicit options, optional communication handler and
/// optional coverage map (compile-then-execute convenience; see [`run`]).
pub fn run_with(
    sdfg: &Sdfg,
    state: &mut ExecState,
    opts: &ExecOptions,
    comm: Option<&dyn CommHandler>,
    cov: Option<&mut CoverageMap>,
) -> Result<(), ExecError> {
    let program = crate::Program::compile(sdfg);
    program.run_with(state, opts, comm, cov)
}

/// Runs an SDFG on the legacy tree-walk interpreter (default options).
///
/// Kept as the reference semantics the compiled engine is differentially
/// tested against (the engine-equivalence property suite) and as the
/// baseline of the `exec_engine` benchmark.
pub fn run_tree_walk(sdfg: &Sdfg, state: &mut ExecState) -> Result<(), ExecError> {
    run_with_tree_walk(sdfg, state, &ExecOptions::default(), None, None)
}

/// Tree-walk interpreter with explicit options/comm/coverage (see
/// [`run_tree_walk`]).
pub fn run_with_tree_walk(
    sdfg: &Sdfg,
    state: &mut ExecState,
    opts: &ExecOptions,
    comm: Option<&dyn CommHandler>,
    cov: Option<&mut CoverageMap>,
) -> Result<(), ExecError> {
    let mut ex = Exec {
        sdfg,
        opts,
        comm,
        cov,
        steps: 0,
    };
    ex.allocate(state)?;
    ex.run_state_machine(state)
}

struct Exec<'a> {
    sdfg: &'a Sdfg,
    opts: &'a ExecOptions,
    comm: Option<&'a dyn CommHandler>,
    cov: Option<&'a mut CoverageMap>,
    steps: u64,
}

impl<'a> Exec<'a> {
    fn tick(&mut self, n: u64) -> Result<(), ExecError> {
        self.steps += n;
        if self.steps > self.opts.max_steps {
            return Err(ExecError::StepLimitExceeded {
                limit: self.opts.max_steps,
            });
        }
        Ok(())
    }

    fn cover(&mut self, parts: &[u64]) {
        if let Some(c) = self.cov.as_deref_mut() {
            c.record(location_id(parts));
        }
    }

    /// Allocates every container declared by the program that the caller
    /// did not provide. Host containers are zero-initialized; device
    /// containers are filled with a deterministic garbage pattern,
    /// modeling uninitialized accelerator memory (paper Fig. 7).
    fn allocate(&mut self, st: &mut ExecState) -> Result<(), ExecError> {
        for (name, desc) in &self.sdfg.arrays {
            if st.arrays.contains_key(name) {
                continue;
            }
            let shape = desc.concrete_shape(&st.symbols).map_err(ExecError::from)?;
            if shape.iter().any(|&d| d < 0) {
                return Err(ExecError::Malformed(format!(
                    "container '{name}' has negative dimension in shape {shape:?}"
                )));
            }
            let value = match desc.storage {
                Storage::Host => ArrayValue::zeros(desc.dtype, shape),
                Storage::Device => ArrayValue::garbage(desc.dtype, shape),
            };
            st.arrays.insert(name.clone(), value);
        }
        Ok(())
    }

    fn run_state_machine(&mut self, st: &mut ExecState) -> Result<(), ExecError> {
        let mut current = self.sdfg.start;
        loop {
            self.tick(1)?;
            self.cover(&[0x57A7E, current.0 as u64]);
            let state: &State = self.sdfg.state(current);
            let site = location_id(&[0x57A7E, current.0 as u64]);
            self.exec_dataflow(&state.df, st, site)?;

            let mut next = None;
            for &e in self.sdfg.states.out_edge_ids(current) {
                let edge = self.sdfg.states.edge(e);
                if edge.condition.eval(&st.symbols)? {
                    for (sym, val) in &edge.assignments {
                        let v = val.eval(&st.symbols)?;
                        st.symbols.set(sym.clone(), v);
                    }
                    self.cover(&[0xED6E, e.0 as u64]);
                    next = Some(self.sdfg.states.dst(e));
                    break;
                }
            }
            match next {
                Some(n) => current = n,
                None => return Ok(()),
            }
        }
    }

    fn exec_dataflow(
        &mut self,
        df: &Dataflow,
        st: &mut ExecState,
        site: u64,
    ) -> Result<(), ExecError> {
        let order = fuzzyflow_graph::topological_sort(&df.graph)
            .map_err(|e| ExecError::Malformed(format!("cyclic dataflow ({e})")))?;
        for n in order {
            let node_site = location_id(&[site, n.0 as u64]);
            match df.graph.node(n) {
                DfNode::Access(name) => {
                    if !st.arrays.contains_key(name) {
                        return Err(ExecError::UnknownData(name.clone()));
                    }
                }
                DfNode::Tasklet(t) => {
                    self.tick(1)?;
                    self.cover(&[node_site]);
                    self.exec_tasklet(df, n, t, st, node_site)?;
                }
                DfNode::Map(m) => {
                    self.cover(&[node_site]);
                    self.exec_map(m, st, node_site)?;
                }
                DfNode::Library(l) => {
                    self.cover(&[node_site]);
                    self.exec_library(df, n, &l.name, &l.op, st)?;
                }
            }
        }
        Ok(())
    }

    fn exec_map(&mut self, map: &MapScope, st: &mut ExecState, site: u64) -> Result<(), ExecError> {
        self.iterate_map_dim(map, 0, st, site)
    }

    fn iterate_map_dim(
        &mut self,
        map: &MapScope,
        dim: usize,
        st: &mut ExecState,
        site: u64,
    ) -> Result<(), ExecError> {
        if dim == map.params.len() {
            self.tick(1)?;
            return self.exec_dataflow(&map.body, st, site);
        }
        // Ranges may reference outer map parameters *and* earlier
        // parameters of this map (triangular iteration spaces).
        let r = map.ranges[dim].concrete(&st.symbols)?;
        let param = &map.params[dim];
        let saved = st.symbols.get(param);
        let len = r.len() as i64;
        for k in 0..len {
            let v = r.start + k * r.step;
            st.symbols.set(param.clone(), v);
            self.iterate_map_dim(map, dim + 1, st, site)?;
        }
        match saved {
            Some(v) => {
                st.symbols.set(param.clone(), v);
            }
            None => {
                st.symbols.remove(param);
            }
        }
        Ok(())
    }

    /// Reads the elements a memlet delivers, with bounds checking.
    fn read_memlet(
        &mut self,
        st: &ExecState,
        m: &Memlet,
        context: &str,
    ) -> Result<Vec<Scalar>, ExecError> {
        let arr = st
            .arrays
            .get(&m.data)
            .ok_or_else(|| ExecError::UnknownData(m.data.clone()))?;
        let c = m.subset.concrete(&st.symbols)?;
        let mut out = Vec::with_capacity(c.volume());
        for point in c.iter_points() {
            let off =
                DataDesc::linearize(arr.shape(), &point).ok_or_else(|| ExecError::OutOfBounds {
                    data: m.data.clone(),
                    point: point.clone(),
                    shape: arr.shape().to_vec(),
                })?;
            out.push(arr.get(off));
        }
        if out.is_empty() {
            return Err(ExecError::VolumeMismatch {
                context: context.to_string(),
                expected: 1,
                actual: 0,
            });
        }
        self.tick(out.len() as u64)?;
        Ok(out)
    }

    /// Writes elements through a memlet, applying WCR if present.
    fn write_memlet(
        &mut self,
        st: &mut ExecState,
        m: &Memlet,
        values: &[Scalar],
        context: &str,
    ) -> Result<(), ExecError> {
        let c = m.subset.concrete(&st.symbols)?;
        let points: Vec<Vec<i64>> = c.iter_points().collect();
        if points.len() != values.len() {
            return Err(ExecError::VolumeMismatch {
                context: context.to_string(),
                expected: points.len(),
                actual: values.len(),
            });
        }
        self.tick(points.len() as u64)?;
        let arr = st
            .arrays
            .get_mut(&m.data)
            .ok_or_else(|| ExecError::UnknownData(m.data.clone()))?;
        for (point, &v) in points.iter().zip(values) {
            let off =
                DataDesc::linearize(arr.shape(), point).ok_or_else(|| ExecError::OutOfBounds {
                    data: m.data.clone(),
                    point: point.clone(),
                    shape: arr.shape().to_vec(),
                })?;
            let stored = match m.wcr {
                None => v,
                Some(wcr) => combine_wcr(wcr, arr.get(off), v),
            };
            arr.set(off, stored);
        }
        Ok(())
    }

    fn exec_tasklet(
        &mut self,
        df: &Dataflow,
        n: fuzzyflow_graph::NodeId,
        t: &Tasklet,
        st: &mut ExecState,
        site: u64,
    ) -> Result<(), ExecError> {
        let lanes = t.lanes.max(1) as usize;
        // Gather inputs per connector.
        let mut inputs: BTreeMap<String, Vec<Scalar>> = BTreeMap::new();
        for (_, m) in df.in_memlets(n) {
            let conn = m.dst_conn.clone().ok_or_else(|| {
                ExecError::Malformed(format!(
                    "input memlet of tasklet '{}' has no connector",
                    t.name
                ))
            })?;
            let vals = self.read_memlet(st, m, &t.name)?;
            if vals.len() != 1 && vals.len() != lanes {
                return Err(ExecError::VolumeMismatch {
                    context: format!("tasklet '{}' input '{conn}'", t.name),
                    expected: lanes,
                    actual: vals.len(),
                });
            }
            inputs.insert(conn, vals);
        }
        // Execute code lane-wise.
        let mut outputs: BTreeMap<String, Vec<Scalar>> = BTreeMap::new();
        for lane in 0..lanes {
            let mut scope: BTreeMap<String, Scalar> = BTreeMap::new();
            for (conn, vals) in &inputs {
                let v = if vals.len() == 1 { vals[0] } else { vals[lane] };
                scope.insert(conn.clone(), v);
            }
            for (si, stmt) in t.code.iter().enumerate() {
                let mut sel = 0u64;
                let v = self.eval_expr(
                    &stmt.value,
                    &scope,
                    &st.symbols,
                    &t.name,
                    location_id(&[site, si as u64]),
                    &mut sel,
                )?;
                scope.insert(stmt.dst.clone(), v);
            }
            for out in &t.outputs {
                let v = *scope.get(out).ok_or_else(|| {
                    ExecError::Malformed(format!(
                        "tasklet '{}' never assigns output connector '{out}'",
                        t.name
                    ))
                })?;
                outputs.entry(out.clone()).or_default().push(v);
            }
        }
        // Deliver outputs.
        for (_, m) in df.out_memlets(n) {
            let conn = m.src_conn.clone().ok_or_else(|| {
                ExecError::Malformed(format!(
                    "output memlet of tasklet '{}' has no connector",
                    t.name
                ))
            })?;
            let vals = outputs.get(&conn).ok_or_else(|| ExecError::UndefinedRef {
                tasklet: t.name.clone(),
                name: conn.clone(),
            })?;
            self.write_memlet(st, m, vals, &t.name)?;
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_expr(
        &mut self,
        e: &ScalarExpr,
        scope: &BTreeMap<String, Scalar>,
        symbols: &Bindings,
        tasklet: &str,
        site: u64,
        sel: &mut u64,
    ) -> Result<Scalar, ExecError> {
        Ok(match e {
            ScalarExpr::Const(c) => *c,
            ScalarExpr::Ref(name) => match scope.get(name) {
                Some(v) => *v,
                None => match symbols.get(name) {
                    Some(v) => Scalar::I64(v),
                    None => {
                        return Err(ExecError::UndefinedRef {
                            tasklet: tasklet.to_string(),
                            name: name.clone(),
                        })
                    }
                },
            },
            ScalarExpr::Bin(op, a, b) => {
                let x = self.eval_expr(a, scope, symbols, tasklet, site, sel)?;
                let y = self.eval_expr(b, scope, symbols, tasklet, site, sel)?;
                apply_bin(*op, x, y)?
            }
            ScalarExpr::Un(op, a) => {
                let x = self.eval_expr(a, scope, symbols, tasklet, site, sel)?;
                apply_un(*op, x)
            }
            ScalarExpr::Cmp(op, a, b) => {
                let x = self.eval_expr(a, scope, symbols, tasklet, site, sel)?;
                let y = self.eval_expr(b, scope, symbols, tasklet, site, sel)?;
                Scalar::Bool(apply_cmp(*op, x, y))
            }
            ScalarExpr::Select(c, a, b) => {
                let cv = self
                    .eval_expr(c, scope, symbols, tasklet, site, sel)?
                    .as_bool();
                *sel += 1;
                self.cover(&[site, *sel, cv as u64]);
                if cv {
                    self.eval_expr(a, scope, symbols, tasklet, site, sel)?
                } else {
                    self.eval_expr(b, scope, symbols, tasklet, site, sel)?
                }
            }
        })
    }

    fn exec_library(
        &mut self,
        df: &Dataflow,
        n: fuzzyflow_graph::NodeId,
        name: &str,
        op: &LibraryOp,
        st: &mut ExecState,
    ) -> Result<(), ExecError> {
        // Collect input blocks by connector.
        let mut ins: BTreeMap<String, (Vec<i64>, Vec<Scalar>)> = BTreeMap::new();
        for (_, m) in df.in_memlets(n) {
            let conn = m.dst_conn.clone().ok_or_else(|| {
                ExecError::Malformed(format!("input memlet of library '{name}' has no connector"))
            })?;
            let dims = block_dims(st, m)?;
            let vals = self.read_memlet(st, m, name)?;
            ins.insert(conn, (dims, vals));
        }
        let get = |conn: &str| -> Result<&(Vec<i64>, Vec<Scalar>), ExecError> {
            ins.get(conn).ok_or_else(|| {
                ExecError::Malformed(format!("library '{name}' missing input connector '{conn}'"))
            })
        };

        let mut out_by_conn: BTreeMap<String, Vec<Scalar>> = BTreeMap::new();
        match op {
            LibraryOp::MatMul => {
                let (da, a) = get("A")?;
                let (db, b) = get("B")?;
                let c = matmul(name, da, a, db, b)?;
                self.tick(c.len() as u64)?;
                out_by_conn.insert("C".into(), c);
            }
            LibraryOp::Transpose => {
                let (d, v) = get("in")?;
                if d.len() != 2 {
                    return Err(ExecError::ShapeError {
                        node: name.into(),
                        detail: format!("transpose expects 2-D input, got {d:?}"),
                    });
                }
                let (r, cdim) = (d[0] as usize, d[1] as usize);
                let mut out = vec![Scalar::F64(0.0); v.len()];
                for i in 0..r {
                    for j in 0..cdim {
                        out[j * r + i] = v[i * cdim + j];
                    }
                }
                out_by_conn.insert("out".into(), out);
            }
            LibraryOp::Reduce { op, axis } => {
                let (d, v) = get("in")?;
                let out = reduce(name, *op, *axis, d, v)?;
                out_by_conn.insert("out".into(), out);
            }
            LibraryOp::Copy => {
                let (_, v) = get("in")?;
                out_by_conn.insert("out".into(), v.clone());
            }
            LibraryOp::Softmax => {
                let (d, v) = get("in")?;
                out_by_conn.insert("out".into(), softmax(d, v));
            }
            LibraryOp::Comm(comm_op) => {
                let (d, v) = get("in")?;
                let handler = self.comm.ok_or_else(|| ExecError::NoCommHandler {
                    node: name.to_string(),
                })?;
                let rank = st.symbols.get("rank").unwrap_or(0);
                let mut buf = ArrayValue::zeros(
                    st.arrays
                        .get(&df.in_memlets(n)[0].1.data)
                        .map(|a| a.dtype())
                        .unwrap_or(fuzzyflow_ir::DType::F64),
                    d.clone(),
                );
                for (i, &s) in v.iter().enumerate() {
                    buf.set(i, s);
                }
                let result = handler.collective(name, comm_op, rank, &buf)?;
                let out: Vec<Scalar> = (0..result.len()).map(|i| result.get(i)).collect();
                out_by_conn.insert("out".into(), out);
            }
        }

        for (_, m) in df.out_memlets(n) {
            let conn = m.src_conn.clone().ok_or_else(|| {
                ExecError::Malformed(format!(
                    "output memlet of library '{name}' has no connector"
                ))
            })?;
            let vals = out_by_conn
                .get(&conn)
                .ok_or_else(|| {
                    ExecError::Malformed(format!(
                        "library '{name}' has no output connector '{conn}'"
                    ))
                })?
                .clone();
            self.write_memlet(st, m, &vals, name)?;
        }
        Ok(())
    }
}

/// Per-dimension lengths of a memlet's concrete subset.
fn block_dims(st: &ExecState, m: &Memlet) -> Result<Vec<i64>, ExecError> {
    let c = m.subset.concrete(&st.symbols)?;
    Ok(c.dims.iter().map(|d| d.len() as i64).collect())
}

pub(crate) fn combine_wcr(wcr: Wcr, old: Scalar, new: Scalar) -> Scalar {
    let float = old.dtype().is_float() || new.dtype().is_float();
    if float {
        let (a, b) = (old.as_f64(), new.as_f64());
        Scalar::F64(match wcr {
            Wcr::Sum => a + b,
            Wcr::Prod => a * b,
            Wcr::Max => a.max(b),
            Wcr::Min => a.min(b),
        })
        .cast(old.dtype())
    } else {
        let (a, b) = (old.as_i64(), new.as_i64());
        Scalar::I64(match wcr {
            Wcr::Sum => a.wrapping_add(b),
            Wcr::Prod => a.wrapping_mul(b),
            Wcr::Max => a.max(b),
            Wcr::Min => a.min(b),
        })
        .cast(old.dtype())
    }
}

pub(crate) fn apply_bin(op: BinOp, x: Scalar, y: Scalar) -> Result<Scalar, ExecError> {
    let float = x.dtype().is_float() || y.dtype().is_float();
    Ok(match op {
        BinOp::And => Scalar::Bool(x.as_bool() && y.as_bool()),
        BinOp::Or => Scalar::Bool(x.as_bool() || y.as_bool()),
        BinOp::Pow => Scalar::F64(x.as_f64().powf(y.as_f64())),
        _ if float => {
            let (a, b) = (x.as_f64(), y.as_f64());
            Scalar::F64(match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
                BinOp::Mod => a.rem_euclid(b),
                BinOp::Min => a.min(b),
                BinOp::Max => a.max(b),
                _ => unreachable!("handled above"),
            })
        }
        _ => {
            let (a, b) = (x.as_i64(), y.as_i64());
            match op {
                BinOp::Add => Scalar::I64(a.wrapping_add(b)),
                BinOp::Sub => Scalar::I64(a.wrapping_sub(b)),
                BinOp::Mul => Scalar::I64(a.wrapping_mul(b)),
                BinOp::Div => {
                    if b == 0 {
                        return Err(ExecError::IntegerDivisionByZero);
                    }
                    Scalar::I64(a.wrapping_div(b))
                }
                BinOp::Mod => {
                    if b == 0 {
                        return Err(ExecError::IntegerDivisionByZero);
                    }
                    Scalar::I64(a.wrapping_rem(b))
                }
                BinOp::Min => Scalar::I64(a.min(b)),
                BinOp::Max => Scalar::I64(a.max(b)),
                _ => unreachable!("handled above"),
            }
        }
    })
}

pub(crate) fn apply_un(op: UnOp, x: Scalar) -> Scalar {
    match op {
        UnOp::Not => Scalar::Bool(!x.as_bool()),
        UnOp::Neg => {
            if x.dtype().is_float() {
                Scalar::F64(-x.as_f64()).cast(x.dtype())
            } else {
                Scalar::I64(x.as_i64().wrapping_neg()).cast(x.dtype())
            }
        }
        UnOp::Abs => {
            if x.dtype().is_float() {
                Scalar::F64(x.as_f64().abs()).cast(x.dtype())
            } else {
                Scalar::I64(x.as_i64().wrapping_abs()).cast(x.dtype())
            }
        }
        UnOp::Sqrt => Scalar::F64(x.as_f64().sqrt()),
        UnOp::Exp => Scalar::F64(x.as_f64().exp()),
        UnOp::Log => Scalar::F64(x.as_f64().ln()),
        UnOp::Floor => Scalar::F64(x.as_f64().floor()),
        UnOp::Ceil => Scalar::F64(x.as_f64().ceil()),
        UnOp::Tanh => Scalar::F64(x.as_f64().tanh()),
    }
}

pub(crate) fn apply_cmp(op: CmpOp, x: Scalar, y: Scalar) -> bool {
    if x.dtype().is_float() || y.dtype().is_float() {
        let (a, b) = (x.as_f64(), y.as_f64());
        match op {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    } else {
        let (a, b) = (x.as_i64(), y.as_i64());
        match op {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }
}

pub(crate) fn matmul(
    name: &str,
    da: &[i64],
    a: &[Scalar],
    db: &[i64],
    b: &[Scalar],
) -> Result<Vec<Scalar>, ExecError> {
    match (da.len(), db.len()) {
        (2, 2) => {
            let (m, k) = (da[0] as usize, da[1] as usize);
            let (k2, n) = (db[0] as usize, db[1] as usize);
            if k != k2 {
                return Err(ExecError::ShapeError {
                    node: name.into(),
                    detail: format!("matmul inner dims differ: {k} vs {k2}"),
                });
            }
            let mut c = vec![Scalar::F64(0.0); m * n];
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0;
                    for l in 0..k {
                        acc += a[i * k + l].as_f64() * b[l * n + j].as_f64();
                    }
                    c[i * n + j] = Scalar::F64(acc);
                }
            }
            Ok(c)
        }
        (3, 3) => {
            let (bs, m, k) = (da[0] as usize, da[1] as usize, da[2] as usize);
            let (bs2, k2, n) = (db[0] as usize, db[1] as usize, db[2] as usize);
            if bs != bs2 || k != k2 {
                return Err(ExecError::ShapeError {
                    node: name.into(),
                    detail: format!("batched matmul dims mismatch: {da:?} @ {db:?}"),
                });
            }
            let mut c = vec![Scalar::F64(0.0); bs * m * n];
            for t in 0..bs {
                for i in 0..m {
                    for j in 0..n {
                        let mut acc = 0.0;
                        for l in 0..k {
                            acc += a[t * m * k + i * k + l].as_f64()
                                * b[t * k * n + l * n + j].as_f64();
                        }
                        c[t * m * n + i * n + j] = Scalar::F64(acc);
                    }
                }
            }
            Ok(c)
        }
        _ => Err(ExecError::ShapeError {
            node: name.into(),
            detail: format!("matmul expects 2-D or 3-D operands, got {da:?} @ {db:?}"),
        }),
    }
}

pub(crate) fn reduce(
    name: &str,
    op: Wcr,
    axis: usize,
    dims: &[i64],
    v: &[Scalar],
) -> Result<Vec<Scalar>, ExecError> {
    if axis >= dims.len() {
        return Err(ExecError::ShapeError {
            node: name.into(),
            detail: format!("reduce axis {axis} out of range for {dims:?}"),
        });
    }
    let outer: i64 = dims[..axis].iter().product();
    let red = dims[axis];
    let inner: i64 = dims[axis + 1..].iter().product();
    let init = match op {
        Wcr::Sum => 0.0,
        Wcr::Prod => 1.0,
        Wcr::Max => f64::NEG_INFINITY,
        Wcr::Min => f64::INFINITY,
    };
    let mut out = vec![init; (outer * inner) as usize];
    for o in 0..outer {
        for r in 0..red {
            for i in 0..inner {
                let idx = ((o * red + r) * inner + i) as usize;
                let dst = (o * inner + i) as usize;
                let x = v[idx].as_f64();
                out[dst] = match op {
                    Wcr::Sum => out[dst] + x,
                    Wcr::Prod => out[dst] * x,
                    Wcr::Max => out[dst].max(x),
                    Wcr::Min => out[dst].min(x),
                };
            }
        }
    }
    Ok(out.into_iter().map(Scalar::F64).collect())
}

pub(crate) fn softmax(dims: &[i64], v: &[Scalar]) -> Vec<Scalar> {
    if dims.is_empty() {
        return vec![Scalar::F64(1.0)];
    }
    let row = *dims.last().expect("non-empty dims") as usize;
    let rows = v.len() / row.max(1);
    let mut out = vec![Scalar::F64(0.0); v.len()];
    for r in 0..rows {
        let slice = &v[r * row..(r + 1) * row];
        let max = slice
            .iter()
            .map(|s| s.as_f64())
            .fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = slice.iter().map(|s| (s.as_f64() - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        for (i, e) in exps.iter().enumerate() {
            out[r * row + i] = Scalar::F64(e / sum);
        }
    }
    out
}
