//! A minimal hand-rolled x86_64 encoder for the SSE2 subset the fused
//! kernels need: `movsd`/`addsd`/`subsd`/`mulsd`/`divsd`/`sqrtsd`/
//! `minsd`/`maxsd`/`ucomisd`/`cvtsi2sd`/`movq`, the packed-double lane
//! forms (`movupd`/`movapd`/`addpd`-family/`sqrtpd`/`minpd`/`maxpd`/
//! `cmppd`/`cmpsd`/`unpcklpd`/`pcmpeqd`) plus the bitwise blends
//! (`andpd`/`andnpd`/`orpd`/`xorpd`), 64-bit integer moves and
//! arithmetic for the loop counters and pointer walks, `setcc` + byte
//! logic for NaN-exact comparisons, and `jcc`/`jmp` with label fixups
//! for select control flow.
//!
//! The encoder emits REX/ModRM byte sequences directly into a `Vec<u8>`;
//! there is deliberately no instruction abstraction beyond one method per
//! needed form. Memory operands are always `[base + disp]` — `base` may
//! be any GPR (a SIB byte is inserted for `r12`, whose low bits collide
//! with the SIB escape), and the displacement picks the short `disp8`
//! form when it fits.

/// General-purpose register numbers (REX-extended encoding).
pub(crate) mod gpr {
    pub const RAX: u8 = 0;
    pub const RCX: u8 = 1;
    pub const RDX: u8 = 2;
    pub const RSI: u8 = 6;
    pub const RDI: u8 = 7;
    /// First of the access-pointer registers `r8..r15`.
    pub const R8: u8 = 8;
}

/// Condition codes (the low nibble of the `0F 9x` setcc / `0F 8x` jcc
/// opcodes).
pub(crate) mod cc {
    /// ZF=1 (equal / zero).
    pub const E: u8 = 0x4;
    /// ZF=0 (not equal / not zero).
    pub const NE: u8 = 0x5;
    /// CF=0 and ZF=0 (unsigned above — ordered `>` after `ucomisd`).
    pub const A: u8 = 0x7;
    /// CF=0 (unsigned above-or-equal — ordered `>=` after `ucomisd`).
    pub const AE: u8 = 0x3;
    /// PF=1 (unordered after `ucomisd`).
    pub const P: u8 = 0xA;
    /// PF=0 (ordered after `ucomisd`).
    pub const NP: u8 = 0xB;
}

/// A forward-referencable branch target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Label(usize);

/// The instruction buffer plus label/fixup state.
pub(crate) struct Asm {
    buf: Vec<u8>,
    /// Label id → bound offset.
    labels: Vec<Option<usize>>,
    /// `(offset of a rel32 field, label it refers to)`.
    fixups: Vec<(usize, usize)>,
}

impl Asm {
    pub fn new() -> Self {
        Asm {
            buf: Vec::with_capacity(256),
            labels: Vec::new(),
            fixups: Vec::new(),
        }
    }

    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    pub fn bind(&mut self, l: Label) {
        debug_assert!(self.labels[l.0].is_none(), "label bound twice");
        self.labels[l.0] = Some(self.buf.len());
    }

    /// Patches every recorded rel32 fixup and returns the finished code.
    pub fn finish(mut self) -> Vec<u8> {
        for (at, l) in std::mem::take(&mut self.fixups) {
            let target = self.labels[l].expect("unbound label");
            let rel = target as i64 - (at as i64 + 4);
            self.buf[at..at + 4].copy_from_slice(&(rel as i32).to_le_bytes());
        }
        self.buf
    }

    // ----- raw emission --------------------------------------------------

    fn rex(&mut self, w: bool, reg: u8, base: u8) {
        let mut r = 0x40u8;
        if w {
            r |= 8;
        }
        if reg >= 8 {
            r |= 4;
        }
        if base >= 8 {
            r |= 1;
        }
        if r != 0x40 {
            self.buf.push(r);
        }
    }

    /// REX that is also required (even as a bare `0x40`) to reach the
    /// `spl`/`bpl`/`sil`/`dil` byte registers.
    fn rex8(&mut self, reg: u8, base: u8) {
        let mut r = 0x40u8;
        if reg >= 8 {
            r |= 4;
        }
        if base >= 8 {
            r |= 1;
        }
        if r != 0x40 || reg >= 4 || base >= 4 {
            self.buf.push(r);
        }
    }

    fn modrm_reg(&mut self, reg: u8, rm: u8) {
        self.buf.push(0xC0 | ((reg & 7) << 3) | (rm & 7));
    }

    fn modrm_mem(&mut self, reg: u8, base: u8, disp: i32) {
        let small = (-128..=127).contains(&disp);
        let md = if small { 0b01 } else { 0b10 };
        self.buf.push((md << 6) | ((reg & 7) << 3) | (base & 7));
        if base & 7 == 4 {
            // r12/rsp as base: rm=100 selects a SIB byte; encode
            // "base only, no index".
            self.buf.push(0x24);
        }
        if small {
            self.buf.push(disp as i8 as u8);
        } else {
            self.buf.extend_from_slice(&disp.to_le_bytes());
        }
    }

    // ----- integer instructions ------------------------------------------

    pub fn push(&mut self, r: u8) {
        if r >= 8 {
            self.buf.push(0x41);
        }
        self.buf.push(0x50 + (r & 7));
    }

    pub fn pop(&mut self, r: u8) {
        if r >= 8 {
            self.buf.push(0x41);
        }
        self.buf.push(0x58 + (r & 7));
    }

    /// `mov r64, imm64`.
    pub fn mov_ri(&mut self, r: u8, imm: u64) {
        self.rex(true, 0, r);
        self.buf.push(0xB8 + (r & 7));
        self.buf.extend_from_slice(&imm.to_le_bytes());
    }

    /// `mov r64, [base + disp]`.
    pub fn mov_rm(&mut self, r: u8, base: u8, disp: i32) {
        self.rex(true, r, base);
        self.buf.push(0x8B);
        self.modrm_mem(r, base, disp);
    }

    /// `mov [base + disp], r64`.
    pub fn mov_mr(&mut self, base: u8, disp: i32, r: u8) {
        self.rex(true, r, base);
        self.buf.push(0x89);
        self.modrm_mem(r, base, disp);
    }

    /// `add r64, [base + disp]`.
    pub fn add_rm(&mut self, r: u8, base: u8, disp: i32) {
        self.rex(true, r, base);
        self.buf.push(0x03);
        self.modrm_mem(r, base, disp);
    }

    /// `and r64, [base + disp]`.
    pub fn and_rm(&mut self, r: u8, base: u8, disp: i32) {
        self.rex(true, r, base);
        self.buf.push(0x23);
        self.modrm_mem(r, base, disp);
    }

    /// `or r64, [base + disp]`.
    pub fn or_rm(&mut self, r: u8, base: u8, disp: i32) {
        self.rex(true, r, base);
        self.buf.push(0x0B);
        self.modrm_mem(r, base, disp);
    }

    /// `xor r64, imm8` (sign-extended).
    pub fn xor_ri8(&mut self, r: u8, imm: i8) {
        self.rex(true, 0, r);
        self.buf.push(0x83);
        self.modrm_reg(6, r);
        self.buf.push(imm as u8);
    }

    /// `test r64, r64`.
    pub fn test_rr(&mut self, a: u8, b: u8) {
        self.rex(true, b, a);
        self.buf.push(0x85);
        self.modrm_reg(b, a);
    }

    /// `dec r64`.
    pub fn dec(&mut self, r: u8) {
        self.rex(true, 0, r);
        self.buf.push(0xFF);
        self.modrm_reg(1, r);
    }

    /// `setcc r8` (low byte of `r`).
    pub fn setcc(&mut self, cond: u8, r: u8) {
        self.rex8(0, r);
        self.buf.push(0x0F);
        self.buf.push(0x90 + cond);
        self.modrm_reg(0, r);
    }

    /// `and dst8, src8`.
    pub fn and_r8(&mut self, dst: u8, src: u8) {
        self.rex8(src, dst);
        self.buf.push(0x20);
        self.modrm_reg(src, dst);
    }

    /// `or dst8, src8`.
    pub fn or_r8(&mut self, dst: u8, src: u8) {
        self.rex8(src, dst);
        self.buf.push(0x08);
        self.modrm_reg(src, dst);
    }

    /// `movzx r64, r8`.
    pub fn movzx(&mut self, dst: u8, src: u8) {
        // REX.W is needed for the 64-bit destination; it also grants
        // access to sil/dil on the source side.
        self.rex(true, dst, src);
        self.buf.push(0x0F);
        self.buf.push(0xB6);
        self.modrm_reg(dst, src);
    }

    pub fn jcc(&mut self, cond: u8, l: Label) {
        self.buf.push(0x0F);
        self.buf.push(0x80 + cond);
        self.fixups.push((self.buf.len(), l.0));
        self.buf.extend_from_slice(&[0; 4]);
    }

    pub fn jmp(&mut self, l: Label) {
        self.buf.push(0xE9);
        self.fixups.push((self.buf.len(), l.0));
        self.buf.extend_from_slice(&[0; 4]);
    }

    pub fn ret(&mut self) {
        self.buf.push(0xC3);
    }

    // ----- SSE2 ----------------------------------------------------------

    /// Register-register SSE op: `prefix 0F op xmm_dst, xmm_src`.
    fn sse_rr(&mut self, prefix: u8, op: u8, dst: u8, src: u8) {
        self.buf.push(prefix);
        self.rex(false, dst, src);
        self.buf.push(0x0F);
        self.buf.push(op);
        self.modrm_reg(dst, src);
    }

    /// Load-form SSE op: `prefix 0F op xmm_dst, [base + disp]`.
    fn sse_rm(&mut self, prefix: u8, op: u8, dst: u8, base: u8, disp: i32) {
        self.buf.push(prefix);
        self.rex(false, dst, base);
        self.buf.push(0x0F);
        self.buf.push(op);
        self.modrm_mem(dst, base, disp);
    }

    /// `movsd xmm, [base + disp]`.
    pub fn movsd_rm(&mut self, dst: u8, base: u8, disp: i32) {
        self.sse_rm(0xF2, 0x10, dst, base, disp);
    }

    /// `movsd [base + disp], xmm`.
    pub fn movsd_mr(&mut self, base: u8, disp: i32, src: u8) {
        self.sse_rm(0xF2, 0x11, src, base, disp);
    }

    /// `movapd xmm_dst, xmm_src` (full-register copy).
    pub fn movapd(&mut self, dst: u8, src: u8) {
        self.sse_rr(0x66, 0x28, dst, src);
    }

    /// `addsd`/`subsd`/`mulsd`/`divsd`/`sqrtsd`/`minsd`/`maxsd` by
    /// opcode byte (`0x58`/`0x5C`/`0x59`/`0x5E`/`0x51`/`0x5D`/`0x5F`):
    /// `op xmm_dst, xmm_src`.
    pub fn sd_op(&mut self, op: u8, dst: u8, src: u8) {
        self.sse_rr(0xF2, op, dst, src);
    }

    /// The packed-double sibling of [`Asm::sd_op`]: `addpd`/`subpd`/
    /// `mulpd`/`divpd`/`sqrtpd`/`minpd`/`maxpd` over both lanes.
    pub fn pd_op(&mut self, op: u8, dst: u8, src: u8) {
        self.sse_rr(0x66, op, dst, src);
    }

    /// `movupd xmm, [base + disp]` — unaligned 16-byte lane-pair load.
    pub fn movupd_rm(&mut self, dst: u8, base: u8, disp: i32) {
        self.sse_rm(0x66, 0x10, dst, base, disp);
    }

    /// `movupd [base + disp], xmm` — unaligned 16-byte lane-pair store.
    pub fn movupd_mr(&mut self, base: u8, disp: i32, src: u8) {
        self.sse_rm(0x66, 0x11, src, base, disp);
    }

    /// `cmppd xmm_dst, xmm_src, pred` — per-lane compare producing
    /// all-ones/all-zeros masks (predicates: 0 EQ_OQ, 1 LT_OS, 2 LE_OS,
    /// 3 UNORD_Q, 4 NEQ_UQ).
    pub fn cmppd(&mut self, dst: u8, src: u8, pred: u8) {
        self.sse_rr(0x66, 0xC2, dst, src);
        self.buf.push(pred);
    }

    /// `cmpsd xmm_dst, xmm_src, pred` — low-lane mask compare (same
    /// predicate encoding as [`Asm::cmppd`]); the upper lane of `dst` is
    /// preserved.
    pub fn cmpsd(&mut self, dst: u8, src: u8, pred: u8) {
        self.sse_rr(0xF2, 0xC2, dst, src);
        self.buf.push(pred);
    }

    /// `ucomisd xmm_a, xmm_b` (flags reflect `a ? b`).
    pub fn ucomisd(&mut self, a: u8, b: u8) {
        self.sse_rr(0x66, 0x2E, a, b);
    }

    /// `xorpd xmm_dst, xmm_src`.
    pub fn xorpd(&mut self, dst: u8, src: u8) {
        self.sse_rr(0x66, 0x57, dst, src);
    }

    /// `andpd xmm_dst, xmm_src`.
    pub fn andpd(&mut self, dst: u8, src: u8) {
        self.sse_rr(0x66, 0x54, dst, src);
    }

    /// `andnpd xmm_dst, xmm_src` (`dst = !dst & src` — the mask-clear
    /// half of a bitwise blend).
    pub fn andnpd(&mut self, dst: u8, src: u8) {
        self.sse_rr(0x66, 0x55, dst, src);
    }

    /// `orpd xmm_dst, xmm_src`.
    pub fn orpd(&mut self, dst: u8, src: u8) {
        self.sse_rr(0x66, 0x56, dst, src);
    }

    /// `pcmpeqd xmm_dst, xmm_src` — with `dst == src`, the canonical
    /// all-ones idiom.
    pub fn pcmpeqd(&mut self, dst: u8, src: u8) {
        self.sse_rr(0x66, 0x76, dst, src);
    }

    /// `unpcklpd xmm_dst, xmm_src` — with `dst == src`, duplicates the
    /// low lane into both lanes (broadcast).
    pub fn unpcklpd(&mut self, dst: u8, src: u8) {
        self.sse_rr(0x66, 0x14, dst, src);
    }

    /// `movq xmm, r64`.
    pub fn movq_xr(&mut self, xmm: u8, r: u8) {
        self.buf.push(0x66);
        self.rex(true, xmm, r);
        self.buf.push(0x0F);
        self.buf.push(0x6E);
        self.modrm_reg(xmm, r);
    }

    /// `cvtsi2sd xmm, r64` — the exact `i64 as f64` conversion.
    pub fn cvtsi2sd(&mut self, xmm: u8, r: u8) {
        self.buf.push(0xF2);
        self.rex(true, xmm, r);
        self.buf.push(0x0F);
        self.buf.push(0x2A);
        self.modrm_reg(xmm, r);
    }
}
