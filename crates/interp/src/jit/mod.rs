//! Native x86_64 code emission for fused map kernels — the fifth engine
//! tier.
//!
//! Eligible [`FusedKernel`](crate::program) bodies are lowered once to a
//! straight-line native inner-row loop (see the `lower` module) and executed
//! through the same runtime precheck as the bytecode kernels: a kernel
//! runs natively only after the precheck proved that no out-of-bounds
//! access, overflow, unbound symbol or step-budget trip can occur
//! anywhere in the iteration box, and step accounting plus batched
//! coverage are computed arithmetically — bit-identical to the bytecode
//! walk by construction. Any ineligibility (non-f64 body, unsupported
//! op, too many registers, interleaved coverage) falls back down the
//! existing engine ladder; the reason is reported through [`JitReject`],
//! mirroring [`FuseReject`](crate::FuseReject).
//!
//! # Packed emission (`lanes > 1`)
//!
//! Vectorized fused kernels — the tier-2 lane-blocked workhorses — are
//! lowered to **packed SSE2** rather than rejected: the kernel body runs
//! on 2-wide xmm lane pairs (`movupd`/`addpd`-family) over unit-stride
//! accesses, with a single scalar remainder element for odd lane counts
//! emitted *after* the pairs so element order matches the bytecode loop
//! exactly. Statically pointwise reads broadcast one value across the
//! lanes (`movsd` + `unpcklpd`); bodies with select control flow keep
//! per-element branches by unrolling the lanes as scalar iterations
//! inside the same blob. Lane strides other than the unit stride the
//! pair loads assume are detected per run and fall back per-kernel
//! ([`JitReject::NonUnitStrideLanes`]) — never per-element — so error
//! ordering, step accounting and dirty-span recording stay bit-identical.
//!
//! `min`/`max` (both as body instructions and as write-conflict
//! combiners) are emitted NaN- and signed-zero-exactly with the same
//! blend rustc/LLVM uses for `f64::min`: `cand = minsd/minpd(y_dst,
//! x_src)` (returns the *source* on unordered/tied operands), an
//! `isnan(x)` mask from a self-`cmppd`, and a branch-free
//! `xorpd`/`andnpd`/`xorpd` bitwise blend selecting `y` where `x` is
//! NaN — ties return the first operand and NaN payloads propagate like
//! the scalar Rust code. The former `JitReject::Vectorized` variant is
//! retired in favor of the precise residual reasons
//! ([`JitReject::LanesTooWide`], [`JitReject::NonUnitStrideLanes`]);
//! `UnsupportedOp`/`UnsupportedWcr` no longer cover `min`/`max` (the
//! sole `UnsupportedWcr` residue is a `min`/`max` combiner fed from a
//! bool register). Reject messages remain stable aggregation keys.
//!
//! # W^X page lifecycle
//!
//! Emitted code lives in pages obtained directly from `mmap` (raw
//! `extern "C"` bindings — no new dependencies) and is never writable
//! and executable at the same time:
//!
//! 1. `JitCode::publish` maps fresh anonymous pages `PROT_READ |
//!    PROT_WRITE`, copies the finished instruction bytes in, and
//! 2. flips the whole mapping to `PROT_READ | PROT_EXEC` with
//!    `mprotect` before the entry pointer ever escapes. A failed flip
//!    unmaps and reports emission failure (the caller falls back to
//!    bytecode).
//! 3. The mapping is `munmap`ed when the last `Arc<JitCode>` drops —
//!    executors clone the `Arc` for the duration of a kernel run, so an
//!    eviction from the code cache can never unmap code that is still
//!    executing.
//!
//! The `jit_wx` smoke test asserts process-wide (via `/proc/self/maps`)
//! that no `rwx` mapping exists after compilation.
//!
//! # Cache contract
//!
//! Compiled blobs are shape-independent: strides, pointers, symbol and
//! parameter values are read from a per-call frame, so one compilation
//! serves every trial of a kernel. Blobs are keyed by the kernel's
//! process-unique `jit_key` in a process-wide `CodeCache` that
//! follows the shared program cache's lock-only-on-insert design —
//! probes are lock-free, the insert mutex is taken only to publish, and
//! coarse LRU eviction (bounded by
//! [`cache_capacity`](crate::cache_capacity)) drops the
//! least-recently-probed entry. Warm campaigns therefore compile zero
//! programs and emit zero bytes of native code.

pub(crate) mod cache;
pub(crate) mod encoder;
pub(crate) mod lower;

pub use cache::{code_cache_stats, CodeCacheStats};

use std::sync::atomic::{AtomicU64, Ordering};

/// Why a fused map scope is not eligible for native execution (or why a
/// particular run fell back at runtime). Static data with a stable
/// message, mirroring [`FuseReject`](crate::FuseReject), so campaign
/// reports can aggregate eligibility counts per reason.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum JitReject {
    /// `ExecOptions::jit` was off for this run.
    Disabled,
    /// The host is not x86_64 (the only emitted target).
    UnsupportedArch,
    /// The map scope did not fuse at all — the JIT only lowers fused
    /// kernels.
    NotFused,
    /// The kernel is vectorized wider than the packed emitter unrolls
    /// (`MAX_JIT_LANES` lanes).
    LanesTooWide,
    /// The body needs more float registers than `xmm0..xmm13`.
    TooManyRegs,
    /// More live memory accesses than the pointer registers `r8..r15`.
    TooManyAccesses,
    /// An instruction outside the emitted SSE2 subset (e.g. `pow`,
    /// transcendentals).
    UnsupportedOp,
    /// A write-conflict-resolution combiner without an exact SSE2
    /// lowering (a `min`/`max` combiner fed from a bool register — the
    /// blend needs the stored value live in a register).
    UnsupportedWcr,
    /// Runtime-only: this run records interleaved per-element coverage
    /// (select branches or multi-tasklet pipelines under a coverage
    /// map), which only the bytecode loops reproduce exactly.
    CoverageInterleave,
    /// Runtime-only: this run spreads a vectorized kernel's lanes at a
    /// stride other than the unit stride the packed loads assume, so it
    /// falls back to the chunked bytecode loop.
    NonUnitStrideLanes,
    /// Runtime-only: the OS refused executable pages.
    MmapFailed,
}

/// Renders `{prefix}{n}{suffix}` into a fixed byte array at compile
/// time, so reject messages quoting a register budget are derived from
/// the budget constant itself and cannot drift from the encoder. The
/// internal `assert!` fails the build when `LEN` disagrees with the
/// rendered length.
const fn budget_msg<const LEN: usize>(prefix: &str, n: usize, suffix: &str) -> [u8; LEN] {
    let mut out = [0u8; LEN];
    let mut i = 0;
    let p = prefix.as_bytes();
    let mut j = 0;
    while j < p.len() {
        out[i] = p[j];
        i += 1;
        j += 1;
    }
    let mut div = 1usize;
    while n / div >= 10 {
        div *= 10;
    }
    while div > 0 {
        out[i] = b'0' + (n / div % 10) as u8;
        i += 1;
        div /= 10;
    }
    let s = suffix.as_bytes();
    j = 0;
    while j < s.len() {
        out[i] = s[j];
        i += 1;
        j += 1;
    }
    assert!(i == LEN, "budget message length mismatch");
    out
}

const fn msg_str(bytes: &[u8]) -> &str {
    match std::str::from_utf8(bytes) {
        Ok(s) => s,
        Err(_) => panic!("budget messages are ASCII"),
    }
}

const TOO_MANY_REGS_BYTES: [u8; 39] = budget_msg(
    "body needs more than ",
    lower::MAX_FLOAT_REGS,
    " float registers",
);
const TOO_MANY_REGS_MSG: &str = msg_str(&TOO_MANY_REGS_BYTES);
const TOO_MANY_ACCESSES_BYTES: [u8; 32] =
    budget_msg("more than ", lower::MAX_PTRS, " live memory accesses");
const TOO_MANY_ACCESSES_MSG: &str = msg_str(&TOO_MANY_ACCESSES_BYTES);
const LANES_TOO_WIDE_BYTES: [u8; 25] =
    budget_msg("more than ", lower::MAX_JIT_LANES, " vector lanes");
const LANES_TOO_WIDE_MSG: &str = msg_str(&LANES_TOO_WIDE_BYTES);

impl JitReject {
    /// Stable human-readable message (also the aggregation key in
    /// campaign reports).
    pub fn message(self) -> &'static str {
        match self {
            JitReject::Disabled => "jit disabled",
            JitReject::UnsupportedArch => "host is not x86_64",
            JitReject::NotFused => "map not fused",
            JitReject::LanesTooWide => LANES_TOO_WIDE_MSG,
            JitReject::TooManyRegs => TOO_MANY_REGS_MSG,
            JitReject::TooManyAccesses => TOO_MANY_ACCESSES_MSG,
            JitReject::UnsupportedOp => "instruction outside the emitted SSE2 subset",
            JitReject::UnsupportedWcr => "write-conflict combiner without exact SSE2 equivalent",
            JitReject::CoverageInterleave => "run records interleaved per-element coverage",
            JitReject::NonUnitStrideLanes => "vector lanes not unit-stride at runtime",
            JitReject::MmapFailed => "executable pages unavailable",
        }
    }
}

/// Counts kernel entries that actually executed native code, process
/// wide, split by emission kind. Tests and benches use the deltas to
/// assert the JIT engaged; campaign reports surface both as cache-tally
/// deltas.
static NATIVE_RUNS_SCALAR: AtomicU64 = AtomicU64::new(0);
static NATIVE_RUNS_PACKED: AtomicU64 = AtomicU64::new(0);

/// Number of fused-kernel executions that ran native code so far in this
/// process (scalar and packed emission combined).
pub fn jit_native_runs() -> u64 {
    NATIVE_RUNS_SCALAR.load(Ordering::Relaxed) + NATIVE_RUNS_PACKED.load(Ordering::Relaxed)
}

/// `(scalar, packed)` native-run counters — the per-emission-kind split
/// of [`jit_native_runs`].
pub fn jit_native_runs_split() -> (u64, u64) {
    (
        NATIVE_RUNS_SCALAR.load(Ordering::Relaxed),
        NATIVE_RUNS_PACKED.load(Ordering::Relaxed),
    )
}

pub(crate) fn count_native_run(packed: bool) {
    if packed {
        NATIVE_RUNS_PACKED.fetch_add(1, Ordering::Relaxed);
    } else {
        NATIVE_RUNS_SCALAR.fetch_add(1, Ordering::Relaxed);
    }
}

/// Process-unique key generator for kernels' code-cache entries (clones
/// of a kernel share the key assigned at fuse time).
static NEXT_JIT_KEY: AtomicU64 = AtomicU64::new(1);

pub(crate) fn next_jit_key() -> u64 {
    NEXT_JIT_KEY.fetch_add(1, Ordering::Relaxed)
}

// ----- W^X executable pages ----------------------------------------------

#[cfg(all(unix, target_arch = "x86_64"))]
mod sys {
    extern "C" {
        pub fn mmap(
            addr: *mut u8,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut u8;
        pub fn mprotect(addr: *mut u8, len: usize, prot: i32) -> i32;
        pub fn munmap(addr: *mut u8, len: usize) -> i32;
    }

    pub const PROT_READ: i32 = 1;
    pub const PROT_WRITE: i32 = 2;
    pub const PROT_EXEC: i32 = 4;
    pub const MAP_PRIVATE: i32 = 2;
    #[cfg(target_os = "linux")]
    pub const MAP_ANON: i32 = 0x20;
    #[cfg(not(target_os = "linux"))]
    pub const MAP_ANON: i32 = 0x1000;
}

/// One published native kernel: an `mmap`ed read+execute mapping holding
/// the finished instruction bytes. See the module docs for the W^X
/// lifecycle; the mapping is freed when the last `Arc<JitCode>` drops.
#[derive(Debug)]
pub struct JitCode {
    ptr: *mut u8,
    map_len: usize,
    code_len: usize,
}

// SAFETY: the mapping is immutable (RX) from publication to unmap, and
// unmapped only by the sole `Drop` when the last owner releases it.
unsafe impl Send for JitCode {}
unsafe impl Sync for JitCode {}

impl JitCode {
    /// Maps fresh RW pages, copies `code` in, and seals them RX. Returns
    /// `None` when the OS refuses (the caller falls back to bytecode).
    #[cfg(all(unix, target_arch = "x86_64"))]
    pub(crate) fn publish(code: &[u8]) -> Option<JitCode> {
        let page = 4096usize;
        let map_len = code.len().div_ceil(page).max(1) * page;
        // SAFETY: anonymous private mapping with no address hint; all
        // arguments are well-formed for every unix mmap.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                map_len,
                sys::PROT_READ | sys::PROT_WRITE,
                sys::MAP_PRIVATE | sys::MAP_ANON,
                -1,
                0,
            )
        };
        if ptr.is_null() || ptr as isize == -1 {
            return None;
        }
        // SAFETY: `ptr..ptr+map_len` is a fresh private mapping owned
        // exclusively by this call.
        unsafe {
            std::ptr::copy_nonoverlapping(code.as_ptr(), ptr, code.len());
            if sys::mprotect(ptr, map_len, sys::PROT_READ | sys::PROT_EXEC) != 0 {
                sys::munmap(ptr, map_len);
                return None;
            }
        }
        Some(JitCode {
            ptr,
            map_len,
            code_len: code.len(),
        })
    }

    #[cfg(not(all(unix, target_arch = "x86_64")))]
    pub(crate) fn publish(_code: &[u8]) -> Option<JitCode> {
        None
    }

    /// Emitted instruction bytes (not the page-rounded mapping length).
    pub fn code_len(&self) -> usize {
        self.code_len
    }

    /// The kernel entry point: `extern "C" fn(frame: *mut u64)` running
    /// one inner row per call.
    ///
    /// # Safety
    /// The frame must follow the [`lower::JitLayout`] this code was
    /// emitted for, with every pointer slot addressing live, disjoint,
    /// in-bounds f64 storage for the row (the fused runtime precheck
    /// establishes exactly this).
    pub(crate) unsafe fn entry(&self) -> unsafe extern "C" fn(*mut u64) {
        std::mem::transmute::<*mut u8, unsafe extern "C" fn(*mut u64)>(self.ptr)
    }
}

impl Drop for JitCode {
    fn drop(&mut self) {
        #[cfg(all(unix, target_arch = "x86_64"))]
        // SAFETY: `ptr`/`map_len` came from the successful mmap in
        // `publish` and are unmapped exactly once.
        unsafe {
            sys::munmap(self.ptr, self.map_len);
        }
    }
}
