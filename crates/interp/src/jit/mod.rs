//! Native x86_64 code emission for fused map kernels — the fifth engine
//! tier.
//!
//! Eligible [`FusedKernel`](crate::program) bodies are lowered once to a
//! straight-line native inner-row loop (see the `lower` module) and executed
//! through the same runtime precheck as the bytecode kernels: a kernel
//! runs natively only after the precheck proved that no out-of-bounds
//! access, overflow, unbound symbol or step-budget trip can occur
//! anywhere in the iteration box, and step accounting plus batched
//! coverage are computed arithmetically — bit-identical to the bytecode
//! walk by construction. Any ineligibility (non-f64 body, unsupported
//! op, too many registers, interleaved coverage) falls back down the
//! existing engine ladder; the reason is reported through [`JitReject`],
//! mirroring [`FuseReject`](crate::FuseReject).
//!
//! # W^X page lifecycle
//!
//! Emitted code lives in pages obtained directly from `mmap` (raw
//! `extern "C"` bindings — no new dependencies) and is never writable
//! and executable at the same time:
//!
//! 1. `JitCode::publish` maps fresh anonymous pages `PROT_READ |
//!    PROT_WRITE`, copies the finished instruction bytes in, and
//! 2. flips the whole mapping to `PROT_READ | PROT_EXEC` with
//!    `mprotect` before the entry pointer ever escapes. A failed flip
//!    unmaps and reports emission failure (the caller falls back to
//!    bytecode).
//! 3. The mapping is `munmap`ed when the last `Arc<JitCode>` drops —
//!    executors clone the `Arc` for the duration of a kernel run, so an
//!    eviction from the code cache can never unmap code that is still
//!    executing.
//!
//! The `jit_wx` smoke test asserts process-wide (via `/proc/self/maps`)
//! that no `rwx` mapping exists after compilation.
//!
//! # Cache contract
//!
//! Compiled blobs are shape-independent: strides, pointers, symbol and
//! parameter values are read from a per-call frame, so one compilation
//! serves every trial of a kernel. Blobs are keyed by the kernel's
//! process-unique `jit_key` in a process-wide `CodeCache` that
//! follows the shared program cache's lock-only-on-insert design —
//! probes are lock-free, the insert mutex is taken only to publish, and
//! coarse LRU eviction (bounded by
//! [`cache_capacity`](crate::cache_capacity)) drops the
//! least-recently-probed entry. Warm campaigns therefore compile zero
//! programs and emit zero bytes of native code.

pub(crate) mod cache;
pub(crate) mod encoder;
pub(crate) mod lower;

pub use cache::{code_cache_stats, CodeCacheStats};

use std::sync::atomic::{AtomicU64, Ordering};

/// Why a fused map scope is not eligible for native execution (or why a
/// particular run fell back at runtime). Static data with a stable
/// message, mirroring [`FuseReject`](crate::FuseReject), so campaign
/// reports can aggregate eligibility counts per reason.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum JitReject {
    /// `ExecOptions::jit` was off for this run.
    Disabled,
    /// The host is not x86_64 (the only emitted target).
    UnsupportedArch,
    /// The map scope did not fuse at all — the JIT only lowers fused
    /// kernels.
    NotFused,
    /// The kernel body is vectorized (`lanes > 1`); its chunked bytecode
    /// loop is already SIMD and per-lane native emission is not modeled.
    Vectorized,
    /// The body needs more float registers than `xmm0..xmm13`.
    TooManyRegs,
    /// More live memory accesses than the pointer registers `r8..r15`.
    TooManyAccesses,
    /// An instruction outside the emitted SSE2 subset (e.g. `pow`,
    /// `min`/`max`, transcendentals).
    UnsupportedOp,
    /// A write-conflict-resolution combiner without an exact SSE2
    /// equivalent (`min`/`max` differ from Rust on NaN and signed zero).
    UnsupportedWcr,
    /// Runtime-only: this run records interleaved per-element coverage
    /// (select branches or multi-tasklet pipelines under a coverage
    /// map), which only the bytecode loops reproduce exactly.
    CoverageInterleave,
    /// Runtime-only: the OS refused executable pages.
    MmapFailed,
}

impl JitReject {
    /// Stable human-readable message (also the aggregation key in
    /// campaign reports).
    pub fn message(self) -> &'static str {
        match self {
            JitReject::Disabled => "jit disabled",
            JitReject::UnsupportedArch => "host is not x86_64",
            JitReject::NotFused => "map not fused",
            JitReject::Vectorized => "vectorized kernel body",
            JitReject::TooManyRegs => "body needs more than 14 float registers",
            JitReject::TooManyAccesses => "more than 8 live memory accesses",
            JitReject::UnsupportedOp => "instruction outside the emitted SSE2 subset",
            JitReject::UnsupportedWcr => "write-conflict combiner without exact SSE2 equivalent",
            JitReject::CoverageInterleave => "run records interleaved per-element coverage",
            JitReject::MmapFailed => "executable pages unavailable",
        }
    }
}

/// Counts kernel entries that actually executed native code, process
/// wide. Tests and benches use the delta to assert the JIT engaged.
static NATIVE_RUNS: AtomicU64 = AtomicU64::new(0);

/// Number of fused-kernel executions that ran native code so far in this
/// process.
pub fn jit_native_runs() -> u64 {
    NATIVE_RUNS.load(Ordering::Relaxed)
}

pub(crate) fn count_native_run() {
    NATIVE_RUNS.fetch_add(1, Ordering::Relaxed);
}

/// Process-unique key generator for kernels' code-cache entries (clones
/// of a kernel share the key assigned at fuse time).
static NEXT_JIT_KEY: AtomicU64 = AtomicU64::new(1);

pub(crate) fn next_jit_key() -> u64 {
    NEXT_JIT_KEY.fetch_add(1, Ordering::Relaxed)
}

// ----- W^X executable pages ----------------------------------------------

#[cfg(all(unix, target_arch = "x86_64"))]
mod sys {
    extern "C" {
        pub fn mmap(
            addr: *mut u8,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut u8;
        pub fn mprotect(addr: *mut u8, len: usize, prot: i32) -> i32;
        pub fn munmap(addr: *mut u8, len: usize) -> i32;
    }

    pub const PROT_READ: i32 = 1;
    pub const PROT_WRITE: i32 = 2;
    pub const PROT_EXEC: i32 = 4;
    pub const MAP_PRIVATE: i32 = 2;
    #[cfg(target_os = "linux")]
    pub const MAP_ANON: i32 = 0x20;
    #[cfg(not(target_os = "linux"))]
    pub const MAP_ANON: i32 = 0x1000;
}

/// One published native kernel: an `mmap`ed read+execute mapping holding
/// the finished instruction bytes. See the module docs for the W^X
/// lifecycle; the mapping is freed when the last `Arc<JitCode>` drops.
#[derive(Debug)]
pub struct JitCode {
    ptr: *mut u8,
    map_len: usize,
    code_len: usize,
}

// SAFETY: the mapping is immutable (RX) from publication to unmap, and
// unmapped only by the sole `Drop` when the last owner releases it.
unsafe impl Send for JitCode {}
unsafe impl Sync for JitCode {}

impl JitCode {
    /// Maps fresh RW pages, copies `code` in, and seals them RX. Returns
    /// `None` when the OS refuses (the caller falls back to bytecode).
    #[cfg(all(unix, target_arch = "x86_64"))]
    pub(crate) fn publish(code: &[u8]) -> Option<JitCode> {
        let page = 4096usize;
        let map_len = code.len().div_ceil(page).max(1) * page;
        // SAFETY: anonymous private mapping with no address hint; all
        // arguments are well-formed for every unix mmap.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                map_len,
                sys::PROT_READ | sys::PROT_WRITE,
                sys::MAP_PRIVATE | sys::MAP_ANON,
                -1,
                0,
            )
        };
        if ptr.is_null() || ptr as isize == -1 {
            return None;
        }
        // SAFETY: `ptr..ptr+map_len` is a fresh private mapping owned
        // exclusively by this call.
        unsafe {
            std::ptr::copy_nonoverlapping(code.as_ptr(), ptr, code.len());
            if sys::mprotect(ptr, map_len, sys::PROT_READ | sys::PROT_EXEC) != 0 {
                sys::munmap(ptr, map_len);
                return None;
            }
        }
        Some(JitCode {
            ptr,
            map_len,
            code_len: code.len(),
        })
    }

    #[cfg(not(all(unix, target_arch = "x86_64")))]
    pub(crate) fn publish(_code: &[u8]) -> Option<JitCode> {
        None
    }

    /// Emitted instruction bytes (not the page-rounded mapping length).
    pub fn code_len(&self) -> usize {
        self.code_len
    }

    /// The kernel entry point: `extern "C" fn(frame: *mut u64)` running
    /// one inner row per call.
    ///
    /// # Safety
    /// The frame must follow the [`lower::JitLayout`] this code was
    /// emitted for, with every pointer slot addressing live, disjoint,
    /// in-bounds f64 storage for the row (the fused runtime precheck
    /// establishes exactly this).
    pub(crate) unsafe fn entry(&self) -> unsafe extern "C" fn(*mut u64) {
        std::mem::transmute::<*mut u8, unsafe extern "C" fn(*mut u64)>(self.ptr)
    }
}

impl Drop for JitCode {
    fn drop(&mut self) {
        #[cfg(all(unix, target_arch = "x86_64"))]
        // SAFETY: `ptr`/`map_len` came from the successful mmap in
        // `publish` and are unmapped exactly once.
        unsafe {
            sys::munmap(self.ptr, self.map_len);
        }
    }
}
