//! Lowering of fused kernel bytecode ([`FKInsn`]) to native x86_64.
//!
//! The emitted function has signature `extern "C" fn(frame: *mut u64)`
//! and executes **one inner row** of the iteration box per call — the
//! Rust side keeps the outer odometer, exactly like the bytecode loops.
//! For vectorized kernels (`lanes > 1`) the row is the innermost *real*
//! map dimension and the synthetic lane dimension is fully unrolled
//! inside the blob, so one call still covers `row length × lanes`
//! elements. Everything that varies per trial or per row (row pointers,
//! strides, outer parameter values, symbol values) is read from the
//! frame, so one compiled blob is valid for every shape a kernel ever
//! runs with — the property that makes the process-wide code cache
//! effective.
//!
//! # Frame layout (u64 words)
//!
//! | words                    | contents                                  |
//! |--------------------------|-------------------------------------------|
//! | `0`                      | inner row length (iterations, ≥ 1)        |
//! | `1`, `2`                 | inner range start / step (i64)            |
//! | `3 .. 3+P`               | row pointers, one per live access         |
//! | `3+P .. 3+2P`            | per-iteration pointer step in bytes (i64) |
//! | `.. + n_params`          | outer map-parameter values (f64 bits)     |
//! | `.. + n_regs·bool_words` | bool register file (see below)            |
//! | `.. + sym_slots.len()`   | referenced symbol values (f64 bits)       |
//!
//! Bool register slots are one word (0/1 values) in scalar emission and
//! two words (16-byte all-ones/all-zeros lane masks, accessed with
//! `movupd`) in packed emission.
//!
//! # Register allocation
//!
//! Fixed: `rdi` frame, `rcx` remaining-iteration counter, `rax` the
//! inner parameter's current i64 value (stepped per iteration, converted
//! with `cvtsi2sd` for the exact `as f64` semantics), `rdx`/`rsi`
//! scratch, `r8..r15` live-access row pointers (callee-saved `r12..r15`
//! are pushed only when used). Kernel float registers map 1:1 onto
//! `xmm0..xmm13` — scalar values in the low lane, or 2-wide lane pairs
//! in packed emission; `xmm14`/`xmm15` are scratch. Bool registers live
//! in frame words — select bodies that reach the JIT are compared
//! against the scalar bytecode interpreter, so memory-resident bools
//! still win.
//!
//! # Packed emission
//!
//! A `lanes > 1` kernel without select control flow runs its body on
//! 2-wide xmm pairs: spanned reads/writes use `movupd` at compile-time
//! lane offsets (the dispatcher verified the run's lane stride is the
//! unit stride these offsets assume), statically pointwise reads
//! broadcast one `movsd` load with `unpcklpd`, and an odd lane count
//! appends one scalar element *after* the pairs so the element order of
//! the bytecode loop is preserved exactly. Select bodies keep their
//! per-element branches by unrolling the lanes as scalar iterations
//! inside the same blob (`lane_scalar` mode) — still native, just not
//! packed. Fallback is always per-kernel, never per-element.
//!
//! # Bit-exactness
//!
//! Binary ops preserve operand order (`addsd a, b` matches what rustc
//! emits for `a + b`, including NaN payload propagation), comparisons
//! use `ucomisd` + `setcc` recipes (scalar) or `cmppd` predicates
//! (packed) that reproduce Rust's semantics for unordered operands,
//! negation/abs use the same sign-mask `xorpd`/`andpd` idiom rustc
//! emits, and `i64 → f64` conversions use `cvtsi2sd`. `min`/`max` use
//! the exact blend LLVM lowers `f64::min`/`f64::max` to: `minsd`/
//! `minpd` with the *first* Rust operand in the source position (the
//! instruction returns the source on unordered or tied operands, giving
//! Rust's first-operand tie behavior for `±0`), then a branch-free
//! `xorpd`/`andnpd`/`xorpd` blend on an `isnan(first)` mask selecting
//! the second operand where the first is NaN. Ops without an exact
//! lowering (`mod`, `pow`, transcendentals) are rejected statically and
//! fall back to the bytecode tiers.

use super::encoder::{cc, gpr, Asm, Label};
use super::JitReject;
use crate::program::{FKInsn, FusedKernel, SymId};
use fuzzyflow_ir::{BinOp, CmpOp, UnOp, Wcr};

/// Highest kernel float register mappable onto `xmm0..xmm13`.
pub(crate) const MAX_FLOAT_REGS: usize = 14;
/// Live-access pointers available (`r8..r15`).
pub(crate) const MAX_PTRS: usize = 8;
/// Widest lane count the packed emitter unrolls into one row body.
pub(crate) const MAX_JIT_LANES: usize = 16;
/// Scratch xmm registers.
const XMM_SCRATCH0: u8 = 14;
const XMM_SCRATCH1: u8 = 15;

/// Frame layout of a lowered kernel; see the module docs. Word indices
/// are converted to byte displacements at emission time.
#[derive(Clone, Debug)]
pub(crate) struct JitLayout {
    /// Map dimensions (the innermost, `n_params - 1`, is the emitted
    /// row; its parameter value lives in `rax`, not the frame).
    pub n_params: usize,
    /// Kernel register file size (bool slots in the frame).
    pub n_regs: usize,
    /// Pointer slot per kernel input; `None` for dead reads (their
    /// bounds are proven by the precheck, no load is needed).
    pub in_ptr: Vec<Option<usize>>,
    /// Pointer slot per kernel output.
    pub out_ptr: Vec<usize>,
    /// Total pointer slots.
    pub n_ptrs: usize,
    /// Symbols read by `LoadSymF`, in frame-slot order.
    pub sym_slots: Vec<SymId>,
    /// Total frame size in u64 words.
    pub frame_words: usize,
    /// Lane width baked into the blob (1 = plain scalar emission).
    pub lanes: usize,
    /// Per input: the subset is statically pointwise, so a `lanes > 1`
    /// run broadcasts its single value across the lanes. Spanned inputs
    /// load per-lane at the unit stride the dispatcher verifies.
    pub in_bcast: Vec<bool>,
    /// `lanes > 1` body with select control flow: the lanes are unrolled
    /// as scalar iterations (branches need per-element control flow).
    pub lane_scalar: bool,
    /// Frame words per bool register slot (2 = 16-byte lane masks for
    /// packed bodies, 1 = scalar 0/1 words).
    pub bool_words: usize,
}

impl JitLayout {
    pub fn ptr_word(&self, slot: usize) -> usize {
        3 + slot
    }
    pub fn stride_word(&self, slot: usize) -> usize {
        3 + self.n_ptrs + slot
    }
    pub fn param_word(&self, dim: usize) -> usize {
        3 + 2 * self.n_ptrs + dim
    }
    pub fn bool_word(&self, reg: usize) -> usize {
        3 + 2 * self.n_ptrs + self.n_params + reg * self.bool_words
    }
    pub fn sym_word(&self, slot: usize) -> usize {
        3 + 2 * self.n_ptrs + self.n_params + self.n_regs * self.bool_words + slot
    }
}

/// Static JIT eligibility of a fused kernel: decides up front whether
/// [`emit`] can lower every instruction bit-exactly, and computes the
/// frame layout if so. Infallible emission is the invariant that lets
/// the runtime treat an `Ok` layout as "native unless the OS refuses
/// pages, this run needs interleaved coverage, or a vectorized run
/// spreads its lanes at a non-unit stride".
pub(crate) fn analyze(fk: &FusedKernel, n_params: usize) -> Result<JitLayout, JitReject> {
    if !cfg!(all(unix, target_arch = "x86_64")) {
        return Err(JitReject::UnsupportedArch);
    }
    if fk.lanes > MAX_JIT_LANES {
        return Err(JitReject::LanesTooWide);
    }
    if fk.n_regs > MAX_FLOAT_REGS {
        return Err(JitReject::TooManyRegs);
    }
    let mut n_ptrs = 0usize;
    let in_ptr: Vec<Option<usize>> = fk
        .in_regs
        .iter()
        .map(|r| {
            r.map(|_| {
                n_ptrs += 1;
                n_ptrs - 1
            })
        })
        .collect();
    let out_ptr: Vec<usize> = (0..fk.outputs.len())
        .map(|_| {
            n_ptrs += 1;
            n_ptrs - 1
        })
        .collect();
    if n_ptrs > MAX_PTRS {
        return Err(JitReject::TooManyAccesses);
    }
    for (acc, &(_, from_bool)) in fk.outputs.iter().zip(&fk.out_regs) {
        if matches!(acc.wcr, Some(Wcr::Max) | Some(Wcr::Min)) && from_bool {
            // The min/max blend keeps the stored value live in a
            // register across both scratch xmms; a bool-sourced store
            // has no such register.
            return Err(JitReject::UnsupportedWcr);
        }
    }
    let mut sym_slots: Vec<SymId> = Vec::new();
    for insn in &fk.code {
        match insn {
            FKInsn::BinF { op, .. } => match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Min | BinOp::Max => {}
                _ => return Err(JitReject::UnsupportedOp),
            },
            FKInsn::UnF { op, .. } => match op {
                UnOp::Neg | UnOp::Abs | UnOp::Sqrt => {}
                _ => return Err(JitReject::UnsupportedOp),
            },
            FKInsn::LoadSymF { sym, .. } if !sym_slots.contains(sym) => {
                sym_slots.push(*sym);
            }
            // Everything else has a direct lowering (coverage markers
            // are no-ops natively: entry coverage is batched by the
            // caller and interleaved-coverage runs never reach the JIT).
            _ => {}
        }
    }
    let in_bcast: Vec<bool> = fk.inputs.iter().map(|acc| acc.is_pointwise()).collect();
    let lane_scalar = fk.lanes > 1 && fk.has_select;
    let n_regs = fk.n_regs;
    let mut lay = JitLayout {
        n_params,
        n_regs,
        in_ptr,
        out_ptr,
        n_ptrs,
        sym_slots,
        frame_words: 0,
        lanes: fk.lanes,
        in_bcast,
        lane_scalar,
        bool_words: if fk.lanes > 1 && !lane_scalar { 2 } else { 1 },
    };
    lay.frame_words = lay.sym_word(lay.sym_slots.len());
    Ok(lay)
}

/// Byte displacement of a frame word.
fn disp(word: usize) -> i32 {
    (word * 8) as i32
}

/// Pointer register of a frame pointer slot.
fn preg(slot: usize) -> u8 {
    gpr::R8 + slot as u8
}

/// Emits `dst8 = (bool of the flags per `recipe`)`, zero-extends it and
/// stores it into the frame's bool register `reg`. `recipe` is one or
/// two setcc conditions combined with and/or.
enum BoolRecipe {
    One(u8),
    /// `cc0 AND cc1` (e.g. `sete && setnp` for `==`).
    And(u8, u8),
    /// `cc0 OR cc1` (e.g. `setne || setp` for `!=`).
    Or(u8, u8),
}

fn store_flag_bool(a: &mut Asm, lay: &JitLayout, reg: u32, recipe: BoolRecipe) {
    match recipe {
        BoolRecipe::One(c) => a.setcc(c, gpr::RDX),
        BoolRecipe::And(c0, c1) => {
            a.setcc(c0, gpr::RDX);
            a.setcc(c1, gpr::RSI);
            a.and_r8(gpr::RDX, gpr::RSI);
        }
        BoolRecipe::Or(c0, c1) => {
            a.setcc(c0, gpr::RDX);
            a.setcc(c1, gpr::RSI);
            a.or_r8(gpr::RDX, gpr::RSI);
        }
    }
    a.movzx(gpr::RDX, gpr::RDX);
    a.mov_mr(gpr::RDI, disp(lay.bool_word(reg as usize)), gpr::RDX);
}

/// `dst = op(a, b)` preserving operand order (and thus NaN payload
/// propagation) exactly as rustc's own `addsd`-family codegen does.
/// `packed` switches between the `sd` and `pd` instruction forms.
fn bin_fp(a: &mut Asm, packed: bool, op: u8, dst: u8, x: u8, y: u8) {
    let fp = |a: &mut Asm, op, dst, src| {
        if packed {
            a.pd_op(op, dst, src);
        } else {
            a.sd_op(op, dst, src);
        }
    };
    if dst == x {
        fp(a, op, dst, y);
    } else if dst != y {
        a.movapd(dst, x);
        fp(a, op, dst, y);
    } else {
        a.movapd(XMM_SCRATCH1, x);
        fp(a, op, XMM_SCRATCH1, y);
        a.movapd(dst, XMM_SCRATCH1);
    }
}

/// `dst = x.min(y)` / `x.max(y)` (`op` is the `minsd`/`maxsd` opcode
/// byte) via the same NaN- and signed-zero-exact sequence LLVM lowers
/// the Rust intrinsics to: `cand = MIN(y_dst, x_src)` returns `x` on
/// unordered/tied operands, then a bitwise blend replaces the result
/// with `y` where `x` is NaN. Clobbers both scratch xmms; `dst` may
/// alias `x` and/or `y`.
fn minmax_fp(a: &mut Asm, packed: bool, op: u8, dst: u8, x: u8, y: u8) {
    a.movapd(XMM_SCRATCH0, y);
    if packed {
        a.pd_op(op, XMM_SCRATCH0, x);
    } else {
        a.sd_op(op, XMM_SCRATCH0, x);
    }
    a.movapd(XMM_SCRATCH1, x);
    if packed {
        a.cmppd(XMM_SCRATCH1, XMM_SCRATCH1, 3);
    } else {
        a.cmpsd(XMM_SCRATCH1, XMM_SCRATCH1, 3);
    }
    // blend(isnan(x), y, cand) = y ^ (!mask & (cand ^ y)).
    a.xorpd(XMM_SCRATCH0, y);
    a.andnpd(XMM_SCRATCH1, XMM_SCRATCH0);
    a.movapd(XMM_SCRATCH0, y);
    a.xorpd(XMM_SCRATCH0, XMM_SCRATCH1);
    a.movapd(dst, XMM_SCRATCH0);
}

/// Materializes an immediate f64 bit pattern in `dst` (low lane), spread
/// to both lanes when `packed`.
fn const_fp(a: &mut Asm, packed: bool, dst: u8, bits: u64) {
    a.mov_ri(gpr::RDX, bits);
    a.movq_xr(dst, gpr::RDX);
    if packed {
        a.unpcklpd(dst, dst);
    }
}

/// One element (or lane pair) of the row body: the byte offset every
/// spanned access reads/writes at this iteration.
#[derive(Clone, Copy)]
enum Elem {
    Scalar(i32),
    Packed(i32),
}

/// Emits the loads, body and stores for one element (`Elem::Scalar`) or
/// one 2-wide lane pair (`Elem::Packed`) of the row.
fn emit_elem(a: &mut Asm, fk: &FusedKernel, lay: &JitLayout, elem: Elem) {
    let inner = lay.n_params - 1;

    // Input loads, in kernel input order (dead reads were proven
    // in-bounds by the precheck and emit nothing). Statically pointwise
    // reads broadcast the single value at offset 0.
    for (ii, slot) in lay.in_ptr.iter().enumerate() {
        if let (Some(reg), Some(slot)) = (fk.in_regs[ii], slot) {
            match elem {
                Elem::Scalar(off) => {
                    let off = if lay.in_bcast[ii] { 0 } else { off };
                    a.movsd_rm(reg as u8, preg(*slot), off);
                }
                Elem::Packed(off) => {
                    if lay.in_bcast[ii] {
                        a.movsd_rm(reg as u8, preg(*slot), 0);
                        a.unpcklpd(reg as u8, reg as u8);
                    } else {
                        a.movupd_rm(reg as u8, preg(*slot), off);
                    }
                }
            }
        }
    }

    match elem {
        Elem::Scalar(off) => emit_body_scalar(a, fk, lay, inner, off),
        Elem::Packed(off) => emit_body_packed(a, fk, lay, inner, off),
    }
}

/// Scalar body + stores for the element at byte offset `off`. One label
/// per instruction index (plus one past the end) so select jumps can
/// target any point, exactly like the bytecode pc; unrolled lanes get
/// fresh labels per element.
fn emit_body_scalar(a: &mut Asm, fk: &FusedKernel, lay: &JitLayout, inner: usize, off: i32) {
    let labels: Vec<Label> = (0..=fk.code.len()).map(|_| a.label()).collect();
    for (i, insn) in fk.code.iter().enumerate() {
        a.bind(labels[i]);
        match insn {
            FKInsn::ConstF { dst, val } => {
                const_fp(a, false, *dst as u8, val.to_bits());
            }
            FKInsn::ConstB { dst, val } => {
                a.mov_ri(gpr::RDX, *val as u64);
                a.mov_mr(gpr::RDI, disp(lay.bool_word(*dst as usize)), gpr::RDX);
            }
            FKInsn::MovF { dst, src } => {
                if dst != src {
                    a.movapd(*dst as u8, *src as u8);
                }
            }
            FKInsn::MovB { dst, src } => {
                a.mov_rm(gpr::RDX, gpr::RDI, disp(lay.bool_word(*src as usize)));
                a.mov_mr(gpr::RDI, disp(lay.bool_word(*dst as usize)), gpr::RDX);
            }
            FKInsn::LoadSymF { dst, sym } => {
                let slot = lay
                    .sym_slots
                    .iter()
                    .position(|s| s == sym)
                    .expect("analyze collected every LoadSymF symbol");
                a.movsd_rm(*dst as u8, gpr::RDI, disp(lay.sym_word(slot)));
            }
            FKInsn::LoadParamF { dst, dim } => {
                if *dim as usize == inner {
                    a.cvtsi2sd(*dst as u8, gpr::RAX);
                } else {
                    a.movsd_rm(*dst as u8, gpr::RDI, disp(lay.param_word(*dim as usize)));
                }
            }
            FKInsn::BinF {
                op,
                dst,
                a: x,
                b: y,
            } => match fp_opcode(*op) {
                FpOp::Plain(opb) => bin_fp(a, false, opb, *dst as u8, *x as u8, *y as u8),
                FpOp::MinMax(opb) => minmax_fp(a, false, opb, *dst as u8, *x as u8, *y as u8),
            },
            FKInsn::UnF { op, dst, a: x } => match op {
                UnOp::Sqrt => a.sd_op(0x51, *dst as u8, *x as u8),
                UnOp::Neg | UnOp::Abs => {
                    emit_sign_mask(a, false, op, *dst as u8, *x as u8);
                }
                _ => unreachable!("rejected by analyze"),
            },
            FKInsn::CmpF {
                op,
                dst,
                a: x,
                b: y,
            } => {
                // `ucomisd p, q` sets flags for `p ? q`; unordered sets
                // ZF=PF=CF=1. The recipes reproduce Rust's comparison
                // semantics including NaN operands.
                let recipe = match op {
                    CmpOp::Lt => {
                        a.ucomisd(*y as u8, *x as u8);
                        BoolRecipe::One(cc::A)
                    }
                    CmpOp::Le => {
                        a.ucomisd(*y as u8, *x as u8);
                        BoolRecipe::One(cc::AE)
                    }
                    CmpOp::Gt => {
                        a.ucomisd(*x as u8, *y as u8);
                        BoolRecipe::One(cc::A)
                    }
                    CmpOp::Ge => {
                        a.ucomisd(*x as u8, *y as u8);
                        BoolRecipe::One(cc::AE)
                    }
                    CmpOp::Eq => {
                        a.ucomisd(*x as u8, *y as u8);
                        BoolRecipe::And(cc::E, cc::NP)
                    }
                    CmpOp::Ne => {
                        a.ucomisd(*x as u8, *y as u8);
                        BoolRecipe::Or(cc::NE, cc::P)
                    }
                };
                store_flag_bool(a, lay, *dst, recipe);
            }
            FKInsn::NotB { dst, a: x } => {
                a.mov_rm(gpr::RDX, gpr::RDI, disp(lay.bool_word(*x as usize)));
                a.xor_ri8(gpr::RDX, 1);
                a.mov_mr(gpr::RDI, disp(lay.bool_word(*dst as usize)), gpr::RDX);
            }
            FKInsn::AndB { dst, a: x, b: y } => {
                a.mov_rm(gpr::RDX, gpr::RDI, disp(lay.bool_word(*x as usize)));
                a.and_rm(gpr::RDX, gpr::RDI, disp(lay.bool_word(*y as usize)));
                a.mov_mr(gpr::RDI, disp(lay.bool_word(*dst as usize)), gpr::RDX);
            }
            FKInsn::OrB { dst, a: x, b: y } => {
                a.mov_rm(gpr::RDX, gpr::RDI, disp(lay.bool_word(*x as usize)));
                a.or_rm(gpr::RDX, gpr::RDI, disp(lay.bool_word(*y as usize)));
                a.mov_mr(gpr::RDI, disp(lay.bool_word(*dst as usize)), gpr::RDX);
            }
            FKInsn::BoolFromF { reg } => {
                a.xorpd(XMM_SCRATCH1, XMM_SCRATCH1);
                a.ucomisd(*reg as u8, XMM_SCRATCH1);
                store_flag_bool(a, lay, *reg, BoolRecipe::Or(cc::NE, cc::P));
            }
            FKInsn::FloatFromB { dst, src } => {
                a.mov_rm(gpr::RDX, gpr::RDI, disp(lay.bool_word(*src as usize)));
                a.cvtsi2sd(*dst as u8, gpr::RDX);
            }
            // Coverage markers: entry coverage is batched by the caller
            // and interleaved-coverage runs never dispatch natively.
            FKInsn::Stmt { .. } | FKInsn::CoverSel { .. } | FKInsn::Cover { .. } => {}
            FKInsn::JumpIfFalse { cond, target } => {
                a.mov_rm(gpr::RDX, gpr::RDI, disp(lay.bool_word(*cond as usize)));
                a.test_rr(gpr::RDX, gpr::RDX);
                a.jcc(cc::E, labels[*target as usize]);
            }
            FKInsn::Jump { target } => {
                a.jmp(labels[*target as usize]);
            }
        }
    }
    a.bind(labels[fk.code.len()]);

    // Output stores, in kernel output order (WCR combines
    // load-op-store, preserving exact accumulation order).
    for (oi, acc) in fk.outputs.iter().enumerate() {
        let (reg, from_bool) = fk.out_regs[oi];
        let pr = preg(lay.out_ptr[oi]);
        let src = if from_bool {
            a.mov_rm(gpr::RDX, gpr::RDI, disp(lay.bool_word(reg as usize)));
            a.cvtsi2sd(XMM_SCRATCH1, gpr::RDX);
            XMM_SCRATCH1
        } else {
            reg as u8
        };
        match acc.wcr {
            None => a.movsd_mr(pr, off, src),
            Some(Wcr::Sum) => {
                a.movsd_rm(XMM_SCRATCH0, pr, off);
                a.sd_op(0x58, XMM_SCRATCH0, src);
                a.movsd_mr(pr, off, XMM_SCRATCH0);
            }
            Some(Wcr::Prod) => {
                a.movsd_rm(XMM_SCRATCH0, pr, off);
                a.sd_op(0x59, XMM_SCRATCH0, src);
                a.movsd_mr(pr, off, XMM_SCRATCH0);
            }
            Some(Wcr::Min) | Some(Wcr::Max) => {
                // `out = old.min(v)` — analyze guarantees `src` is a
                // kernel register, which stays live across the blend.
                let opb = if matches!(acc.wcr, Some(Wcr::Min)) {
                    0x5D
                } else {
                    0x5F
                };
                emit_wcr_minmax(a, false, opb, pr, off, src);
            }
        }
    }
}

/// Packed (2-wide lane pair) body + stores at byte offset `off`. Only
/// reachable for branch-free bodies (`!lane_scalar`), so jumps and
/// select markers cannot occur.
fn emit_body_packed(a: &mut Asm, fk: &FusedKernel, lay: &JitLayout, inner: usize, off: i32) {
    for insn in fk.code.iter() {
        match insn {
            FKInsn::ConstF { dst, val } => {
                const_fp(a, true, *dst as u8, val.to_bits());
            }
            FKInsn::ConstB { dst, val } => {
                if *val {
                    a.pcmpeqd(XMM_SCRATCH1, XMM_SCRATCH1);
                } else {
                    a.xorpd(XMM_SCRATCH1, XMM_SCRATCH1);
                }
                a.movupd_mr(gpr::RDI, disp(lay.bool_word(*dst as usize)), XMM_SCRATCH1);
            }
            FKInsn::MovF { dst, src } => {
                if dst != src {
                    a.movapd(*dst as u8, *src as u8);
                }
            }
            FKInsn::MovB { dst, src } => {
                a.movupd_rm(XMM_SCRATCH1, gpr::RDI, disp(lay.bool_word(*src as usize)));
                a.movupd_mr(gpr::RDI, disp(lay.bool_word(*dst as usize)), XMM_SCRATCH1);
            }
            FKInsn::LoadSymF { dst, sym } => {
                let slot = lay
                    .sym_slots
                    .iter()
                    .position(|s| s == sym)
                    .expect("analyze collected every LoadSymF symbol");
                a.movsd_rm(*dst as u8, gpr::RDI, disp(lay.sym_word(slot)));
                a.unpcklpd(*dst as u8, *dst as u8);
            }
            FKInsn::LoadParamF { dst, dim } => {
                // Map parameters never index the synthetic lane dim, so
                // both lanes see the same value.
                if *dim as usize == inner {
                    a.cvtsi2sd(*dst as u8, gpr::RAX);
                } else {
                    a.movsd_rm(*dst as u8, gpr::RDI, disp(lay.param_word(*dim as usize)));
                }
                a.unpcklpd(*dst as u8, *dst as u8);
            }
            FKInsn::BinF {
                op,
                dst,
                a: x,
                b: y,
            } => match fp_opcode(*op) {
                FpOp::Plain(opb) => bin_fp(a, true, opb, *dst as u8, *x as u8, *y as u8),
                FpOp::MinMax(opb) => minmax_fp(a, true, opb, *dst as u8, *x as u8, *y as u8),
            },
            FKInsn::UnF { op, dst, a: x } => match op {
                UnOp::Sqrt => a.pd_op(0x51, *dst as u8, *x as u8),
                UnOp::Neg | UnOp::Abs => {
                    emit_sign_mask(a, true, op, *dst as u8, *x as u8);
                }
                _ => unreachable!("rejected by analyze"),
            },
            FKInsn::CmpF {
                op,
                dst,
                a: x,
                b: y,
            } => {
                // `cmppd` predicates matching Rust: `<`/`<=` are the
                // ordered LT_OS/LE_OS (NaN → false), `>`/`>=` swap the
                // operands, `==` is EQ_OQ (NaN → false) and `!=` is
                // NEQ_UQ (NaN → true).
                let (p, q, pred) = match op {
                    CmpOp::Lt => (*x, *y, 1),
                    CmpOp::Le => (*x, *y, 2),
                    CmpOp::Gt => (*y, *x, 1),
                    CmpOp::Ge => (*y, *x, 2),
                    CmpOp::Eq => (*x, *y, 0),
                    CmpOp::Ne => (*x, *y, 4),
                };
                a.movapd(XMM_SCRATCH0, p as u8);
                a.cmppd(XMM_SCRATCH0, q as u8, pred);
                a.movupd_mr(gpr::RDI, disp(lay.bool_word(*dst as usize)), XMM_SCRATCH0);
            }
            FKInsn::NotB { dst, a: x } => {
                a.movupd_rm(XMM_SCRATCH0, gpr::RDI, disp(lay.bool_word(*x as usize)));
                a.pcmpeqd(XMM_SCRATCH1, XMM_SCRATCH1);
                a.xorpd(XMM_SCRATCH0, XMM_SCRATCH1);
                a.movupd_mr(gpr::RDI, disp(lay.bool_word(*dst as usize)), XMM_SCRATCH0);
            }
            FKInsn::AndB { dst, a: x, b: y } => {
                a.movupd_rm(XMM_SCRATCH0, gpr::RDI, disp(lay.bool_word(*x as usize)));
                a.movupd_rm(XMM_SCRATCH1, gpr::RDI, disp(lay.bool_word(*y as usize)));
                a.andpd(XMM_SCRATCH0, XMM_SCRATCH1);
                a.movupd_mr(gpr::RDI, disp(lay.bool_word(*dst as usize)), XMM_SCRATCH0);
            }
            FKInsn::OrB { dst, a: x, b: y } => {
                a.movupd_rm(XMM_SCRATCH0, gpr::RDI, disp(lay.bool_word(*x as usize)));
                a.movupd_rm(XMM_SCRATCH1, gpr::RDI, disp(lay.bool_word(*y as usize)));
                a.orpd(XMM_SCRATCH0, XMM_SCRATCH1);
                a.movupd_mr(gpr::RDI, disp(lay.bool_word(*dst as usize)), XMM_SCRATCH0);
            }
            FKInsn::BoolFromF { reg } => {
                // `v != 0.0` per lane (NaN → true), matching the scalar
                // ucomisd `setne || setp` recipe.
                a.xorpd(XMM_SCRATCH0, XMM_SCRATCH0);
                a.movapd(XMM_SCRATCH1, *reg as u8);
                a.cmppd(XMM_SCRATCH1, XMM_SCRATCH0, 4);
                a.movupd_mr(gpr::RDI, disp(lay.bool_word(*reg as usize)), XMM_SCRATCH1);
            }
            FKInsn::FloatFromB { dst, src } => {
                a.movupd_rm(XMM_SCRATCH0, gpr::RDI, disp(lay.bool_word(*src as usize)));
                const_fp(a, true, XMM_SCRATCH1, 1f64.to_bits());
                a.andpd(XMM_SCRATCH0, XMM_SCRATCH1);
                a.movapd(*dst as u8, XMM_SCRATCH0);
            }
            FKInsn::Stmt { .. } | FKInsn::CoverSel { .. } | FKInsn::Cover { .. } => {}
            FKInsn::JumpIfFalse { .. } | FKInsn::Jump { .. } => {
                unreachable!("packed bodies are branch-free (lane_scalar handles selects)")
            }
        }
    }

    // Lane-pair output stores. Lanes write distinct elements (unit
    // stride), so per-pair WCR combines preserve the bytecode loop's
    // accumulation order.
    for (oi, acc) in fk.outputs.iter().enumerate() {
        let (reg, from_bool) = fk.out_regs[oi];
        let pr = preg(lay.out_ptr[oi]);
        let src = if from_bool {
            a.movupd_rm(XMM_SCRATCH1, gpr::RDI, disp(lay.bool_word(reg as usize)));
            const_fp(a, true, XMM_SCRATCH0, 1f64.to_bits());
            a.andpd(XMM_SCRATCH1, XMM_SCRATCH0);
            XMM_SCRATCH1
        } else {
            reg as u8
        };
        match acc.wcr {
            None => a.movupd_mr(pr, off, src),
            Some(Wcr::Sum) => {
                a.movupd_rm(XMM_SCRATCH0, pr, off);
                a.pd_op(0x58, XMM_SCRATCH0, src);
                a.movupd_mr(pr, off, XMM_SCRATCH0);
            }
            Some(Wcr::Prod) => {
                a.movupd_rm(XMM_SCRATCH0, pr, off);
                a.pd_op(0x59, XMM_SCRATCH0, src);
                a.movupd_mr(pr, off, XMM_SCRATCH0);
            }
            Some(Wcr::Min) | Some(Wcr::Max) => {
                let opb = if matches!(acc.wcr, Some(Wcr::Min)) {
                    0x5D
                } else {
                    0x5F
                };
                emit_wcr_minmax(a, true, opb, pr, off, src);
            }
        }
    }
}

enum FpOp {
    Plain(u8),
    MinMax(u8),
}

fn fp_opcode(op: BinOp) -> FpOp {
    match op {
        BinOp::Add => FpOp::Plain(0x58),
        BinOp::Sub => FpOp::Plain(0x5C),
        BinOp::Mul => FpOp::Plain(0x59),
        BinOp::Div => FpOp::Plain(0x5E),
        BinOp::Min => FpOp::MinMax(0x5D),
        BinOp::Max => FpOp::MinMax(0x5F),
        _ => unreachable!("rejected by analyze"),
    }
}

/// `dst = -x` / `|x|` via the sign-mask `xorpd`/`andpd` idiom rustc
/// emits; the mask is spread to both lanes when `packed`.
fn emit_sign_mask(a: &mut Asm, packed: bool, op: &UnOp, dst: u8, x: u8) {
    let mask = if matches!(op, UnOp::Neg) {
        0x8000_0000_0000_0000u64
    } else {
        0x7FFF_FFFF_FFFF_FFFFu64
    };
    const_fp(a, packed, XMM_SCRATCH1, mask);
    if dst != x {
        a.movapd(dst, x);
    }
    if matches!(op, UnOp::Neg) {
        a.xorpd(dst, XMM_SCRATCH1);
    } else {
        a.andpd(dst, XMM_SCRATCH1);
    }
}

/// `[pr + off] = old.min(v)` / `old.max(v)` as a load-blend-store (`op`
/// is the `minsd`/`maxsd` opcode byte, `v` a live kernel register).
/// Same LLVM-exact shape as [`minmax_fp`] with `x = old`, `y = v`:
/// `cand = MIN(v_dst, old_src)` returns `old` on unordered/tied
/// operands, and the blend selects `v` where `old` is NaN.
fn emit_wcr_minmax(a: &mut Asm, packed: bool, op: u8, pr: u8, off: i32, v: u8) {
    if packed {
        a.movupd_rm(XMM_SCRATCH0, pr, off);
    } else {
        a.movsd_rm(XMM_SCRATCH0, pr, off);
    }
    a.movapd(XMM_SCRATCH1, v);
    if packed {
        a.pd_op(op, XMM_SCRATCH1, XMM_SCRATCH0);
        a.cmppd(XMM_SCRATCH0, XMM_SCRATCH0, 3);
    } else {
        a.sd_op(op, XMM_SCRATCH1, XMM_SCRATCH0);
        a.cmpsd(XMM_SCRATCH0, XMM_SCRATCH0, 3);
    }
    // blend(isnan(old), v, cand) = v ^ (!mask & (cand ^ v)).
    a.xorpd(XMM_SCRATCH1, v);
    a.andnpd(XMM_SCRATCH0, XMM_SCRATCH1);
    a.xorpd(XMM_SCRATCH0, v);
    if packed {
        a.movupd_mr(pr, off, XMM_SCRATCH0);
    } else {
        a.movsd_mr(pr, off, XMM_SCRATCH0);
    }
}

/// Lowers an analyzed kernel to finished instruction bytes. Must not be
/// called unless [`analyze`] returned this layout (emission is
/// infallible under the invariants it established).
pub(crate) fn emit(fk: &FusedKernel, lay: &JitLayout) -> Vec<u8> {
    let mut a = Asm::new();
    let saved: Vec<u8> = (4..lay.n_ptrs).map(preg).collect();
    for &r in &saved {
        a.push(r);
    }
    let done = a.label();
    a.mov_rm(gpr::RCX, gpr::RDI, disp(0));
    a.test_rr(gpr::RCX, gpr::RCX);
    a.jcc(cc::E, done);
    a.mov_rm(gpr::RAX, gpr::RDI, disp(1));
    for slot in 0..lay.n_ptrs {
        a.mov_rm(preg(slot), gpr::RDI, disp(lay.ptr_word(slot)));
    }
    let top = a.label();
    a.bind(top);

    if lay.lanes == 1 {
        emit_elem(&mut a, fk, lay, Elem::Scalar(0));
    } else if lay.lane_scalar {
        // Select bodies: unroll the lanes as scalar elements, in exact
        // bytecode element order.
        for l in 0..lay.lanes {
            emit_elem(&mut a, fk, lay, Elem::Scalar((l * 8) as i32));
        }
    } else {
        // Packed pairs, then one scalar remainder element for odd lane
        // counts — after the pairs, preserving element order.
        for p in 0..lay.lanes / 2 {
            emit_elem(&mut a, fk, lay, Elem::Packed((p * 16) as i32));
        }
        if lay.lanes % 2 == 1 {
            emit_elem(&mut a, fk, lay, Elem::Scalar(((lay.lanes - 1) * 8) as i32));
        }
    }

    // Advance pointers and the inner parameter; loop.
    for slot in 0..lay.n_ptrs {
        a.add_rm(preg(slot), gpr::RDI, disp(lay.stride_word(slot)));
    }
    a.add_rm(gpr::RAX, gpr::RDI, disp(2));
    a.dec(gpr::RCX);
    a.jcc(cc::NE, top);
    a.bind(done);
    for &r in saved.iter().rev() {
        a.pop(r);
    }
    a.ret();
    a.finish()
}
