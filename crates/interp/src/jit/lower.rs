//! Lowering of fused kernel bytecode ([`FKInsn`]) to native x86_64.
//!
//! The emitted function has signature `extern "C" fn(frame: *mut u64)`
//! and executes **one inner row** of the iteration box per call — the
//! Rust side keeps the outer odometer, exactly like the bytecode loops.
//! Everything that varies per trial or per row (row pointers, strides,
//! outer parameter values, symbol values) is read from the frame, so
//! one compiled blob is valid for every shape a kernel ever runs with —
//! the property that makes the process-wide code cache effective.
//!
//! # Frame layout (u64 words)
//!
//! | words                    | contents                                  |
//! |--------------------------|-------------------------------------------|
//! | `0`                      | inner row length (elements, ≥ 1)          |
//! | `1`, `2`                 | inner range start / step (i64)            |
//! | `3 .. 3+P`               | row pointers, one per live access         |
//! | `3+P .. 3+2P`            | per-element pointer step in bytes (i64)   |
//! | `.. + n_params`          | outer map-parameter values (f64 bits)     |
//! | `.. + n_regs`            | bool register file (0/1 words)            |
//! | `.. + sym_slots.len()`   | referenced symbol values (f64 bits)       |
//!
//! # Register allocation
//!
//! Fixed: `rdi` frame, `rcx` remaining-element counter, `rax` the inner
//! parameter's current i64 value (stepped per element, converted with
//! `cvtsi2sd` for the exact `as f64` semantics), `rdx`/`rsi` scratch,
//! `r8..r15` live-access row pointers (callee-saved `r12..r15` are
//! pushed only when used). Kernel float registers map 1:1 onto
//! `xmm0..xmm13`; `xmm14`/`xmm15` are scratch. Bool registers live in
//! frame words — select bodies that reach the JIT are compared against
//! the scalar bytecode interpreter, so memory-resident bools still win.
//!
//! # Bit-exactness
//!
//! Binary ops preserve operand order (`addsd a, b` matches what rustc
//! emits for `a + b`, including NaN payload propagation), comparisons
//! use `ucomisd` + `setcc` recipes that reproduce Rust's semantics for
//! unordered operands, negation/abs use the same sign-mask `xorpd`/
//! `andpd` idiom rustc emits, and `i64 → f64` conversions use
//! `cvtsi2sd`. Ops without an exact single-instruction equivalent
//! (`min`/`max`, `mod`, `pow`, transcendentals) are rejected statically
//! and fall back to the bytecode tiers.

use super::encoder::{cc, gpr, Asm, Label};
use super::JitReject;
use crate::program::{FKInsn, FusedKernel, SymId};
use fuzzyflow_ir::{BinOp, CmpOp, UnOp, Wcr};

/// Highest kernel float register mappable onto `xmm0..xmm13`.
const MAX_FLOAT_REGS: usize = 14;
/// Live-access pointers available (`r8..r15`).
const MAX_PTRS: usize = 8;
/// Scratch xmm registers.
const XMM_SCRATCH0: u8 = 14;
const XMM_SCRATCH1: u8 = 15;

/// Frame layout of a lowered kernel; see the module docs. Word indices
/// are converted to byte displacements at emission time.
#[derive(Clone, Debug)]
pub(crate) struct JitLayout {
    /// Map dimensions (the innermost, `n_params - 1`, is the emitted
    /// row; its parameter value lives in `rax`, not the frame).
    pub n_params: usize,
    /// Kernel register file size (bool slots in the frame).
    pub n_regs: usize,
    /// Pointer slot per kernel input; `None` for dead reads (their
    /// bounds are proven by the precheck, no load is needed).
    pub in_ptr: Vec<Option<usize>>,
    /// Pointer slot per kernel output.
    pub out_ptr: Vec<usize>,
    /// Total pointer slots.
    pub n_ptrs: usize,
    /// Symbols read by `LoadSymF`, in frame-slot order.
    pub sym_slots: Vec<SymId>,
    /// Total frame size in u64 words.
    pub frame_words: usize,
}

impl JitLayout {
    pub fn ptr_word(&self, slot: usize) -> usize {
        3 + slot
    }
    pub fn stride_word(&self, slot: usize) -> usize {
        3 + self.n_ptrs + slot
    }
    pub fn param_word(&self, dim: usize) -> usize {
        3 + 2 * self.n_ptrs + dim
    }
    pub fn bool_word(&self, reg: usize) -> usize {
        3 + 2 * self.n_ptrs + self.n_params + reg
    }
    pub fn sym_word(&self, slot: usize) -> usize {
        3 + 2 * self.n_ptrs + self.n_params + self.n_regs + slot
    }
}

/// Static JIT eligibility of a fused kernel: decides up front whether
/// [`emit`] can lower every instruction bit-exactly, and computes the
/// frame layout if so. Infallible emission is the invariant that lets
/// the runtime treat an `Ok` layout as "native unless the OS refuses
/// pages or this run needs interleaved coverage".
pub(crate) fn analyze(fk: &FusedKernel, n_params: usize) -> Result<JitLayout, JitReject> {
    if !cfg!(all(unix, target_arch = "x86_64")) {
        return Err(JitReject::UnsupportedArch);
    }
    if fk.lanes != 1 {
        return Err(JitReject::Vectorized);
    }
    if fk.n_regs > MAX_FLOAT_REGS {
        return Err(JitReject::TooManyRegs);
    }
    let mut n_ptrs = 0usize;
    let in_ptr: Vec<Option<usize>> = fk
        .in_regs
        .iter()
        .map(|r| {
            r.map(|_| {
                n_ptrs += 1;
                n_ptrs - 1
            })
        })
        .collect();
    let out_ptr: Vec<usize> = (0..fk.outputs.len())
        .map(|_| {
            n_ptrs += 1;
            n_ptrs - 1
        })
        .collect();
    if n_ptrs > MAX_PTRS {
        return Err(JitReject::TooManyAccesses);
    }
    for acc in &fk.outputs {
        if matches!(acc.wcr, Some(Wcr::Max) | Some(Wcr::Min)) {
            // f64::max/min differ from maxsd/minsd on NaN and ±0.
            return Err(JitReject::UnsupportedWcr);
        }
    }
    let mut sym_slots: Vec<SymId> = Vec::new();
    for insn in &fk.code {
        match insn {
            FKInsn::BinF { op, .. } => match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {}
                _ => return Err(JitReject::UnsupportedOp),
            },
            FKInsn::UnF { op, .. } => match op {
                UnOp::Neg | UnOp::Abs | UnOp::Sqrt => {}
                _ => return Err(JitReject::UnsupportedOp),
            },
            FKInsn::LoadSymF { sym, .. } if !sym_slots.contains(sym) => {
                sym_slots.push(*sym);
            }
            // Everything else has a direct lowering (coverage markers
            // are no-ops natively: entry coverage is batched by the
            // caller and interleaved-coverage runs never reach the JIT).
            _ => {}
        }
    }
    let n_regs = fk.n_regs;
    let mut lay = JitLayout {
        n_params,
        n_regs,
        in_ptr,
        out_ptr,
        n_ptrs,
        sym_slots,
        frame_words: 0,
    };
    lay.frame_words = lay.sym_word(lay.sym_slots.len());
    Ok(lay)
}

/// Byte displacement of a frame word.
fn disp(word: usize) -> i32 {
    (word * 8) as i32
}

/// Pointer register of a frame pointer slot.
fn preg(slot: usize) -> u8 {
    gpr::R8 + slot as u8
}

/// Emits `dst8 = (bool of the flags per `recipe`)`, zero-extends it and
/// stores it into the frame's bool register `reg`. `recipe` is one or
/// two setcc conditions combined with and/or.
enum BoolRecipe {
    One(u8),
    /// `cc0 AND cc1` (e.g. `sete && setnp` for `==`).
    And(u8, u8),
    /// `cc0 OR cc1` (e.g. `setne || setp` for `!=`).
    Or(u8, u8),
}

fn store_flag_bool(a: &mut Asm, lay: &JitLayout, reg: u32, recipe: BoolRecipe) {
    match recipe {
        BoolRecipe::One(c) => a.setcc(c, gpr::RDX),
        BoolRecipe::And(c0, c1) => {
            a.setcc(c0, gpr::RDX);
            a.setcc(c1, gpr::RSI);
            a.and_r8(gpr::RDX, gpr::RSI);
        }
        BoolRecipe::Or(c0, c1) => {
            a.setcc(c0, gpr::RDX);
            a.setcc(c1, gpr::RSI);
            a.or_r8(gpr::RDX, gpr::RSI);
        }
    }
    a.movzx(gpr::RDX, gpr::RDX);
    a.mov_mr(gpr::RDI, disp(lay.bool_word(reg as usize)), gpr::RDX);
}

/// `dst = op(a, b)` preserving operand order (and thus NaN payload
/// propagation) exactly as rustc's own `addsd`-family codegen does.
fn bin_sd(a: &mut Asm, op: u8, dst: u8, x: u8, y: u8) {
    if dst == x {
        a.sd_op(op, dst, y);
    } else if dst != y {
        a.movapd(dst, x);
        a.sd_op(op, dst, y);
    } else {
        a.movapd(XMM_SCRATCH1, x);
        a.sd_op(op, XMM_SCRATCH1, y);
        a.movapd(dst, XMM_SCRATCH1);
    }
}

/// Lowers an analyzed kernel to finished instruction bytes. Must not be
/// called unless [`analyze`] returned this layout (emission is
/// infallible under the invariants it established).
pub(crate) fn emit(fk: &FusedKernel, lay: &JitLayout) -> Vec<u8> {
    let mut a = Asm::new();
    let inner = lay.n_params - 1;
    let saved: Vec<u8> = (4..lay.n_ptrs).map(preg).collect();
    for &r in &saved {
        a.push(r);
    }
    let done = a.label();
    a.mov_rm(gpr::RCX, gpr::RDI, disp(0));
    a.test_rr(gpr::RCX, gpr::RCX);
    a.jcc(cc::E, done);
    a.mov_rm(gpr::RAX, gpr::RDI, disp(1));
    for slot in 0..lay.n_ptrs {
        a.mov_rm(preg(slot), gpr::RDI, disp(lay.ptr_word(slot)));
    }
    let top = a.label();
    a.bind(top);

    // Per-element input loads, in kernel input order (dead reads were
    // proven in-bounds by the precheck and emit nothing).
    for (ii, slot) in lay.in_ptr.iter().enumerate() {
        if let (Some(reg), Some(slot)) = (fk.in_regs[ii], slot) {
            a.movsd_rm(reg as u8, preg(*slot), 0);
        }
    }

    // Body. One label per instruction index (plus one past the end) so
    // select jumps can target any point, exactly like the bytecode pc.
    let labels: Vec<Label> = (0..=fk.code.len()).map(|_| a.label()).collect();
    for (i, insn) in fk.code.iter().enumerate() {
        a.bind(labels[i]);
        match insn {
            FKInsn::ConstF { dst, val } => {
                a.mov_ri(gpr::RDX, val.to_bits());
                a.movq_xr(*dst as u8, gpr::RDX);
            }
            FKInsn::ConstB { dst, val } => {
                a.mov_ri(gpr::RDX, *val as u64);
                a.mov_mr(gpr::RDI, disp(lay.bool_word(*dst as usize)), gpr::RDX);
            }
            FKInsn::MovF { dst, src } => {
                if dst != src {
                    a.movapd(*dst as u8, *src as u8);
                }
            }
            FKInsn::MovB { dst, src } => {
                a.mov_rm(gpr::RDX, gpr::RDI, disp(lay.bool_word(*src as usize)));
                a.mov_mr(gpr::RDI, disp(lay.bool_word(*dst as usize)), gpr::RDX);
            }
            FKInsn::LoadSymF { dst, sym } => {
                let slot = lay
                    .sym_slots
                    .iter()
                    .position(|s| s == sym)
                    .expect("analyze collected every LoadSymF symbol");
                a.movsd_rm(*dst as u8, gpr::RDI, disp(lay.sym_word(slot)));
            }
            FKInsn::LoadParamF { dst, dim } => {
                if *dim as usize == inner {
                    a.cvtsi2sd(*dst as u8, gpr::RAX);
                } else {
                    a.movsd_rm(*dst as u8, gpr::RDI, disp(lay.param_word(*dim as usize)));
                }
            }
            FKInsn::BinF {
                op,
                dst,
                a: x,
                b: y,
            } => {
                let opb = match op {
                    BinOp::Add => 0x58,
                    BinOp::Sub => 0x5C,
                    BinOp::Mul => 0x59,
                    BinOp::Div => 0x5E,
                    _ => unreachable!("rejected by analyze"),
                };
                bin_sd(&mut a, opb, *dst as u8, *x as u8, *y as u8);
            }
            FKInsn::UnF { op, dst, a: x } => match op {
                UnOp::Sqrt => a.sd_op(0x51, *dst as u8, *x as u8),
                UnOp::Neg | UnOp::Abs => {
                    let mask = if matches!(op, UnOp::Neg) {
                        0x8000_0000_0000_0000u64
                    } else {
                        0x7FFF_FFFF_FFFF_FFFFu64
                    };
                    a.mov_ri(gpr::RDX, mask);
                    a.movq_xr(XMM_SCRATCH1, gpr::RDX);
                    if dst != x {
                        a.movapd(*dst as u8, *x as u8);
                    }
                    if matches!(op, UnOp::Neg) {
                        a.xorpd(*dst as u8, XMM_SCRATCH1);
                    } else {
                        a.andpd(*dst as u8, XMM_SCRATCH1);
                    }
                }
                _ => unreachable!("rejected by analyze"),
            },
            FKInsn::CmpF {
                op,
                dst,
                a: x,
                b: y,
            } => {
                // `ucomisd p, q` sets flags for `p ? q`; unordered sets
                // ZF=PF=CF=1. The recipes reproduce Rust's comparison
                // semantics including NaN operands.
                let recipe = match op {
                    CmpOp::Lt => {
                        a.ucomisd(*y as u8, *x as u8);
                        BoolRecipe::One(cc::A)
                    }
                    CmpOp::Le => {
                        a.ucomisd(*y as u8, *x as u8);
                        BoolRecipe::One(cc::AE)
                    }
                    CmpOp::Gt => {
                        a.ucomisd(*x as u8, *y as u8);
                        BoolRecipe::One(cc::A)
                    }
                    CmpOp::Ge => {
                        a.ucomisd(*x as u8, *y as u8);
                        BoolRecipe::One(cc::AE)
                    }
                    CmpOp::Eq => {
                        a.ucomisd(*x as u8, *y as u8);
                        BoolRecipe::And(cc::E, cc::NP)
                    }
                    CmpOp::Ne => {
                        a.ucomisd(*x as u8, *y as u8);
                        BoolRecipe::Or(cc::NE, cc::P)
                    }
                };
                store_flag_bool(&mut a, lay, *dst, recipe);
            }
            FKInsn::NotB { dst, a: x } => {
                a.mov_rm(gpr::RDX, gpr::RDI, disp(lay.bool_word(*x as usize)));
                a.xor_ri8(gpr::RDX, 1);
                a.mov_mr(gpr::RDI, disp(lay.bool_word(*dst as usize)), gpr::RDX);
            }
            FKInsn::AndB { dst, a: x, b: y } => {
                a.mov_rm(gpr::RDX, gpr::RDI, disp(lay.bool_word(*x as usize)));
                a.and_rm(gpr::RDX, gpr::RDI, disp(lay.bool_word(*y as usize)));
                a.mov_mr(gpr::RDI, disp(lay.bool_word(*dst as usize)), gpr::RDX);
            }
            FKInsn::OrB { dst, a: x, b: y } => {
                a.mov_rm(gpr::RDX, gpr::RDI, disp(lay.bool_word(*x as usize)));
                a.or_rm(gpr::RDX, gpr::RDI, disp(lay.bool_word(*y as usize)));
                a.mov_mr(gpr::RDI, disp(lay.bool_word(*dst as usize)), gpr::RDX);
            }
            FKInsn::BoolFromF { reg } => {
                a.xorpd(XMM_SCRATCH1, XMM_SCRATCH1);
                a.ucomisd(*reg as u8, XMM_SCRATCH1);
                store_flag_bool(&mut a, lay, *reg, BoolRecipe::Or(cc::NE, cc::P));
            }
            FKInsn::FloatFromB { dst, src } => {
                a.mov_rm(gpr::RDX, gpr::RDI, disp(lay.bool_word(*src as usize)));
                a.cvtsi2sd(*dst as u8, gpr::RDX);
            }
            // Coverage markers: entry coverage is batched by the caller
            // and interleaved-coverage runs never dispatch natively.
            FKInsn::Stmt { .. } | FKInsn::CoverSel { .. } | FKInsn::Cover { .. } => {}
            FKInsn::JumpIfFalse { cond, target } => {
                a.mov_rm(gpr::RDX, gpr::RDI, disp(lay.bool_word(*cond as usize)));
                a.test_rr(gpr::RDX, gpr::RDX);
                a.jcc(cc::E, labels[*target as usize]);
            }
            FKInsn::Jump { target } => {
                a.jmp(labels[*target as usize]);
            }
        }
    }
    a.bind(labels[fk.code.len()]);

    // Per-element output stores, in kernel output order (WCR combines
    // load-op-store, preserving exact accumulation order).
    for (oi, acc) in fk.outputs.iter().enumerate() {
        let (reg, from_bool) = fk.out_regs[oi];
        let pr = preg(lay.out_ptr[oi]);
        let src = if from_bool {
            a.mov_rm(gpr::RDX, gpr::RDI, disp(lay.bool_word(reg as usize)));
            a.cvtsi2sd(XMM_SCRATCH1, gpr::RDX);
            XMM_SCRATCH1
        } else {
            reg as u8
        };
        match acc.wcr {
            None => a.movsd_mr(pr, 0, src),
            Some(Wcr::Sum) => {
                a.movsd_rm(XMM_SCRATCH0, pr, 0);
                a.sd_op(0x58, XMM_SCRATCH0, src);
                a.movsd_mr(pr, 0, XMM_SCRATCH0);
            }
            Some(Wcr::Prod) => {
                a.movsd_rm(XMM_SCRATCH0, pr, 0);
                a.sd_op(0x59, XMM_SCRATCH0, src);
                a.movsd_mr(pr, 0, XMM_SCRATCH0);
            }
            Some(Wcr::Max) | Some(Wcr::Min) => unreachable!("rejected by analyze"),
        }
    }

    // Advance pointers and the inner parameter; loop.
    for slot in 0..lay.n_ptrs {
        a.add_rm(preg(slot), gpr::RDI, disp(lay.stride_word(slot)));
    }
    a.add_rm(gpr::RAX, gpr::RDI, disp(2));
    a.dec(gpr::RCX);
    a.jcc(cc::NE, top);
    a.bind(done);
    for &r in saved.iter().rev() {
        a.pop(r);
    }
    a.ret();
    a.finish()
}
