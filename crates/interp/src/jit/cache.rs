//! Process-wide shared native-code cache.
//!
//! Same lock-only-on-insert design as the shared program cache
//! ([`crate::shared`]): probes load an atomic snapshot of an immutable
//! map and never lock; the insert mutex is taken only to publish a new
//! snapshot. Two differences support bounded capacity with real
//! reclamation:
//!
//! * Snapshots hold only [`Weak`] references. The strong references
//!   live in one bounded list guarded by the insert mutex, so evicting
//!   an entry actually drops it — the pages are unmapped as soon as the
//!   last executor running that kernel finishes — even though superseded
//!   snapshots are leaked (each leaked snapshot is at most
//!   `capacity` weak handles, not code).
//! * Eviction is coarse LRU: every probe hit stamps its entry from a
//!   global clock, and an insert that exceeds
//!   [`cache_capacity`](crate::cache_capacity) drops the entry with the
//!   oldest stamp.
//!
//! Concurrent misses on one key may both emit the (tiny) blob; the
//! insert then keeps the first and the loser's copy is dropped — code
//! emission is far cheaper than serializing all compilations through a
//! per-key slot would be.

use super::JitCode;
use crate::shared::cache_capacity;
use std::collections::HashMap;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

/// Immutable snapshot: kernel `jit_key` → (code, LRU stamp).
type Shelf = HashMap<u64, (Weak<JitCode>, Arc<AtomicU64>)>;

/// One strong entry: `(key, code, LRU stamp)`.
type Entry = (u64, Arc<JitCode>, Arc<AtomicU64>);

struct CodeCache {
    /// Current snapshot (null until the first insert); always a leaked,
    /// immutable `Shelf`.
    snap: AtomicPtr<Shelf>,
    /// The bounded strong-reference list; doubles as the insert lock.
    strong: Mutex<Vec<Entry>>,
}

static CACHE: OnceLock<CodeCache> = OnceLock::new();
static CLOCK: AtomicU64 = AtomicU64::new(1);
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static EVICTIONS: AtomicU64 = AtomicU64::new(0);
static COMPILES: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// Cumulative counters of the process-wide native-code cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CodeCacheStats {
    /// Lock-free probes that found live code.
    pub hits: u64,
    /// Probes that found nothing (or an evicted entry).
    pub misses: u64,
    /// Entries dropped by LRU eviction.
    pub evictions: u64,
    /// Kernels lowered to native code (cache hits do not count).
    pub compiles: u64,
    /// Total native code bytes emitted. Warm campaign re-runs leave
    /// this unchanged.
    pub bytes: u64,
}

/// Current counters of the native-code cache. Warm re-runs of a campaign
/// should leave `compiles` and `bytes` unchanged.
pub fn code_cache_stats() -> CodeCacheStats {
    CodeCacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        evictions: EVICTIONS.load(Ordering::Relaxed),
        compiles: COMPILES.load(Ordering::Relaxed),
        bytes: BYTES.load(Ordering::Relaxed),
    }
}

fn cache() -> &'static CodeCache {
    CACHE.get_or_init(|| CodeCache {
        snap: AtomicPtr::new(std::ptr::null_mut()),
        strong: Mutex::new(Vec::new()),
    })
}

fn shelf() -> Option<&'static Shelf> {
    // SAFETY: `snap` only ever holds null or a `Box::leak`ed pointer,
    // valid for the process lifetime and immutable after publication.
    unsafe { cache().snap.load(Ordering::Acquire).as_ref() }
}

/// Lock-free probe. A hit refreshes the entry's LRU stamp.
pub(crate) fn lookup(key: u64) -> Option<Arc<JitCode>> {
    let found = shelf().and_then(|m| m.get(&key)).and_then(|(w, stamp)| {
        let code = w.upgrade()?;
        stamp.store(CLOCK.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
        Some(code)
    });
    match &found {
        Some(_) => HITS.fetch_add(1, Ordering::Relaxed),
        None => MISSES.fetch_add(1, Ordering::Relaxed),
    };
    found
}

/// Records an emission (for the `bytes`/`compiles` counters) before the
/// blob is published.
pub(crate) fn count_emission(bytes: usize) {
    COMPILES.fetch_add(1, Ordering::Relaxed);
    BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
}

/// Publishes freshly emitted code under `key`, returning the cache's
/// entry for it (ours, or a concurrent winner's). Takes the insert lock
/// briefly; evicts the least-recently-probed entries beyond the
/// configured capacity.
pub(crate) fn insert(key: u64, code: JitCode) -> Arc<JitCode> {
    let c = cache();
    let mut strong = c.strong.lock().expect("code-cache insert lock");
    if let Some((_, existing, stamp)) = strong.iter().find(|(k, _, _)| *k == key) {
        // A concurrent emitter won the race; keep one copy.
        stamp.store(CLOCK.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
        return Arc::clone(existing);
    }
    let code = Arc::new(code);
    let stamp = Arc::new(AtomicU64::new(CLOCK.fetch_add(1, Ordering::Relaxed)));
    strong.push((key, Arc::clone(&code), stamp));
    let cap = cache_capacity();
    while strong.len() > cap {
        let oldest = strong
            .iter()
            .enumerate()
            .min_by_key(|(_, (_, _, s))| s.load(Ordering::Relaxed))
            .map(|(i, _)| i)
            .expect("non-empty over-capacity list");
        strong.remove(oldest);
        EVICTIONS.fetch_add(1, Ordering::Relaxed);
    }
    // Rebuild and publish the snapshot from the (bounded) strong list;
    // the superseded snapshot stays alive for readers that hold it, but
    // only as weak handles.
    let next: Shelf = strong
        .iter()
        .map(|(k, a, s)| (*k, (Arc::downgrade(a), Arc::clone(s))))
        .collect();
    c.snap.store(Box::leak(Box::new(next)), Ordering::Release);
    code
}
