//! Deterministic reference interpreter for the FuzzyFlow dataflow IR.
//!
//! The interpreter plays the role of DaCe's C++ code generation plus native
//! execution in the paper's tool chain: it is the engine differential
//! testing drives (paper Sec. 5). Design goals, in order:
//!
//! 1. **Observability** — every failure mode the paper's fuzzer looks for is
//!    a first-class error: out-of-bounds accesses and integer division by
//!    zero surface as [`ExecError`] ("crashes"), a configurable step limit
//!    catches non-termination ("hangs"), and structurally broken programs
//!    are rejected up front ("generates invalid code").
//! 2. **Determinism** — identical inputs produce bit-identical outputs;
//!    parallel maps execute in canonical iteration order, reductions in a
//!    fixed combine order. Differential comparisons are exact by default.
//! 3. **Coverage feedback** — an AFL-style edge-coverage map
//!    ([`CoverageMap`]) records state transitions, node executions and
//!    branch outcomes, enabling the coverage-guided fuzzing mode of
//!    Sec. 5.1 without external tooling.
//!
//! Two engines implement these semantics:
//!
//! * the **compiled engine** ([`Program`]/[`Executor`]) — SDFGs are
//!   lowered once into interned-id, bytecode-backed programs and executed
//!   many times against id-indexed storage with reusable buffers; this is
//!   what the differential trial loop runs on, and what [`run`] /
//!   [`run_with`] use under the hood;
//! * the **tree-walk engine** ([`run_tree_walk`] / [`run_with_tree_walk`])
//!   — the direct AST interpreter kept as the reference semantics.
//!
//! The two are held bit-identical (results, errors, step accounting,
//! coverage ids) by the engine-equivalence property suite.

pub mod coverage;
pub mod error;
pub mod exec;
pub mod jit;
pub mod program;
pub mod shared;
pub mod value;

pub use coverage::CoverageMap;
pub use error::ExecError;
pub use exec::{
    run, run_tree_walk, run_with, run_with_tree_walk, CommHandler, ExecOptions, ExecState,
    ResetPolicy, StateMismatch,
};
pub use jit::{
    code_cache_stats, jit_native_runs, jit_native_runs_split, CodeCacheStats, JitReject,
};
pub use program::{
    fresh_arena_count, CompileOptions, Executor, ExecutorArena, FuseReject, MapFusionInfo, Program,
    TaskletStats,
};
pub use shared::{
    cache_capacity, compile_shared, compile_shared_with, set_cache_capacity, shared_cache_stats,
    shared_compile_count, SharedCacheStats,
};
pub use value::ArrayValue;
