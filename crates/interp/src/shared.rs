//! Process-wide shared compiled-program cache.
//!
//! Campaign sessions, sweeps and gang members routinely compile the same
//! cutout SDFG: every re-run of a session, every concurrent session over
//! the same workload, every distributed rank of one instance. Compilation
//! is pure — same SDFG and options, same [`Program`] — so one process
//! needs each program exactly once.
//!
//! The cache follows the lock-only-on-insert design of native fuzzing
//! code caches:
//!
//! * **Lookup never locks.** Readers load an atomic snapshot pointer to
//!   an immutable map and probe it; a hit is an `Arc` clone away.
//!   Concurrent lookups of *different* keys never contend on anything.
//! * **Insert locks briefly, compiles unlocked.** A miss takes the
//!   insert mutex only to publish a new snapshot containing an empty
//!   per-key slot (copy-on-write of the map — rare, small). The actual
//!   compilation happens *outside* that mutex through the slot's
//!   [`OnceLock`]: the first caller compiles, concurrent callers of the
//!   same key block on that slot only, and everyone receives the same
//!   `Arc<Program>`. One worker compiling never stalls workers on other
//!   keys, and there are no lost wakeups — `OnceLock::get_or_init` wakes
//!   every waiter exactly once.
//! * **Capacity is bounded.** Snapshots hold only [`Weak`] slot handles;
//!   the strong references live in one list guarded by the insert mutex,
//!   capped at [`cache_capacity`] entries with coarse LRU eviction
//!   (every hit stamps its entry from a global clock; an insert beyond
//!   capacity drops the oldest stamp). Eviction genuinely frees the
//!   program once its last outside user drops it. Superseded snapshots
//!   are intentionally leaked (readers may still hold them), but each is
//!   at most `capacity` weak handles — not programs.
//!
//! Shared `Arc<Program>`s also make the downstream identity-keyed caches
//! effective across campaigns: [`Program`] clones share their id, so
//! per-worker executor caches and per-instance arena stashes keyed by
//! program identity hit whenever the cache does.

use crate::program::{CompileOptions, Program};
use fuzzyflow_ir::Sdfg;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

/// One cache slot: filled exactly once, by whichever caller gets there
/// first; everyone else blocks on this slot only.
type Slot = Arc<OnceLock<Arc<Program>>>;

/// Immutable snapshot: content hash → weak slot handles (plus LRU
/// stamps) whose full keys share it.
type Shelf = HashMap<u64, Vec<(Arc<str>, Weak<OnceLock<Arc<Program>>>, Arc<AtomicU64>)>>;

/// One strong entry: `(content hash, full key, slot, LRU stamp)`.
type Entry = (u64, Arc<str>, Slot, Arc<AtomicU64>);

struct SharedCache {
    /// Current snapshot (null until the first insert). Always points to
    /// a leaked, and therefore `'static`, immutable `Shelf`.
    snap: AtomicPtr<Shelf>,
    /// The bounded strong-reference list; doubles as the insert lock.
    /// Never held while compiling.
    strong: Mutex<Vec<Entry>>,
}

/// Default capacity of the process-wide caches (see [`cache_capacity`]).
pub const DEFAULT_CACHE_CAPACITY: usize = 256;

static CACHE: OnceLock<SharedCache> = OnceLock::new();
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CACHE_CAPACITY);
static CLOCK: AtomicU64 = AtomicU64::new(1);
static COMPILES: AtomicU64 = AtomicU64::new(0);
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static EVICTIONS: AtomicU64 = AtomicU64::new(0);

/// The shared capacity knob of every process-wide stash: the program
/// cache here, the native-code cache ([`crate::jit`]), the fuzzing
/// layer's per-worker executor caches and arena stashes. Entries, not
/// bytes; defaults to [`DEFAULT_CACHE_CAPACITY`].
pub fn cache_capacity() -> usize {
    CAPACITY.load(Ordering::Relaxed)
}

/// Sets [`cache_capacity`] process-wide (clamped to at least 1). Takes
/// effect on the next insert of each cache; already-resident entries
/// beyond a lowered capacity are evicted then.
pub fn set_cache_capacity(cap: usize) {
    CAPACITY.store(cap.max(1), Ordering::Relaxed);
}

fn cache() -> &'static SharedCache {
    CACHE.get_or_init(|| SharedCache {
        snap: AtomicPtr::new(std::ptr::null_mut()),
        strong: Mutex::new(Vec::new()),
    })
}

/// Number of programs this process has actually compiled through the
/// shared cache (cache hits do not count). Warm re-runs of a campaign
/// should leave this unchanged.
pub fn shared_compile_count() -> u64 {
    COMPILES.load(Ordering::Relaxed)
}

/// Cumulative counters of the process-wide shared program cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SharedCacheStats {
    /// Lock-free probes that found a live slot.
    pub hits: u64,
    /// Probes that found nothing (or an evicted slot).
    pub misses: u64,
    /// Entries dropped by LRU eviction.
    pub evictions: u64,
    /// Programs actually compiled (same counter as
    /// [`shared_compile_count`]).
    pub compiles: u64,
}

/// Current counters of the shared program cache.
pub fn shared_cache_stats() -> SharedCacheStats {
    SharedCacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        evictions: EVICTIONS.load(Ordering::Relaxed),
        compiles: COMPILES.load(Ordering::Relaxed),
    }
}

fn shelf_of(c: &'static SharedCache) -> Option<&'static Shelf> {
    // SAFETY: `snap` only ever holds null or a pointer from
    // `Box::leak`, so any non-null value is valid for the process
    // lifetime and never mutated after publication.
    unsafe { c.snap.load(Ordering::Acquire).as_ref() }
}

/// Lock-free probe of the published snapshot. A hit refreshes the
/// entry's LRU stamp.
fn probe(shelf: Option<&Shelf>, h: u64, key: &str) -> Option<Slot> {
    let (_, weak, stamp) = shelf
        .and_then(|m| m.get(&h))
        .and_then(|v| v.iter().find(|(k, _, _)| &**k == key))?;
    let slot = weak.upgrade()?;
    stamp.store(CLOCK.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
    Some(slot)
}

/// Rebuilds and publishes the snapshot from the (bounded) strong list.
/// Caller holds the insert lock.
fn publish(c: &'static SharedCache, strong: &[Entry]) {
    let mut next: Shelf = HashMap::new();
    for (h, k, slot, stamp) in strong {
        next.entry(*h)
            .or_default()
            .push((Arc::clone(k), Arc::downgrade(slot), Arc::clone(stamp)));
    }
    // Leak the new snapshot; the superseded one stays alive for readers
    // that already loaded it, holding only weak handles.
    c.snap.store(Box::leak(Box::new(next)), Ordering::Release);
}

/// [`Program::compile`] through the shared cache.
pub fn compile_shared(sdfg: &Sdfg) -> Arc<Program> {
    compile_shared_with(sdfg, &CompileOptions::default())
}

/// [`Program::compile_with_options`] through the shared cache: returns
/// the one `Arc<Program>` this process holds for the given SDFG content
/// and options, compiling it at most once while resident.
pub fn compile_shared_with(sdfg: &Sdfg, opts: &CompileOptions) -> Arc<Program> {
    // Content key: options plus the SDFG's complete debug rendering
    // (structurally equal SDFGs render identically). Hash for the map,
    // full string compare on probe — no collision risk.
    let key = format!(
        "s{}f{}|{sdfg:?}",
        opts.specialize_f64 as u8, opts.fuse_maps as u8
    );
    let mut hasher = DefaultHasher::new();
    key.hash(&mut hasher);
    let h = hasher.finish();

    let c = cache();
    let slot = match probe(shelf_of(c), h, &key) {
        Some(slot) => {
            HITS.fetch_add(1, Ordering::Relaxed);
            slot
        }
        None => {
            MISSES.fetch_add(1, Ordering::Relaxed);
            let mut strong = c.strong.lock().expect("shared-cache insert lock");
            // Re-probe under the lock (against the authoritative strong
            // list): a concurrent inserter may have published this key
            // between our miss and the acquisition.
            if let Some((_, _, slot, stamp)) =
                strong.iter().find(|(eh, ek, _, _)| *eh == h && **ek == key)
            {
                stamp.store(CLOCK.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
                Arc::clone(slot)
            } else {
                let slot: Slot = Arc::new(OnceLock::new());
                let stamp = Arc::new(AtomicU64::new(CLOCK.fetch_add(1, Ordering::Relaxed)));
                strong.push((h, Arc::from(key.as_str()), Arc::clone(&slot), stamp));
                let cap = cache_capacity();
                while strong.len() > cap {
                    let oldest = strong
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, (_, _, _, s))| s.load(Ordering::Relaxed))
                        .map(|(i, _)| i)
                        .expect("non-empty over-capacity list");
                    strong.remove(oldest);
                    EVICTIONS.fetch_add(1, Ordering::Relaxed);
                }
                publish(c, &strong);
                slot
            }
        }
    };
    Arc::clone(slot.get_or_init(|| {
        COMPILES.fetch_add(1, Ordering::Relaxed);
        Arc::new(Program::compile_with_options(sdfg, opts))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzyflow_ir::{DType, Memlet, ScalarExpr, SdfgBuilder, Subset, SymExpr, Tasklet};

    fn sample(name: &str, factor: f64) -> Sdfg {
        let mut b = SdfgBuilder::new(name);
        b.symbol("N");
        b.array("A", DType::F64, &["N"]);
        b.array("B", DType::F64, &["N"]);
        let st = b.start();
        b.in_state(st, |df| {
            let a = df.access("A");
            let o = df.access("B");
            let t = df.tasklet(Tasklet::simple(
                "t",
                vec!["x"],
                "y",
                ScalarExpr::r("x").mul(ScalarExpr::f64(factor)),
            ));
            df.read(
                a,
                t,
                Memlet::new("A", Subset::at(vec![SymExpr::sym("i")])).to_conn("x"),
            );
            df.write(
                t,
                o,
                Memlet::new("B", Subset::at(vec![SymExpr::sym("i")])).from_conn("y"),
            );
            let _ = df;
        });
        b.build()
    }

    // One test (not several) so the global compile counter deltas cannot
    // race against a sibling test in the same process.
    #[test]
    fn shared_cache_compiles_each_content_once() {
        // Structurally identical SDFGs built twice: one compilation.
        let s1 = sample("shared_cache_once", 2.0);
        let s2 = sample("shared_cache_once", 2.0);
        let before = shared_compile_count();
        let p1 = compile_shared(&s1);
        let p2 = compile_shared(&s2);
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(p1.id(), p2.id());
        assert_eq!(shared_compile_count() - before, 1);
        // Different options miss; the original key still hits.
        let p3 = compile_shared_with(
            &s1,
            &CompileOptions {
                fuse_maps: false,
                ..Default::default()
            },
        );
        assert!(!Arc::ptr_eq(&p1, &p3));
        assert_eq!(shared_compile_count() - before, 2);
        assert!(Arc::ptr_eq(&p1, &compile_shared(&s2)));
        assert_eq!(shared_compile_count() - before, 2);
        let stats = shared_cache_stats();
        assert!(stats.hits >= 1 && stats.misses >= 2);

        // Eight threads racing on a fresh key: everyone gets the same
        // program, exactly one compilation, no lost wakeups.
        let racy = sample("shared_cache_race", 3.0);
        let before = shared_compile_count();
        let ids: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| compile_shared(&racy).id()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(shared_compile_count() - before, 1);

        // Capacity bound: with a capacity of 2, three distinct keys
        // force an LRU eviction, and re-requesting the evicted content
        // recompiles under a fresh program id.
        let cap_before = cache_capacity();
        set_cache_capacity(2);
        let (ca, cb, cc) = (
            sample("shared_cache_cap_a", 4.0),
            sample("shared_cache_cap_b", 5.0),
            sample("shared_cache_cap_c", 6.0),
        );
        let ev_before = shared_cache_stats().evictions;
        let a1 = compile_shared(&ca).id();
        let _ = compile_shared(&cb);
        let _ = compile_shared(&cc);
        assert!(shared_cache_stats().evictions > ev_before);
        // Everything from before this block was evicted too; the one
        // entry guaranteed gone is the LRU — `ca` among the three.
        let a2 = compile_shared(&ca).id();
        assert_ne!(a1, a2, "evicted content must recompile");
        set_cache_capacity(cap_before);
    }
}
