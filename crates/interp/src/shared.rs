//! Process-wide shared compiled-program cache.
//!
//! Campaign sessions, sweeps and gang members routinely compile the same
//! cutout SDFG: every re-run of a session, every concurrent session over
//! the same workload, every distributed rank of one instance. Compilation
//! is pure — same SDFG and options, same [`Program`] — so one process
//! needs each program exactly once.
//!
//! The cache follows the lock-only-on-insert design of native fuzzing
//! code caches:
//!
//! * **Lookup never locks.** Readers load an atomic snapshot pointer to
//!   an immutable map and probe it; a hit is an `Arc` clone away.
//!   Concurrent lookups of *different* keys never contend on anything.
//! * **Insert locks briefly, compiles unlocked.** A miss takes the
//!   insert mutex only to publish a new snapshot containing an empty
//!   per-key slot (copy-on-write of the map — rare, small). The actual
//!   compilation happens *outside* that mutex through the slot's
//!   [`OnceLock`]: the first caller compiles, concurrent callers of the
//!   same key block on that slot only, and everyone receives the same
//!   `Arc<Program>`. One worker compiling never stalls workers on other
//!   keys, and there are no lost wakeups — `OnceLock::get_or_init` wakes
//!   every waiter exactly once.
//!
//! Superseded snapshots are intentionally leaked (readers may still hold
//! them); a process accumulates one small map clone per *distinct*
//! program, not per lookup.
//!
//! Shared `Arc<Program>`s also make the downstream identity-keyed caches
//! effective across campaigns: [`Program`] clones share their id, so
//! per-worker executor caches and per-instance arena stashes keyed by
//! program identity hit whenever the cache does.

use crate::program::{CompileOptions, Program};
use fuzzyflow_ir::Sdfg;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One cache slot: filled exactly once, by whichever caller gets there
/// first; everyone else blocks on this slot only.
type Slot = Arc<OnceLock<Arc<Program>>>;

/// Immutable snapshot: content hash → slots whose full keys share it.
type Shelf = HashMap<u64, Vec<(String, Slot)>>;

struct SharedCache {
    /// Current snapshot (null until the first insert). Always points to
    /// a leaked, and therefore `'static`, immutable `Shelf`.
    snap: AtomicPtr<Shelf>,
    /// Serializes snapshot replacement only — never held while
    /// compiling.
    insert: Mutex<()>,
}

static CACHE: OnceLock<SharedCache> = OnceLock::new();
static COMPILES: AtomicU64 = AtomicU64::new(0);

fn cache() -> &'static SharedCache {
    CACHE.get_or_init(|| SharedCache {
        snap: AtomicPtr::new(std::ptr::null_mut()),
        insert: Mutex::new(()),
    })
}

/// Number of programs this process has actually compiled through the
/// shared cache (cache hits do not count). Warm re-runs of a campaign
/// should leave this unchanged.
pub fn shared_compile_count() -> u64 {
    COMPILES.load(Ordering::Relaxed)
}

fn shelf_of(c: &'static SharedCache) -> Option<&'static Shelf> {
    // SAFETY: `snap` only ever holds null or a pointer from
    // `Box::leak`, so any non-null value is valid for the process
    // lifetime and never mutated after publication.
    unsafe { c.snap.load(Ordering::Acquire).as_ref() }
}

fn probe(shelf: Option<&Shelf>, h: u64, key: &str) -> Option<Slot> {
    shelf
        .and_then(|m| m.get(&h))
        .and_then(|v| v.iter().find(|(k, _)| k == key))
        .map(|(_, s)| Arc::clone(s))
}

/// [`Program::compile`] through the shared cache.
pub fn compile_shared(sdfg: &Sdfg) -> Arc<Program> {
    compile_shared_with(sdfg, &CompileOptions::default())
}

/// [`Program::compile_with_options`] through the shared cache: returns
/// the one `Arc<Program>` this process holds for the given SDFG content
/// and options, compiling it at most once.
pub fn compile_shared_with(sdfg: &Sdfg, opts: &CompileOptions) -> Arc<Program> {
    // Content key: options plus the SDFG's complete debug rendering
    // (structurally equal SDFGs render identically). Hash for the map,
    // full string compare on probe — no collision risk.
    let key = format!(
        "s{}f{}|{sdfg:?}",
        opts.specialize_f64 as u8, opts.fuse_maps as u8
    );
    let mut hasher = DefaultHasher::new();
    key.hash(&mut hasher);
    let h = hasher.finish();

    let c = cache();
    let slot = match probe(shelf_of(c), h, &key) {
        Some(slot) => slot,
        None => {
            let _g = c.insert.lock().expect("shared-cache insert lock");
            // Re-probe under the lock: a concurrent inserter may have
            // published this key between our miss and the acquisition.
            match probe(shelf_of(c), h, &key) {
                Some(slot) => slot,
                None => {
                    let slot: Slot = Arc::new(OnceLock::new());
                    let mut next: Shelf = shelf_of(c).cloned().unwrap_or_default();
                    next.entry(h)
                        .or_default()
                        .push((key.clone(), Arc::clone(&slot)));
                    // Leak the new snapshot and publish it; the old one
                    // stays alive for readers that already loaded it.
                    c.snap.store(Box::leak(Box::new(next)), Ordering::Release);
                    slot
                }
            }
        }
    };
    Arc::clone(slot.get_or_init(|| {
        COMPILES.fetch_add(1, Ordering::Relaxed);
        Arc::new(Program::compile_with_options(sdfg, opts))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzyflow_ir::{DType, Memlet, ScalarExpr, SdfgBuilder, Subset, SymExpr, Tasklet};

    fn sample(name: &str, factor: f64) -> Sdfg {
        let mut b = SdfgBuilder::new(name);
        b.symbol("N");
        b.array("A", DType::F64, &["N"]);
        b.array("B", DType::F64, &["N"]);
        let st = b.start();
        b.in_state(st, |df| {
            let a = df.access("A");
            let o = df.access("B");
            let t = df.tasklet(Tasklet::simple(
                "t",
                vec!["x"],
                "y",
                ScalarExpr::r("x").mul(ScalarExpr::f64(factor)),
            ));
            df.read(
                a,
                t,
                Memlet::new("A", Subset::at(vec![SymExpr::sym("i")])).to_conn("x"),
            );
            df.write(
                t,
                o,
                Memlet::new("B", Subset::at(vec![SymExpr::sym("i")])).from_conn("y"),
            );
            let _ = df;
        });
        b.build()
    }

    // One test (not several) so the global compile counter deltas cannot
    // race against a sibling test in the same process.
    #[test]
    fn shared_cache_compiles_each_content_once() {
        // Structurally identical SDFGs built twice: one compilation.
        let s1 = sample("shared_cache_once", 2.0);
        let s2 = sample("shared_cache_once", 2.0);
        let before = shared_compile_count();
        let p1 = compile_shared(&s1);
        let p2 = compile_shared(&s2);
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(p1.id(), p2.id());
        assert_eq!(shared_compile_count() - before, 1);
        // Different options miss; the original key still hits.
        let p3 = compile_shared_with(
            &s1,
            &CompileOptions {
                fuse_maps: false,
                ..Default::default()
            },
        );
        assert!(!Arc::ptr_eq(&p1, &p3));
        assert_eq!(shared_compile_count() - before, 2);
        assert!(Arc::ptr_eq(&p1, &compile_shared(&s2)));
        assert_eq!(shared_compile_count() - before, 2);

        // Eight threads racing on a fresh key: everyone gets the same
        // program, exactly one compilation, no lost wakeups.
        let racy = sample("shared_cache_race", 3.0);
        let before = shared_compile_count();
        let ids: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| compile_shared(&racy).id()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(shared_compile_count() - before, 1);
    }
}
