//! The compile-once execution engine.
//!
//! [`Program::compile`] lowers an [`Sdfg`] into a self-contained, immutable
//! program: all data/symbol/connector names are interned into dense ids,
//! memlet subscripts are precompiled into affine access plans (with a
//! compiled postfix expression fallback for non-affine subscripts), and
//! tasklet statement trees are flattened into a register-based instruction
//! list. An [`Executor`] then runs the program against id-indexed `Vec`
//! storage with reusable buffers, so the differential-fuzzing trial loop
//! pays for compilation once and resets state in place between trials.
//!
//! The engine is semantics-identical to the tree-walk interpreter in
//! [`crate::exec`] — same results bit for bit, same [`ExecError`] variants
//! raised in the same order, same step counts for the hang oracle, and the
//! same coverage location ids — which the engine-equivalence property
//! suite enforces differentially (FuzzyFlow's own method, applied to our
//! two engines).

use crate::coverage::{location_id, CoverageMap};
use crate::error::ExecError;
use crate::exec::{
    apply_bin, apply_cmp, apply_un, combine_wcr, matmul, reduce, softmax, CommHandler, ExecOptions,
    ExecState, ResetPolicy, StateMismatch,
};
use crate::jit::JitReject;
use crate::value::ArrayValue;
use fuzzyflow_ir::{
    BinOp, CmpOp, CondExpr, DType, DfNode, LibraryOp, Memlet, Scalar, Sdfg, Storage, SymExpr,
    Tasklet, UnOp, Wcr,
};
use fuzzyflow_sym::{ConcreteRange, SymError};
use std::collections::BTreeMap;

/// Dense id of an interned data container name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct DataId(u32);

impl DataId {
    #[inline]
    fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Dense id of an interned symbol name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct SymId(u32);

impl SymId {
    #[inline]
    pub(crate) fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Order-preserving string interner producing dense `u32` ids.
#[derive(Clone, Debug, Default)]
struct Interner {
    names: Vec<String>,
    ids: BTreeMap<String, u32>,
}

impl Interner {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        id
    }

    fn get(&self, name: &str) -> Option<u32> {
        self.ids.get(name).copied()
    }

    fn len(&self) -> usize {
        self.names.len()
    }
}

/// Postfix-compiled symbolic integer expression. Evaluation reproduces
/// [`SymExpr::eval`] exactly, including error order (for division and
/// remainder the divisor is evaluated and zero-checked *before* the
/// dividend, as in the tree evaluator).
#[derive(Clone, Debug)]
struct SymCode {
    ops: Vec<SymOp>,
}

#[derive(Clone, Debug)]
enum SymOp {
    Push(i64),
    Load(SymId),
    Add,
    Sub,
    Mul,
    /// Errors with `DivisionByZero` if the value on top of the stack is 0.
    EnsureNonZero,
    /// Pops dividend (top) then divisor; pushes Euclidean quotient.
    DivE,
    /// Pops dividend (top) then divisor; pushes Euclidean remainder.
    ModE,
    Min,
    Max,
    Neg,
}

/// One atom of an affine access plan: `± coeff` or `± coeff * sym`.
#[derive(Clone, Debug)]
struct AffTerm {
    /// `false` = added, `true` = subtracted.
    sub: bool,
    sym: Option<SymId>,
    coeff: i64,
}

/// A compiled index expression: constants and bare symbols resolve without
/// any walking, affine chains of `{Int, Sym, Int*Sym}` atoms use a flat
/// term list, and everything else (division, remainder, min/max,
/// re-associated or nested arithmetic) falls back to compiled postfix
/// form.
#[derive(Clone, Debug)]
enum IdxCode {
    Const(i64),
    Sym(SymId),
    /// A left-associated sum/difference of atoms, evaluated as
    /// `((t0 ± t1) ± t2) …` with checked arithmetic. Only expressions
    /// whose tree evaluation performs this *exact* sequence of checked
    /// operations are lowered here (no algebraic rewriting, no constant
    /// folding across atoms), so overflow and unbound-symbol errors stay
    /// bit-identical to [`SymExpr::eval`] — the compiled-code fallback
    /// covers everything else.
    Affine(Vec<AffTerm>),
    Code(SymCode),
}

/// Compiled per-dimension range of a memlet subset or map.
#[derive(Clone, Debug)]
struct RangePlan {
    start: IdxCode,
    end: IdxCode,
    step: IdxCode,
}

/// Compiled access plan of one memlet.
#[derive(Clone, Debug)]
struct MemPlan {
    data: DataId,
    wcr: Option<Wcr>,
    kind: MemKind,
}

#[derive(Clone, Debug)]
enum MemKind {
    /// Every dimension is a single index with unit step: the offset is
    /// computed directly, no range materialization or point iteration.
    /// Each dimension keeps `(start, end-check)`: the end expression's
    /// value is provably `start + 1`, but its *errors* (e.g. overflow at
    /// the i64 edge) must still surface exactly as `Subset::concrete`
    /// raises them in the tree-walk engine — see [`EndCheck`].
    Single(Vec<(IdxCode, EndCheck)>),
    /// General (possibly strided / multi-element) subset.
    Ranges(Vec<RangePlan>),
}

/// How a single-index dimension's end expression is validated.
#[derive(Clone, Debug)]
enum EndCheck {
    /// The end expression is literally `start + 1` for this dimension's
    /// start expression. Re-evaluating the shared subexpression yields
    /// the identical value (evaluation is pure and bindings cannot change
    /// mid-subset), so the end's only possible *new* error is the checked
    /// `+ 1` overflowing at `i64::MAX` — checked directly against the
    /// start's value, skipping a full expression evaluation per element
    /// in the hot trial loop.
    IncOfStart,
    /// Any other shape: evaluate for errors, exactly like the tree walk.
    Eval(IdxCode),
}

/// Compiled inter-state condition (short-circuit evaluation order matches
/// [`CondExpr::eval`]).
#[derive(Clone, Debug)]
enum CondPlan {
    True,
    Cmp(CmpOp, IdxCode, IdxCode),
    Not(Box<CondPlan>),
    And(Box<CondPlan>, Box<CondPlan>),
    Or(Box<CondPlan>, Box<CondPlan>),
}

/// One instruction of the flat, register-based tasklet bytecode.
#[derive(Clone, Debug)]
enum Insn {
    /// Marks the start of a tasklet statement: sets the coverage site and
    /// resets the per-statement select counter.
    Stmt {
        site: u64,
    },
    Const {
        dst: u32,
        val: Scalar,
    },
    Mov {
        dst: u32,
        src: u32,
    },
    LoadSym {
        dst: u32,
        sym: SymId,
    },
    Bin {
        op: BinOp,
        dst: u32,
        a: u32,
        b: u32,
    },
    Un {
        op: UnOp,
        dst: u32,
        a: u32,
    },
    Cmp {
        op: CmpOp,
        dst: u32,
        a: u32,
        b: u32,
    },
    /// Select branch coverage: bumps the select counter and records
    /// `location_id([site, sel, cond])`.
    CoverSel {
        cond: u32,
    },
    JumpIfFalse {
        cond: u32,
        target: u32,
    },
    Jump {
        target: u32,
    },
}

/// Compiled tasklet node.
#[derive(Clone, Debug)]
struct TaskletPlan {
    name: String,
    cover_loc: u64,
    lanes: usize,
    n_conn_slots: usize,
    /// Register holding each input-connector slot's lane value.
    conn_regs: Vec<u32>,
    inputs: Vec<InputPlan>,
    code: Vec<Insn>,
    n_regs: usize,
    /// Per `Tasklet::outputs` entry, in declaration order.
    gather: Vec<GatherSpec>,
    n_out_slots: usize,
    out_writes: Vec<OutWrite>,
    /// Dtype-monomorphic f64 fast path, when the tasklet is eligible (see
    /// [`Compiler::specialize_f64`]) and specialization is enabled. The
    /// executor takes it only when the runtime dtype guards hold, so the
    /// generic interpreter above remains the complete fallback.
    fast: Option<Box<FastTasklet>>,
}

/// One instruction of the monomorphic f64 fast path: a parallel bytecode
/// over a raw `f64` register file plus a `bool` register file (sharing one
/// index space), with no per-element [`Scalar`] boxing or dtype dispatch.
/// Only operations whose generic evaluation provably takes the float (or
/// boolean) path are ever lowered here, so results, errors, coverage ids
/// and step accounting stay bit-identical to the generic bytecode.
#[derive(Clone, Debug)]
enum FInsn {
    /// Statement marker: sets the coverage site, resets the select
    /// counter (mirrors [`Insn::Stmt`]).
    Stmt {
        site: u64,
    },
    ConstF {
        dst: u32,
        val: f64,
    },
    ConstB {
        dst: u32,
        val: bool,
    },
    MovF {
        dst: u32,
        src: u32,
    },
    MovB {
        dst: u32,
        src: u32,
    },
    /// Symbol load, converted to `f64` at the load — sound because
    /// eligibility guarantees the value's only uses are float-path
    /// operations, which convert with the same `as f64` at first use.
    LoadSymF {
        dst: u32,
        sym: SymId,
    },
    /// Float-path binary op (`Add..Max` with ≥ 1 float operand, or `Pow`).
    BinF {
        op: BinOp,
        dst: u32,
        a: u32,
        b: u32,
    },
    /// Float-path unary op (`Neg`/`Abs` on floats, or a math intrinsic).
    UnF {
        op: UnOp,
        dst: u32,
        a: u32,
    },
    /// Float comparison into a bool register.
    CmpF {
        op: CmpOp,
        dst: u32,
        a: u32,
        b: u32,
    },
    NotB {
        dst: u32,
        a: u32,
    },
    AndB {
        dst: u32,
        a: u32,
        b: u32,
    },
    OrB {
        dst: u32,
        a: u32,
        b: u32,
    },
    /// `regs_b[reg] = regs_f[reg] != 0.0` — exactly [`Scalar::as_bool`]
    /// for floats, and equivalent for symbol values (no nonzero `i64`
    /// converts to `0.0`).
    BoolFromF {
        reg: u32,
    },
    CoverSel {
        cond: u32,
    },
    JumpIfFalse {
        cond: u32,
        target: u32,
    },
    Jump {
        target: u32,
    },
}

#[derive(Clone, Debug)]
struct FastInput {
    slot: usize,
    conn: String,
    plan: MemPlan,
}

#[derive(Clone, Debug)]
struct FastGather {
    slot: usize,
    reg: u32,
    /// The gathered register is boolean-classed; convert with
    /// [`Scalar::as_bool`]'s inverse convention (`true` → `1.0`).
    from_bool: bool,
}

#[derive(Clone, Debug)]
struct FastOut {
    slot: usize,
    plan: MemPlan,
}

/// Monomorphic f64 specialization of one tasklet. `lanes`,
/// `n_conn_slots` and `n_out_slots` are shared with the owning
/// [`TaskletPlan`].
#[derive(Clone, Debug)]
struct FastTasklet {
    conn_regs: Vec<u32>,
    inputs: Vec<FastInput>,
    code: Vec<FInsn>,
    n_regs: usize,
    gather: Vec<FastGather>,
    out_writes: Vec<FastOut>,
    /// Containers that must be live with dtype `F64` at runtime for the
    /// fast path to be semantically equal to the generic one; any failed
    /// guard falls back to the generic interpreter for the whole node.
    guards: Vec<DataId>,
}

/// Static class of a value in the fast-path type inference: float-typed
/// (`F64`), integer-typed (`I64`/`I32` — storable as `f64` because
/// eligibility forbids integer *operations*), or boolean.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FCls {
    Float,
    Int,
    Bool,
}

#[derive(Clone, Debug)]
enum InputPlan {
    Fail(ExecError),
    Read {
        slot: usize,
        conn: String,
        plan: MemPlan,
    },
}

#[derive(Clone, Debug)]
enum GatherSpec {
    Push { slot: usize, reg: u32 },
    Fail(ExecError),
}

#[derive(Clone, Debug)]
enum OutWrite {
    Fail(ExecError),
    Write { slot: usize, plan: MemPlan },
}

/// Compiled map scope.
#[derive(Clone, Debug)]
struct MapPlan {
    cover_loc: u64,
    /// Human-readable scope label (`map[i,j]`) for fusion introspection.
    label: String,
    params: Vec<SymId>,
    ranges: Vec<RangePlan>,
    body: BlockPlan,
    /// Whole-scope fused loop kernel, when the body is a straight-line
    /// chain of f64-specialized tasklets with affine memlets (see
    /// [`fuse_map`]). The generic plan above stays the complete fallback:
    /// the kernel only runs when a runtime precheck proves it cannot
    /// diverge from per-element execution.
    fused: Option<Box<FusedKernel>>,
    /// Why the scope did not fuse (compile-time eligibility), for
    /// [`Program::tasklet_stats`] introspection.
    fuse_reason: Option<FuseReject>,
}

/// One instruction of a fused kernel body: the tasklets' [`FInsn`] code
/// with map-parameter loads turned into lane-indexed parameter reads and
/// jump targets rebased into the concatenated stream. Select-free bodies
/// additionally drop the statement markers (nothing records per-statement
/// coverage) and run lane-chunked; bodies with control flow keep them and
/// run the scalar per-element loop (see [`FusedKernel::has_select`]).
#[derive(Clone, Debug)]
pub(crate) enum FKInsn {
    ConstF {
        dst: u32,
        val: f64,
    },
    ConstB {
        dst: u32,
        val: bool,
    },
    MovF {
        dst: u32,
        src: u32,
    },
    MovB {
        dst: u32,
        src: u32,
    },
    /// Outer (non-parameter) symbol: constant across the whole kernel;
    /// the precheck guarantees it is bound.
    LoadSymF {
        dst: u32,
        sym: SymId,
    },
    /// Map parameter of dimension `dim`: varies per lane on the innermost
    /// dimension, broadcast otherwise.
    LoadParamF {
        dst: u32,
        dim: u32,
    },
    BinF {
        op: BinOp,
        dst: u32,
        a: u32,
        b: u32,
    },
    UnF {
        op: UnOp,
        dst: u32,
        a: u32,
    },
    CmpF {
        op: CmpOp,
        dst: u32,
        a: u32,
        b: u32,
    },
    NotB {
        dst: u32,
        a: u32,
    },
    AndB {
        dst: u32,
        a: u32,
        b: u32,
    },
    OrB {
        dst: u32,
        a: u32,
        b: u32,
    },
    BoolFromF {
        reg: u32,
    },
    /// `rf[dst] = rb[src] as u8 as f64` — the gather conversion, used to
    /// forward a bool-classed intermediate to the next tasklet's float
    /// connector register exactly as a store + reload would.
    FloatFromB {
        dst: u32,
        src: u32,
    },
    /// Statement marker (select-mode only): sets the coverage site,
    /// resets the select counter — mirrors [`FInsn::Stmt`].
    Stmt {
        site: u64,
    },
    /// Select-condition coverage (select-mode only): bumps the select
    /// counter and records `[site, sel, cond]` — mirrors
    /// [`FInsn::CoverSel`].
    CoverSel {
        cond: u32,
    },
    JumpIfFalse {
        cond: u32,
        target: u32,
    },
    Jump {
        target: u32,
    },
    /// Tasklet-entry coverage marker. Coverage is *edge* coverage
    /// (consecutive locations pair up), so when a kernel records more
    /// than one location per element — pipelines, select sites — the
    /// records must interleave exactly as the per-element engine's do.
    /// The scalar body loop executes this once per element (on the
    /// first lane); the chunked loop ignores it and the caller batches
    /// instead, which is order-equivalent only for the single-location
    /// kernels the chunked loop is limited to.
    Cover {
        loc: u64,
    },
}

/// A variable occurring in a fused access's affine subscript.
#[derive(Clone, Copy, Debug, PartialEq)]
enum FusedVar {
    /// Plain constant term.
    None,
    /// Map parameter of dimension `d` — its value range over the
    /// iteration box is known once the ranges are evaluated.
    Param(usize),
    /// Outer symbol — a single runtime value.
    Outer(SymId),
}

/// One atom of a fused affine subscript, mirroring [`AffTerm`] (same
/// left-to-right checked evaluation the interval analysis must prove
/// error-free).
#[derive(Clone, Debug, PartialEq)]
struct FusedTerm {
    sub: bool,
    coeff: i64,
    var: FusedVar,
}

/// An affine index expression of a fused access, with symbols classified
/// against the map's parameters.
#[derive(Clone, Debug, PartialEq)]
struct FusedIdx {
    terms: Vec<FusedTerm>,
}

/// The ranged half of a fused subscript dimension: the end and step
/// expressions of a `start:end:step` subset dimension. The precheck
/// proves the resulting length is uniform over the iteration box (the
/// end's per-parameter coefficients equal the start's) and the step is a
/// positive, parameter-independent value.
#[derive(Clone, Debug, PartialEq)]
struct FusedSpan {
    end: FusedIdx,
    step: FusedIdx,
}

/// One dimension of a fused subscript: a point index (`span: None`,
/// single-index memlets) or a range (`span: Some`, lane memlets).
#[derive(Clone, Debug, PartialEq)]
struct FusedDim {
    start: FusedIdx,
    span: Option<FusedSpan>,
}

/// One memlet access of a fused kernel: container plus one affine
/// dimension per array dimension, and the end-expressions that must be
/// proven error-free (the `Eval` variants of [`EndCheck`]).
#[derive(Clone, Debug)]
pub(crate) struct FusedAccess {
    data: DataId,
    dims: Vec<FusedDim>,
    /// End expressions evaluated for errors only in the generic engine;
    /// the precheck proves they cannot error anywhere in the box.
    checks: Vec<FusedIdx>,
    /// Output WCR (always `None` for inputs).
    pub(crate) wcr: Option<Wcr>,
}

impl FusedAccess {
    /// Every dimension addresses a single point (no lane range). In a
    /// `lanes > 1` kernel such a read has volume 1 at every runtime
    /// shape — the packed JIT broadcasts its value across the lanes.
    pub(crate) fn is_pointwise(&self) -> bool {
        self.dims.iter().all(|d| d.span.is_none())
    }
}

/// Structural subset equality of two fused accesses — same container and
/// textually identical dimension/check expressions, so both denote the
/// same element set at every point of the iteration box. The test that
/// lets a pipeline read of an intermediate ride the writer's registers.
fn same_subset(a: &FusedAccess, b: &FusedAccess) -> bool {
    a.data.idx() == b.data.idx() && a.dims == b.dims && a.checks == b.checks
}

/// A whole map scope collapsed into a strength-reduced loop kernel.
///
/// At runtime the kernel first *prepares*: it evaluates the map ranges,
/// resolves every symbol the body reads, and runs an exact interval
/// analysis of every affine subscript over the concrete iteration box.
/// Only when that analysis proves that no out-of-bounds access, no i64
/// overflow, no unbound symbol and no step-budget trip can occur anywhere
/// in the box does the kernel run — hoisted base offsets, per-dimension
/// linear strides, lane-chunked inner loops. Any doubt falls back to the
/// generic per-element path, which reproduces errors (and their exact
/// ordering, partial writes and step counts) by construction.
#[derive(Clone, Debug)]
pub(crate) struct FusedKernel {
    /// One coverage location per body tasklet (in execution order), each
    /// recorded once per element exactly as the generic engine records it.
    cover_locs: Vec<u64>,
    /// The body tasklets' common lane width. When `> 1`, the kernel
    /// appends a synthetic innermost `0..lanes` dimension to the
    /// iteration box so the existing odometer/stride machinery iterates
    /// lanes without any new code paths.
    pub(crate) lanes: usize,
    /// Whether the body contains select control flow: if so the kernel
    /// runs the scalar per-element loop (which records per-select branch
    /// coverage bit-identically to the generic engine); otherwise the
    /// lane-chunked loop. The JIT lowerer reads this to pick packed vs
    /// unrolled-scalar lane emission.
    pub(crate) has_select: bool,
    /// External reads, in tasklet-then-memlet order.
    pub(crate) inputs: Vec<FusedAccess>,
    /// Destination register per input, aligned with `inputs`; `None` when
    /// a later input overwrites the same connector slot (the read still
    /// happens for bounds/step parity, the value is dead).
    pub(crate) in_regs: Vec<Option<u32>>,
    /// Pipeline-internal reads: for each, the index of the fused output
    /// whose write it aliases (proven byte-identical subset). The value
    /// flows through registers; only the read's step accounting remains.
    chained: Vec<usize>,
    pub(crate) outputs: Vec<FusedAccess>,
    /// `(source register, gathered from the bool file)` per output.
    pub(crate) out_regs: Vec<(u32, bool)>,
    pub(crate) code: Vec<FKInsn>,
    pub(crate) n_regs: usize,
    /// Containers that must be live with dtype `F64` (same contract as
    /// [`FastTasklet::guards`]).
    guards: Vec<DataId>,
    /// Process-unique key of this kernel's native code in the shared
    /// [`code cache`](crate::jit::cache). Clones (and cached `Program`s)
    /// share the key, so warm campaigns re-use the blob.
    pub(crate) jit_key: u64,
    /// Static native-lowering eligibility: the frame layout when every
    /// instruction can be emitted bit-exactly, else the rejection reason
    /// (see [`JitReject`]). Filled in by [`fuse_map`]'s caller.
    pub(crate) jit: Result<crate::jit::lower::JitLayout, JitReject>,
}

/// Fixed lane width of the fused inner loops: wide enough for the
/// compiler to autovectorize the per-op lane loops, small enough that the
/// scalar tail stays cheap on short rows.
const LANES: usize = 8;

/// Outcome of the fused-kernel runtime precheck.
enum FusedReady {
    /// Safe to run; carries the map element count (lanes excluded, for
    /// per-element coverage) and the exact interpreter-step total the
    /// generic path would account.
    Run { elems: u64, ticks: u64 },
    /// The iteration box is empty: the map is a no-op in both engines.
    ZeroTrip,
    /// Not provably safe — take the generic per-element path.
    Fallback,
}

/// Compiled library node.
#[derive(Clone, Debug)]
struct LibraryPlan {
    name: String,
    cover_loc: u64,
    op: LibraryOp,
    inputs: Vec<LibInput>,
    n_slots: usize,
    /// Input-connector slots in the order the operation consumes them
    /// (`A`, `B` for MatMul; `in` otherwise), or the "missing input
    /// connector" error.
    args: Vec<Result<usize, ExecError>>,
    /// Data container of the first incoming memlet (dtype source for the
    /// simulated collective's send buffer).
    first_in_data: Option<DataId>,
    out_writes: Vec<LibOutWrite>,
}

#[derive(Clone, Debug)]
enum LibInput {
    Fail(ExecError),
    Read { slot: usize, plan: MemPlan },
}

#[derive(Clone, Debug)]
enum LibOutWrite {
    Fail(ExecError),
    Write(MemPlan),
}

/// One step of a compiled dataflow block, in topological order.
#[derive(Clone, Debug)]
enum Step {
    Access(DataId),
    Tasklet(TaskletPlan),
    Map(MapPlan),
    Library(LibraryPlan),
}

/// A compiled dataflow graph (state body or map body).
#[derive(Clone, Debug, Default)]
struct BlockPlan {
    /// Structural defect discovered at compile time but — for parity with
    /// the tree-walk engine — raised only when the block actually executes.
    error: Option<ExecError>,
    steps: Vec<Step>,
}

/// Compiled declared container.
#[derive(Clone, Debug)]
struct ArrayPlan {
    data: DataId,
    dtype: DType,
    storage: Storage,
    shape: Vec<IdxCode>,
}

/// Compiled state of the state machine.
#[derive(Clone, Debug)]
struct StatePlan {
    /// `location_id([0x57A7E, state_id])`: both the coverage location and
    /// the parent site of the state's dataflow nodes.
    site: u64,
    body: BlockPlan,
    edges: Vec<EdgePlan>,
}

#[derive(Clone, Debug)]
struct EdgePlan {
    cond: CondPlan,
    assigns: Vec<(SymId, SymCode)>,
    cover_loc: u64,
    dst: usize,
}

/// A compiled, immutable, shareable (`Sync`) program. Compile once with
/// [`Program::compile`], then execute many times — either through the
/// convenience [`Program::run`]/[`Program::run_with`] (which keep the
/// [`ExecState`] in/out contract of the tree-walk interpreter) or through
/// a reusable [`Executor`] for zero-allocation trial loops.
#[derive(Clone, Debug)]
pub struct Program {
    name: String,
    /// Process-unique identity of this compilation (clones share it), the
    /// key of the per-worker executor-arena cache.
    id: u64,
    data: Interner,
    syms: Interner,
    arrays: Vec<ArrayPlan>,
    states: Vec<StatePlan>,
    start: usize,
}

/// Knobs of [`Program::compile_with_options`].
#[derive(Clone, Copy, Debug)]
pub struct CompileOptions {
    /// Emit dtype-monomorphic f64 fast paths for eligible tasklets (on by
    /// default). The generic bytecode is always compiled too and remains
    /// the fallback whenever a runtime dtype guard fails; disabling this
    /// only exists for benchmarking the specialization win and for
    /// differentially testing the generic interpreter.
    pub specialize_f64: bool,
    /// Collapse eligible map scopes into fused loop kernels (on by
    /// default; implies nothing unless `specialize_f64` also holds, since
    /// fusion requires the f64-specialized tasklet body). Disabling this
    /// reproduces the PR 3 per-element fast path, which the
    /// `fused_kernels` bench compares against.
    pub fuse_maps: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            specialize_f64: true,
            fuse_maps: true,
        }
    }
}

/// Per-tasklet / per-map-scope compilation statistics, for benches and
/// for workload authors asking why a cutout did not fuse.
#[derive(Clone, Debug)]
pub struct TaskletStats {
    /// Total tasklets across all blocks.
    pub tasklets: usize,
    /// Tasklets lowered to the monomorphic f64 fast path.
    pub specialized: usize,
    /// Map scopes collapsed into fused loop kernels.
    pub fused_maps: usize,
    /// Fused kernels additionally eligible for the native JIT tier.
    pub jit_maps: usize,
    /// One entry per map scope, in block order.
    pub maps: Vec<MapFusionInfo>,
}

/// Fusion eligibility of one map scope.
#[derive(Clone, Debug)]
pub struct MapFusionInfo {
    /// Scope label, e.g. `map[i,j]`.
    pub label: String,
    /// Whether the scope compiled to a fused kernel.
    pub fused: bool,
    /// Compile-time ineligibility reason when it did not (the stable
    /// message of a [`FuseReject`]).
    pub reason: Option<&'static str>,
    /// Whether the fused kernel is statically eligible for the native
    /// JIT tier.
    pub jit: bool,
    /// Static JIT-ineligibility reason when it is not (the stable
    /// message of a [`JitReject`]; unfused maps report
    /// [`JitReject::NotFused`]).
    pub jit_reason: Option<&'static str>,
}

/// Why a map scope did not compile to a fused kernel. Static data — no
/// per-compile allocation — with a stable human-readable message, so
/// campaign reports can aggregate eligibility counts per reason.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FuseReject {
    /// `CompileOptions::fuse_maps` was off.
    Disabled,
    /// The body has a structural error (raised at runtime instead).
    BodyError,
    /// The map has no parameters.
    NoParams,
    /// A range bound mentions one of the map's own parameters.
    ParamRange,
    /// A nested map inside the body.
    NestedMap,
    /// A library node inside the body.
    Library,
    /// No tasklet in the body.
    NoTasklet,
    /// A body tasklet is not on the f64 fast path.
    NotSpecialized,
    /// Body tasklets disagree on their lane width.
    MixedLanes,
    /// A multi-tasklet pipeline with `lanes > 1` (per-lane register
    /// forwarding interleaved with per-element coverage is not modeled).
    LanePipeline,
    /// A `lanes > 1` tasklet writes through a single-index memlet (its
    /// volume can never match the lane count; the generic path raises
    /// the mismatch).
    LaneVolume,
    /// A memlet subscript is not affine.
    NonAffine,
    /// A pipeline re-reads an intermediate through a different subset
    /// than the one its writer used.
    ChainMismatch,
    /// A pipeline intermediate is written with a WCR combiner (readers
    /// would observe the accumulation, not the register value).
    ChainWcr,
    /// An output connector's value is never gathered.
    NeverGathered,
    /// Two gathers feed one output connector.
    DupConnector,
    /// A container is both read externally and written in the scope.
    Overlap,
    /// Two outputs target one container.
    DupWrites,
    /// An access node in the body belongs to no body memlet.
    Dangling,
}

impl FuseReject {
    /// Stable human-readable message (also the aggregation key in
    /// campaign reports).
    pub fn message(self) -> &'static str {
        match self {
            FuseReject::Disabled => "map fusion disabled",
            FuseReject::BodyError => "map body has a structural error",
            FuseReject::NoParams => "map has no parameters",
            FuseReject::ParamRange => "map range depends on a map parameter",
            FuseReject::NestedMap => "nested map in body",
            FuseReject::Library => "library node in body",
            FuseReject::NoTasklet => "no tasklet in map body",
            FuseReject::NotSpecialized => "tasklet is not f64-specialized",
            FuseReject::MixedLanes => "pipeline tasklets have mixed lane widths",
            FuseReject::LanePipeline => "vectorized multi-tasklet pipeline",
            FuseReject::LaneVolume => "vectorized tasklet writes a single-index memlet",
            FuseReject::NonAffine => "non-affine memlet subscript",
            FuseReject::ChainMismatch => "pipeline re-reads an intermediate via a different subset",
            FuseReject::ChainWcr => "pipeline intermediate is written with WCR",
            FuseReject::NeverGathered => "output slot never gathered",
            FuseReject::DupConnector => "duplicate output connector",
            FuseReject::Overlap => "read/write overlap on one container",
            FuseReject::DupWrites => "two outputs target one container",
            FuseReject::Dangling => "dangling access node in map body",
        }
    }
}

impl std::fmt::Display for FuseReject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.message())
    }
}

impl Program {
    /// Lowers an SDFG into a compiled program. Compilation never fails:
    /// structural defects (cyclic dataflow, missing connectors, never-
    /// assigned outputs) are lowered into steps that raise the exact
    /// runtime error the tree-walk interpreter would raise, at the same
    /// execution point — a block that never runs never errors.
    pub fn compile(sdfg: &Sdfg) -> Program {
        Self::compile_with_options(sdfg, &CompileOptions::default())
    }

    /// [`Program::compile`] with explicit [`CompileOptions`].
    pub fn compile_with_options(sdfg: &Sdfg, opts: &CompileOptions) -> Program {
        let mut c = Compiler {
            sdfg,
            data: Interner::default(),
            syms: Interner::default(),
            specialize: opts.specialize_f64,
            fuse: opts.fuse_maps,
        };
        // The collective runtime reads `rank` even when unbound.
        c.syms.intern("rank");

        let arrays: Vec<ArrayPlan> = sdfg
            .arrays
            .iter()
            .map(|(name, desc)| ArrayPlan {
                data: DataId(c.data.intern(name)),
                dtype: desc.dtype,
                storage: desc.storage,
                shape: desc.shape.iter().map(|e| c.idx(e)).collect(),
            })
            .collect();

        let ids: Vec<fuzzyflow_ir::StateId> = sdfg.states.node_ids().collect();
        let dense_of = |id: fuzzyflow_ir::StateId| -> usize {
            ids.iter().position(|&x| x == id).expect("state id known")
        };
        let states: Vec<StatePlan> = ids
            .iter()
            .map(|&id| {
                let site = location_id(&[0x57A7E, id.0 as u64]);
                let body = c.block(&sdfg.state(id).df, site);
                let edges = sdfg
                    .states
                    .out_edge_ids(id)
                    .iter()
                    .map(|&e| {
                        let edge = sdfg.states.edge(e);
                        EdgePlan {
                            cond: c.cond(&edge.condition),
                            assigns: edge
                                .assignments
                                .iter()
                                .map(|(s, v)| {
                                    let code = c.code(v);
                                    (SymId(c.syms.intern(s)), code)
                                })
                                .collect(),
                            cover_loc: location_id(&[0xED6E, e.0 as u64]),
                            dst: dense_of(sdfg.states.dst(e)),
                        }
                    })
                    .collect();
                StatePlan { site, body, edges }
            })
            .collect();

        static NEXT_PROGRAM_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        Program {
            name: sdfg.name.clone(),
            id: NEXT_PROGRAM_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            data: c.data,
            syms: c.syms,
            arrays,
            states,
            start: dense_of(sdfg.start),
        }
    }

    /// Program name (copied from the source SDFG).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Process-unique compilation identity (clones share it). Stable key
    /// for caches of per-program execution state, e.g. the per-worker
    /// executor-arena cache in the differential tester.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Compilation statistics: tasklet specialization counts plus, per
    /// map scope, whether it fused into a loop kernel and why not
    /// otherwise.
    pub fn tasklet_stats(&self) -> TaskletStats {
        fn walk(b: &BlockPlan, s: &mut TaskletStats) {
            for step in &b.steps {
                match step {
                    Step::Tasklet(tp) => {
                        s.tasklets += 1;
                        if tp.fast.is_some() {
                            s.specialized += 1;
                        }
                    }
                    Step::Map(mp) => {
                        if mp.fused.is_some() {
                            s.fused_maps += 1;
                        }
                        let jit_reason = match &mp.fused {
                            None => Some(JitReject::NotFused.message()),
                            Some(fk) => fk.jit.as_ref().err().map(|r| r.message()),
                        };
                        if jit_reason.is_none() {
                            s.jit_maps += 1;
                        }
                        s.maps.push(MapFusionInfo {
                            label: mp.label.clone(),
                            fused: mp.fused.is_some(),
                            reason: mp.fuse_reason.map(FuseReject::message),
                            jit: jit_reason.is_none(),
                            jit_reason,
                        });
                        walk(&mp.body, s);
                    }
                    _ => {}
                }
            }
        }
        let mut s = TaskletStats {
            tasklets: 0,
            specialized: 0,
            fused_maps: 0,
            jit_maps: 0,
            maps: Vec::new(),
        };
        for st in &self.states {
            walk(&st.body, &mut s);
        }
        s
    }

    /// Creates a reusable executor for this program.
    pub fn executor(&self) -> Executor<'_> {
        Executor::new(self)
    }

    /// Creates an executor over a recycled [`ExecutorArena`] — warm
    /// buffers from a previous executor (of this or any other program)
    /// are reused instead of reallocated.
    pub fn executor_with(&self, arena: ExecutorArena) -> Executor<'_> {
        Executor::with_arena(self, arena)
    }

    /// Compile-once equivalent of [`crate::run`]: executes against the
    /// given state in place.
    pub fn run(&self, state: &mut ExecState) -> Result<(), ExecError> {
        self.run_with(state, &ExecOptions::default(), None, None)
    }

    /// Compile-once equivalent of [`crate::run_with`].
    pub fn run_with(
        &self,
        state: &mut ExecState,
        opts: &ExecOptions,
        comm: Option<&dyn CommHandler>,
        cov: Option<&mut CoverageMap>,
    ) -> Result<(), ExecError> {
        self.executor().run_in_place(state, opts, comm, cov)
    }

    fn sym_id(&self, name: &str) -> Option<SymId> {
        self.syms.get(name).map(SymId)
    }

    fn data_id(&self, name: &str) -> Option<DataId> {
        self.data.get(name).map(DataId)
    }
}

struct Compiler<'s> {
    sdfg: &'s Sdfg,
    data: Interner,
    syms: Interner,
    specialize: bool,
    fuse: bool,
}

impl Compiler<'_> {
    /// Compiles a symbolic expression into postfix code with interned ids.
    fn code(&mut self, e: &SymExpr) -> SymCode {
        let mut ops = Vec::new();
        self.emit(e, &mut ops);
        SymCode { ops }
    }

    fn emit(&mut self, e: &SymExpr, ops: &mut Vec<SymOp>) {
        match e {
            SymExpr::Int(v) => ops.push(SymOp::Push(*v)),
            SymExpr::Sym(s) => ops.push(SymOp::Load(SymId(self.syms.intern(s)))),
            SymExpr::Add(a, b) => {
                self.emit(a, ops);
                self.emit(b, ops);
                ops.push(SymOp::Add);
            }
            SymExpr::Sub(a, b) => {
                self.emit(a, ops);
                self.emit(b, ops);
                ops.push(SymOp::Sub);
            }
            SymExpr::Mul(a, b) => {
                self.emit(a, ops);
                self.emit(b, ops);
                ops.push(SymOp::Mul);
            }
            SymExpr::Div(a, b) => {
                self.emit(b, ops);
                ops.push(SymOp::EnsureNonZero);
                self.emit(a, ops);
                ops.push(SymOp::DivE);
            }
            SymExpr::Mod(a, b) => {
                self.emit(b, ops);
                ops.push(SymOp::EnsureNonZero);
                self.emit(a, ops);
                ops.push(SymOp::ModE);
            }
            SymExpr::Min(a, b) => {
                self.emit(a, ops);
                self.emit(b, ops);
                ops.push(SymOp::Min);
            }
            SymExpr::Max(a, b) => {
                self.emit(a, ops);
                self.emit(b, ops);
                ops.push(SymOp::Max);
            }
            SymExpr::Neg(a) => {
                self.emit(a, ops);
                ops.push(SymOp::Neg);
            }
        }
    }

    /// Classifies an index expression: constant, bare symbol, affine form,
    /// or compiled-code fallback.
    fn idx(&mut self, e: &SymExpr) -> IdxCode {
        if e.is_constant() {
            if let Ok(v) = e.eval(&fuzzyflow_sym::Bindings::new()) {
                return IdxCode::Const(v);
            }
            // Constant but erroring (overflow / division by zero): keep
            // the compiled form so the runtime error matches.
            return IdxCode::Code(self.code(e));
        }
        if let SymExpr::Sym(s) = e {
            return IdxCode::Sym(SymId(self.syms.intern(s)));
        }
        if let Some(terms) = self.affine(e) {
            return IdxCode::Affine(terms);
        }
        IdxCode::Code(self.code(e))
    }

    /// Strict structural recognizer for parity-exact affine chains:
    /// `atom_0 ± atom_1 ± … ± atom_k` (left-associated), where each atom
    /// is `Int`, `Sym` or `Int*Sym`/`Sym*Int`. No algebraic rewriting is
    /// performed — evaluating the atoms left to right replays the tree
    /// evaluator's checked-operation sequence exactly, so overflow and
    /// unbound errors cannot diverge. Anything else returns `None` and
    /// takes the compiled-code path.
    fn affine(&mut self, e: &SymExpr) -> Option<Vec<AffTerm>> {
        match e {
            SymExpr::Add(a, b) => {
                let mut terms = self.affine(a)?;
                terms.push(self.affine_atom(b, false)?);
                Some(terms)
            }
            SymExpr::Sub(a, b) => {
                let mut terms = self.affine(a)?;
                terms.push(self.affine_atom(b, true)?);
                Some(terms)
            }
            leaf => Some(vec![self.affine_atom(leaf, false)?]),
        }
    }

    fn affine_atom(&mut self, e: &SymExpr, sub: bool) -> Option<AffTerm> {
        match e {
            SymExpr::Int(c) => Some(AffTerm {
                sub,
                sym: None,
                coeff: *c,
            }),
            SymExpr::Sym(s) => Some(AffTerm {
                sub,
                sym: Some(SymId(self.syms.intern(s))),
                coeff: 1,
            }),
            SymExpr::Mul(x, y) => match (x.as_ref(), y.as_ref()) {
                (SymExpr::Int(c), SymExpr::Sym(s)) | (SymExpr::Sym(s), SymExpr::Int(c)) => {
                    Some(AffTerm {
                        sub,
                        sym: Some(SymId(self.syms.intern(s))),
                        coeff: *c,
                    })
                }
                _ => None,
            },
            _ => None,
        }
    }

    fn cond(&mut self, c: &CondExpr) -> CondPlan {
        match c {
            CondExpr::True => CondPlan::True,
            CondExpr::Cmp(op, a, b) => CondPlan::Cmp(*op, self.idx(a), self.idx(b)),
            CondExpr::Not(x) => CondPlan::Not(Box::new(self.cond(x))),
            CondExpr::And(l, r) => CondPlan::And(Box::new(self.cond(l)), Box::new(self.cond(r))),
            CondExpr::Or(l, r) => CondPlan::Or(Box::new(self.cond(l)), Box::new(self.cond(r))),
        }
    }

    fn memlet(&mut self, m: &Memlet) -> MemPlan {
        let data = DataId(self.data.intern(&m.data));
        let dims = m.subset.dims();
        let single = dims
            .iter()
            .all(|d| d.is_index() && d.step.as_int() == Some(1));
        let kind = if single {
            MemKind::Single(
                dims.iter()
                    .map(|d| {
                        let end = match &d.end {
                            SymExpr::Add(a, b) if **a == d.start && **b == SymExpr::Int(1) => {
                                EndCheck::IncOfStart
                            }
                            other => EndCheck::Eval(self.idx(other)),
                        };
                        (self.idx(&d.start), end)
                    })
                    .collect(),
            )
        } else {
            MemKind::Ranges(
                dims.iter()
                    .map(|d| RangePlan {
                        start: self.idx(&d.start),
                        end: self.idx(&d.end),
                        step: self.idx(&d.step),
                    })
                    .collect(),
            )
        };
        MemPlan {
            data,
            wcr: m.wcr,
            kind,
        }
    }

    fn block(&mut self, df: &fuzzyflow_ir::Dataflow, site: u64) -> BlockPlan {
        let order = match fuzzyflow_graph::topological_sort(&df.graph) {
            Ok(o) => o,
            Err(e) => {
                return BlockPlan {
                    error: Some(ExecError::Malformed(format!("cyclic dataflow ({e})"))),
                    steps: Vec::new(),
                }
            }
        };
        let mut steps = Vec::with_capacity(order.len());
        for n in order {
            let node_site = location_id(&[site, n.0 as u64]);
            match df.graph.node(n) {
                DfNode::Access(name) => steps.push(Step::Access(DataId(self.data.intern(name)))),
                DfNode::Tasklet(t) => steps.push(Step::Tasklet(self.tasklet(df, n, t, node_site))),
                DfNode::Map(m) => {
                    let mut plan = MapPlan {
                        cover_loc: location_id(&[node_site]),
                        label: format!("map[{}]", m.params.join(",")),
                        params: m
                            .params
                            .iter()
                            .map(|p| SymId(self.syms.intern(p)))
                            .collect(),
                        ranges: m
                            .ranges
                            .iter()
                            .map(|r| RangePlan {
                                start: self.idx(&r.start),
                                end: self.idx(&r.end),
                                step: self.idx(&r.step),
                            })
                            .collect(),
                        body: self.block(&m.body, node_site),
                        fused: None,
                        fuse_reason: None,
                    };
                    if self.fuse {
                        match fuse_map(&plan) {
                            Ok(fk) => plan.fused = Some(Box::new(fk)),
                            Err(reason) => plan.fuse_reason = Some(reason),
                        }
                    } else {
                        plan.fuse_reason = Some(FuseReject::Disabled);
                    }
                    steps.push(Step::Map(plan));
                }
                DfNode::Library(l) => steps.push(Step::Library(self.library(df, n, l, node_site))),
            }
        }
        BlockPlan { error: None, steps }
    }

    fn tasklet(
        &mut self,
        df: &fuzzyflow_ir::Dataflow,
        n: fuzzyflow_graph::NodeId,
        t: &Tasklet,
        node_site: u64,
    ) -> TaskletPlan {
        let lanes = t.lanes.max(1) as usize;

        // Input connector slots, in first-occurrence order; duplicate
        // connectors share a slot (the later read overwrites, as the
        // tree-walk engine's BTreeMap insert does).
        let mut conn_slots: Vec<String> = Vec::new();
        let mut inputs = Vec::new();
        for (_, m) in df.in_memlets(n) {
            match &m.dst_conn {
                None => inputs.push(InputPlan::Fail(ExecError::Malformed(format!(
                    "input memlet of tasklet '{}' has no connector",
                    t.name
                )))),
                Some(conn) => {
                    let slot = match conn_slots.iter().position(|c| c == conn) {
                        Some(i) => i,
                        None => {
                            conn_slots.push(conn.clone());
                            conn_slots.len() - 1
                        }
                    };
                    inputs.push(InputPlan::Read {
                        slot,
                        conn: conn.clone(),
                        plan: self.memlet(m),
                    });
                }
            }
        }

        // Named registers: one per connector slot, one per distinct
        // statement destination not already a connector.
        let mut reg_of: BTreeMap<String, u32> = BTreeMap::new();
        let mut conn_regs = Vec::with_capacity(conn_slots.len());
        for (i, conn) in conn_slots.iter().enumerate() {
            reg_of.insert(conn.clone(), i as u32);
            conn_regs.push(i as u32);
        }
        let mut next_reg = conn_slots.len() as u32;
        for stmt in &t.code {
            reg_of.entry(stmt.dst.clone()).or_insert_with(|| {
                let r = next_reg;
                next_reg += 1;
                r
            });
        }
        let named_count = next_reg;

        // Statements: the defined-name set grows statically exactly as the
        // tree-walk scope does per lane, so register reads can never see a
        // previous lane's value.
        let mut defined: Vec<&str> = conn_slots.iter().map(|s| s.as_str()).collect();
        let mut code = Vec::new();
        let mut max_depth = 0usize;
        for (si, stmt) in t.code.iter().enumerate() {
            code.push(Insn::Stmt {
                site: location_id(&[node_site, si as u64]),
            });
            let depth = self.expr(&stmt.value, &mut code, named_count, 0, &defined, &reg_of);
            max_depth = max_depth.max(depth);
            code.push(Insn::Mov {
                dst: reg_of[&stmt.dst],
                src: named_count,
            });
            if !defined.contains(&stmt.dst.as_str()) {
                defined.push(&stmt.dst);
            }
        }

        // Output gather specs, one per declared output in order; a missing
        // assignment errors after the first lane's statements run, exactly
        // where the tree-walk engine raises it.
        let mut out_names: Vec<&str> = Vec::new();
        let gather: Vec<GatherSpec> = t
            .outputs
            .iter()
            .map(|out| {
                if defined.contains(&out.as_str()) {
                    let slot = match out_names.iter().position(|o| o == out) {
                        Some(i) => i,
                        None => {
                            out_names.push(out);
                            out_names.len() - 1
                        }
                    };
                    GatherSpec::Push {
                        slot,
                        reg: reg_of[out.as_str()],
                    }
                } else {
                    GatherSpec::Fail(ExecError::Malformed(format!(
                        "tasklet '{}' never assigns output connector '{out}'",
                        t.name
                    )))
                }
            })
            .collect();

        let out_writes: Vec<OutWrite> = df
            .out_memlets(n)
            .iter()
            .map(|(_, m)| match &m.src_conn {
                None => OutWrite::Fail(ExecError::Malformed(format!(
                    "output memlet of tasklet '{}' has no connector",
                    t.name
                ))),
                Some(conn) => match out_names.iter().position(|o| o == conn) {
                    Some(slot) => OutWrite::Write {
                        slot,
                        plan: self.memlet(m),
                    },
                    None => OutWrite::Fail(ExecError::UndefinedRef {
                        tasklet: t.name.clone(),
                        name: conn.clone(),
                    }),
                },
            })
            .collect();

        let mut plan = TaskletPlan {
            name: t.name.clone(),
            cover_loc: location_id(&[node_site]),
            lanes,
            n_conn_slots: conn_slots.len(),
            conn_regs,
            inputs,
            code,
            n_regs: (named_count as usize) + max_depth + 1,
            gather,
            n_out_slots: out_names.len(),
            out_writes,
            fast: None,
        };
        if self.specialize {
            plan.fast = self.specialize_f64(t, &plan, node_site).map(Box::new);
        }
        plan
    }

    /// Attempts the dtype-monomorphic f64 specialization of a tasklet.
    ///
    /// Eligibility is decided by static class inference over the tasklet
    /// body: every memlet must target a container declared `F64`, every
    /// plan must be error-free at compile time, and every operation must
    /// be one whose generic evaluation provably takes the float (or
    /// boolean) path — at least one float operand for arithmetic and
    /// comparisons, boolean operands (or float→bool coercion) for logic.
    /// Integer-typed values (symbols, integer literals) may flow through
    /// as `f64` because under these rules their one and only `as f64`
    /// conversion happens at the same abstract moment in both engines; an
    /// integer-*operated* expression (`i + 1` over two ints, which wraps)
    /// makes the tasklet ineligible and keeps it on the generic bytecode.
    fn specialize_f64(
        &mut self,
        t: &Tasklet,
        plan: &TaskletPlan,
        node_site: u64,
    ) -> Option<FastTasklet> {
        // Memlet eligibility: every input/output plan compiled cleanly
        // and targets a declared-F64 container.
        let mut guards: Vec<DataId> = Vec::new();
        let guard = |this: &Compiler<'_>, guards: &mut Vec<DataId>, data: DataId| -> bool {
            let name = &this.data.names[data.idx()];
            match this.sdfg.array(name) {
                Some(desc) if desc.dtype == DType::F64 => {
                    if !guards.iter().any(|g| g.idx() == data.idx()) {
                        guards.push(data);
                    }
                    true
                }
                _ => false,
            }
        };
        let mut inputs = Vec::with_capacity(plan.inputs.len());
        for ip in &plan.inputs {
            match ip {
                InputPlan::Fail(_) => return None,
                InputPlan::Read { slot, conn, plan } => {
                    if !guard(self, &mut guards, plan.data) {
                        return None;
                    }
                    inputs.push(FastInput {
                        slot: *slot,
                        conn: conn.clone(),
                        plan: plan.clone(),
                    });
                }
            }
        }
        let mut out_writes = Vec::with_capacity(plan.out_writes.len());
        for ow in &plan.out_writes {
            match ow {
                OutWrite::Fail(_) => return None,
                OutWrite::Write { slot, plan } => {
                    if !guard(self, &mut guards, plan.data) {
                        return None;
                    }
                    out_writes.push(FastOut {
                        slot: *slot,
                        plan: plan.clone(),
                    });
                }
            }
        }
        if plan.gather.iter().any(|g| matches!(g, GatherSpec::Fail(_))) {
            return None;
        }

        // Named registers: same layout as the generic bytecode (connector
        // slots first, then statement destinations in first-use order),
        // each with an inferred class.
        let mut conn_slots: Vec<String> = vec![String::new(); plan.n_conn_slots];
        for ip in &inputs {
            conn_slots[ip.slot].clone_from(&ip.conn);
        }
        let mut reg_of: BTreeMap<String, u32> = BTreeMap::new();
        let mut cls_of: BTreeMap<String, FCls> = BTreeMap::new();
        for (i, conn) in conn_slots.iter().enumerate() {
            reg_of.insert(conn.clone(), i as u32);
            cls_of.insert(conn.clone(), FCls::Float);
        }
        let mut next_reg = conn_slots.len() as u32;
        for stmt in &t.code {
            reg_of.entry(stmt.dst.clone()).or_insert_with(|| {
                let r = next_reg;
                next_reg += 1;
                r
            });
        }
        let named_count = next_reg;

        let mut defined: Vec<String> = conn_slots.clone();
        let mut code = Vec::new();
        let mut max_depth = 0usize;
        for (si, stmt) in t.code.iter().enumerate() {
            code.push(FInsn::Stmt {
                site: location_id(&[node_site, si as u64]),
            });
            let (depth, cls) = self.femit(
                &stmt.value,
                &mut code,
                named_count,
                0,
                &defined,
                &cls_of,
                &reg_of,
            )?;
            max_depth = max_depth.max(depth);
            let dst = reg_of[&stmt.dst];
            code.push(match cls {
                FCls::Bool => FInsn::MovB {
                    dst,
                    src: named_count,
                },
                _ => FInsn::MovF {
                    dst,
                    src: named_count,
                },
            });
            match cls_of.get(&stmt.dst) {
                None => {
                    cls_of.insert(stmt.dst.clone(), cls);
                }
                // A register re-assigned with a different class would need
                // the two register files to alias; keep it generic.
                Some(&prev) if prev != cls => return None,
                Some(_) => {}
            }
            if !defined.contains(&stmt.dst) {
                defined.push(stmt.dst.clone());
            }
        }

        // Gathers mirror the generic slot assignment; bool-classed
        // outputs convert at the gather, exactly where the generic
        // engine's `Scalar::as_f64` conversion happens (array store).
        let mut gather = Vec::with_capacity(plan.gather.len());
        for (g, out) in plan.gather.iter().zip(&t.outputs) {
            let GatherSpec::Push { slot, reg: _ } = g else {
                return None;
            };
            gather.push(FastGather {
                slot: *slot,
                reg: reg_of[out.as_str()],
                from_bool: cls_of.get(out.as_str()) == Some(&FCls::Bool),
            });
        }

        Some(FastTasklet {
            conn_regs: plan.conn_regs.clone(),
            inputs,
            code,
            n_regs: (named_count as usize) + max_depth + 1,
            gather,
            out_writes,
            guards,
        })
    }

    /// Emits fast-path instructions for a scalar expression; the result
    /// lands in register `base + depth` of the file selected by the
    /// returned class. Returns `(max scratch depth, class)` or `None`
    /// when the expression is ineligible.
    #[allow(clippy::too_many_arguments)]
    fn femit(
        &mut self,
        e: &fuzzyflow_ir::ScalarExpr,
        code: &mut Vec<FInsn>,
        base: u32,
        depth: u32,
        defined: &[String],
        cls_of: &BTreeMap<String, FCls>,
        reg_of: &BTreeMap<String, u32>,
    ) -> Option<(usize, FCls)> {
        use fuzzyflow_ir::ScalarExpr as E;
        let dst = base + depth;
        // Coerce the value in slot `reg` to the bool file, matching
        // `Scalar::as_bool` (see [`FInsn::BoolFromF`]).
        fn ensure_bool(code: &mut Vec<FInsn>, reg: u32, cls: FCls) {
            if cls != FCls::Bool {
                code.push(FInsn::BoolFromF { reg });
            }
        }
        match e {
            E::Const(c) => {
                let cls = match c {
                    Scalar::F64(v) => {
                        code.push(FInsn::ConstF { dst, val: *v });
                        FCls::Float
                    }
                    Scalar::I64(v) => {
                        code.push(FInsn::ConstF {
                            dst,
                            val: *v as f64,
                        });
                        FCls::Int
                    }
                    Scalar::I32(v) => {
                        code.push(FInsn::ConstF {
                            dst,
                            val: *v as f64,
                        });
                        FCls::Int
                    }
                    Scalar::Bool(v) => {
                        code.push(FInsn::ConstB { dst, val: *v });
                        FCls::Bool
                    }
                    // F32 would need dtype-preserving round trips.
                    Scalar::F32(_) => return None,
                };
                Some((depth as usize, cls))
            }
            E::Ref(name) => {
                if defined.iter().any(|d| d == name) {
                    let cls = cls_of[name.as_str()];
                    let src = reg_of[name.as_str()];
                    code.push(match cls {
                        FCls::Bool => FInsn::MovB { dst, src },
                        _ => FInsn::MovF { dst, src },
                    });
                    Some((depth as usize, cls))
                } else {
                    code.push(FInsn::LoadSymF {
                        dst,
                        sym: SymId(self.syms.intern(name)),
                    });
                    Some((depth as usize, FCls::Int))
                }
            }
            E::Bin(op, a, b) => {
                let (da, ca) = self.femit(a, code, base, depth, defined, cls_of, reg_of)?;
                let (db, cb) = self.femit(b, code, base, depth + 1, defined, cls_of, reg_of)?;
                let cls = match op {
                    BinOp::And | BinOp::Or => {
                        ensure_bool(code, dst, ca);
                        ensure_bool(code, dst + 1, cb);
                        code.push(match op {
                            BinOp::And => FInsn::AndB {
                                dst,
                                a: dst,
                                b: dst + 1,
                            },
                            _ => FInsn::OrB {
                                dst,
                                a: dst,
                                b: dst + 1,
                            },
                        });
                        FCls::Bool
                    }
                    // `Pow` always takes the float path; the others do so
                    // only with at least one float operand (two ints would
                    // be wrapping integer arithmetic — ineligible).
                    _ => {
                        if ca == FCls::Bool || cb == FCls::Bool {
                            return None;
                        }
                        if *op != BinOp::Pow && ca != FCls::Float && cb != FCls::Float {
                            return None;
                        }
                        code.push(FInsn::BinF {
                            op: *op,
                            dst,
                            a: dst,
                            b: dst + 1,
                        });
                        FCls::Float
                    }
                };
                Some((da.max(db), cls))
            }
            E::Cmp(op, a, b) => {
                let (da, ca) = self.femit(a, code, base, depth, defined, cls_of, reg_of)?;
                let (db, cb) = self.femit(b, code, base, depth + 1, defined, cls_of, reg_of)?;
                // Two integer operands would compare as `i64` in the
                // generic engine; the float compare is lossy past 2^53.
                if ca == FCls::Bool || cb == FCls::Bool {
                    return None;
                }
                if ca != FCls::Float && cb != FCls::Float {
                    return None;
                }
                code.push(FInsn::CmpF {
                    op: *op,
                    dst,
                    a: dst,
                    b: dst + 1,
                });
                Some((da.max(db), FCls::Bool))
            }
            E::Un(op, a) => {
                let (da, ca) = self.femit(a, code, base, depth, defined, cls_of, reg_of)?;
                match op {
                    UnOp::Not => {
                        ensure_bool(code, dst, ca);
                        code.push(FInsn::NotB { dst, a: dst });
                        Some((da, FCls::Bool))
                    }
                    UnOp::Neg | UnOp::Abs => {
                        // Integer neg/abs wrap in the generic engine.
                        if ca != FCls::Float {
                            return None;
                        }
                        code.push(FInsn::UnF {
                            op: *op,
                            dst,
                            a: dst,
                        });
                        Some((da, FCls::Float))
                    }
                    _ => {
                        // Math intrinsics always take the float path.
                        if ca == FCls::Bool {
                            return None;
                        }
                        code.push(FInsn::UnF {
                            op: *op,
                            dst,
                            a: dst,
                        });
                        Some((da, FCls::Float))
                    }
                }
            }
            E::Select(c, a, b) => {
                let (dc, cc) = self.femit(c, code, base, depth, defined, cls_of, reg_of)?;
                ensure_bool(code, dst, cc);
                code.push(FInsn::CoverSel { cond: dst });
                let jump_else = code.len();
                code.push(FInsn::JumpIfFalse {
                    cond: dst,
                    target: 0,
                });
                let (da, ca) = self.femit(a, code, base, depth, defined, cls_of, reg_of)?;
                let jump_end = code.len();
                code.push(FInsn::Jump { target: 0 });
                let else_at = code.len() as u32;
                let (db, cb) = self.femit(b, code, base, depth, defined, cls_of, reg_of)?;
                let end_at = code.len() as u32;
                if ca != cb {
                    return None;
                }
                if let FInsn::JumpIfFalse { target, .. } = &mut code[jump_else] {
                    *target = else_at;
                }
                if let FInsn::Jump { target } = &mut code[jump_end] {
                    *target = end_at;
                }
                Some((dc.max(da).max(db), ca))
            }
        }
    }

    /// Compiles a scalar expression; the result lands in scratch register
    /// `scratch_base + depth`. Returns the maximum scratch depth used.
    fn expr(
        &mut self,
        e: &fuzzyflow_ir::ScalarExpr,
        code: &mut Vec<Insn>,
        scratch_base: u32,
        depth: u32,
        defined: &[&str],
        reg_of: &BTreeMap<String, u32>,
    ) -> usize {
        use fuzzyflow_ir::ScalarExpr as E;
        let dst = scratch_base + depth;
        match e {
            E::Const(c) => {
                code.push(Insn::Const { dst, val: *c });
                depth as usize
            }
            E::Ref(name) => {
                if defined.contains(&name.as_str()) {
                    code.push(Insn::Mov {
                        dst,
                        src: reg_of[name.as_str()],
                    });
                } else {
                    code.push(Insn::LoadSym {
                        dst,
                        sym: SymId(self.syms.intern(name)),
                    });
                }
                depth as usize
            }
            E::Bin(op, a, b) => {
                let da = self.expr(a, code, scratch_base, depth, defined, reg_of);
                let db = self.expr(b, code, scratch_base, depth + 1, defined, reg_of);
                code.push(Insn::Bin {
                    op: *op,
                    dst,
                    a: dst,
                    b: dst + 1,
                });
                da.max(db)
            }
            E::Cmp(op, a, b) => {
                let da = self.expr(a, code, scratch_base, depth, defined, reg_of);
                let db = self.expr(b, code, scratch_base, depth + 1, defined, reg_of);
                code.push(Insn::Cmp {
                    op: *op,
                    dst,
                    a: dst,
                    b: dst + 1,
                });
                da.max(db)
            }
            E::Un(op, a) => {
                let da = self.expr(a, code, scratch_base, depth, defined, reg_of);
                code.push(Insn::Un {
                    op: *op,
                    dst,
                    a: dst,
                });
                da
            }
            E::Select(c, a, b) => {
                let dc = self.expr(c, code, scratch_base, depth, defined, reg_of);
                code.push(Insn::CoverSel { cond: dst });
                let jump_else = code.len();
                code.push(Insn::JumpIfFalse {
                    cond: dst,
                    target: 0,
                });
                let da = self.expr(a, code, scratch_base, depth, defined, reg_of);
                let jump_end = code.len();
                code.push(Insn::Jump { target: 0 });
                let else_at = code.len() as u32;
                let db = self.expr(b, code, scratch_base, depth, defined, reg_of);
                let end_at = code.len() as u32;
                if let Insn::JumpIfFalse { target, .. } = &mut code[jump_else] {
                    *target = else_at;
                }
                if let Insn::Jump { target } = &mut code[jump_end] {
                    *target = end_at;
                }
                dc.max(da).max(db)
            }
        }
    }

    fn library(
        &mut self,
        df: &fuzzyflow_ir::Dataflow,
        n: fuzzyflow_graph::NodeId,
        l: &fuzzyflow_ir::LibraryNode,
        node_site: u64,
    ) -> LibraryPlan {
        let mut conn_slots: Vec<String> = Vec::new();
        let mut inputs = Vec::new();
        let in_memlets = df.in_memlets(n);
        for (_, m) in &in_memlets {
            match &m.dst_conn {
                None => inputs.push(LibInput::Fail(ExecError::Malformed(format!(
                    "input memlet of library '{}' has no connector",
                    l.name
                )))),
                Some(conn) => {
                    let slot = match conn_slots.iter().position(|c| c == conn) {
                        Some(i) => i,
                        None => {
                            conn_slots.push(conn.clone());
                            conn_slots.len() - 1
                        }
                    };
                    inputs.push(LibInput::Read {
                        slot,
                        plan: self.memlet(m),
                    });
                }
            }
        }
        let args: Vec<Result<usize, ExecError>> =
            l.op.input_conns()
                .iter()
                .map(|conn| {
                    conn_slots.iter().position(|c| c == conn).ok_or_else(|| {
                        ExecError::Malformed(format!(
                            "library '{}' missing input connector '{conn}'",
                            l.name
                        ))
                    })
                })
                .collect();
        let out_conn = l.op.output_conns()[0];
        let out_writes: Vec<LibOutWrite> = df
            .out_memlets(n)
            .iter()
            .map(|(_, m)| match &m.src_conn {
                None => LibOutWrite::Fail(ExecError::Malformed(format!(
                    "output memlet of library '{}' has no connector",
                    l.name
                ))),
                Some(conn) if conn == out_conn => LibOutWrite::Write(self.memlet(m)),
                Some(conn) => LibOutWrite::Fail(ExecError::Malformed(format!(
                    "library '{}' has no output connector '{conn}'",
                    l.name
                ))),
            })
            .collect();
        LibraryPlan {
            name: l.name.clone(),
            cover_loc: location_id(&[node_site]),
            op: l.op.clone(),
            inputs,
            n_slots: conn_slots.len(),
            args,
            first_in_data: in_memlets
                .first()
                .map(|(_, m)| DataId(self.data.intern(&m.data))),
            out_writes,
        }
    }
}

/// True when an index expression mentions any of the given symbols.
fn idx_mentions(ic: &IdxCode, syms: &[SymId]) -> bool {
    let hit = |id: SymId| syms.iter().any(|s| s.0 == id.0);
    match ic {
        IdxCode::Const(_) => false,
        IdxCode::Sym(id) => hit(*id),
        IdxCode::Affine(terms) => terms.iter().any(|t| t.sym.is_some_and(hit)),
        IdxCode::Code(code) => code.ops.iter().any(|op| match op {
            SymOp::Load(id) => hit(*id),
            _ => false,
        }),
    }
}

/// Lowers an affine-classed index code into fused terms, classifying each
/// symbol as a map parameter or an outer symbol. `Err` carries the
/// ineligibility reason.
fn fused_idx(ic: &IdxCode, params: &[SymId]) -> Result<FusedIdx, FuseReject> {
    let var_of = |id: SymId| -> FusedVar {
        match params.iter().position(|p| p.0 == id.0) {
            Some(d) => FusedVar::Param(d),
            None => FusedVar::Outer(id),
        }
    };
    let terms = match ic {
        IdxCode::Const(c) => vec![FusedTerm {
            sub: false,
            coeff: *c,
            var: FusedVar::None,
        }],
        IdxCode::Sym(id) => vec![FusedTerm {
            sub: false,
            coeff: 1,
            var: var_of(*id),
        }],
        IdxCode::Affine(terms) => terms
            .iter()
            .map(|t| FusedTerm {
                sub: t.sub,
                coeff: t.coeff,
                var: match t.sym {
                    None => FusedVar::None,
                    Some(id) => var_of(id),
                },
            })
            .collect(),
        IdxCode::Code(_) => return Err(FuseReject::NonAffine),
    };
    Ok(FusedIdx { terms })
}

/// Lowers a memlet plan into a fused access: single-index dimensions
/// become point [`FusedDim`]s, ranged dimensions carry their end/step as
/// a [`FusedSpan`] for the precheck's uniform-length analysis.
fn fused_access(plan: &MemPlan, params: &[SymId], output: bool) -> Result<FusedAccess, FuseReject> {
    let mut dims = Vec::new();
    let mut checks = Vec::new();
    match &plan.kind {
        MemKind::Single(idxs) => {
            for (start, end) in idxs {
                dims.push(FusedDim {
                    start: fused_idx(start, params)?,
                    span: None,
                });
                match end {
                    EndCheck::IncOfStart => {}
                    EndCheck::Eval(ic) => checks.push(fused_idx(ic, params)?),
                }
            }
        }
        MemKind::Ranges(rps) => {
            for rp in rps {
                dims.push(FusedDim {
                    start: fused_idx(&rp.start, params)?,
                    span: Some(FusedSpan {
                        end: fused_idx(&rp.end, params)?,
                        step: fused_idx(&rp.step, params)?,
                    }),
                });
            }
        }
    }
    Ok(FusedAccess {
        data: plan.data,
        dims,
        checks,
        wcr: if output { plan.wcr } else { None },
    })
}

/// Attempts to collapse a compiled map scope into a [`FusedKernel`].
///
/// Eligible scopes have: parameter-independent ranges; a body that is a
/// topologically ordered chain of f64-specialized tasklets (one common
/// lane width) plus access nodes for the containers they touch; affine
/// memlets (single-index or ranged); and container sets where every
/// written container is either a pipeline intermediate re-read through
/// the byte-identical subset (the value then rides the writer's
/// registers) or never read at all, so fused execution is
/// order-equivalent to per-element execution. Select control flow is
/// allowed — such bodies run the scalar kernel loop, which records
/// branch coverage exactly like the generic engine. Everything else
/// keeps the generic plan, with the reason recorded.
fn fuse_map(mp: &MapPlan) -> Result<FusedKernel, FuseReject> {
    if mp.body.error.is_some() {
        return Err(FuseReject::BodyError);
    }
    if mp.params.is_empty() {
        return Err(FuseReject::NoParams);
    }
    for rp in &mp.ranges {
        for ic in [&rp.start, &rp.end, &rp.step] {
            if idx_mentions(ic, &mp.params) {
                return Err(FuseReject::ParamRange);
            }
        }
    }

    // Body shape: access nodes + a straight-line chain of tasklets (the
    // block's steps are already in topological execution order).
    let mut tasklets: Vec<&TaskletPlan> = Vec::new();
    let mut access_ids: Vec<DataId> = Vec::new();
    for step in &mp.body.steps {
        match step {
            Step::Access(d) => access_ids.push(*d),
            Step::Tasklet(tp) => tasklets.push(tp),
            Step::Map(_) => return Err(FuseReject::NestedMap),
            Step::Library(_) => return Err(FuseReject::Library),
        }
    }
    if tasklets.is_empty() {
        return Err(FuseReject::NoTasklet);
    }
    let fasts: Vec<&FastTasklet> = tasklets
        .iter()
        .map(|tp| tp.fast.as_deref().ok_or(FuseReject::NotSpecialized))
        .collect::<Result<_, _>>()?;
    let lanes = tasklets[0].lanes;
    if tasklets.iter().any(|tp| tp.lanes != lanes) {
        return Err(FuseReject::MixedLanes);
    }
    // A vectorized pipeline would need per-lane register forwarding
    // interleaved with per-element coverage — the per-element path keeps
    // exact semantics there.
    if lanes > 1 && tasklets.len() > 1 {
        return Err(FuseReject::LanePipeline);
    }
    let has_select = fasts.iter().any(|fp| {
        fp.code.iter().any(|i| {
            matches!(
                i,
                FInsn::CoverSel { .. } | FInsn::Jump { .. } | FInsn::JumpIfFalse { .. }
            )
        })
    });

    let mut cover_locs = Vec::with_capacity(tasklets.len());
    let mut inputs: Vec<FusedAccess> = Vec::new();
    let mut in_regs: Vec<Option<u32>> = Vec::new();
    let mut chained: Vec<usize> = Vec::new();
    let mut outputs: Vec<FusedAccess> = Vec::new();
    let mut out_regs: Vec<(u32, bool)> = Vec::new();
    let mut code: Vec<FKInsn> = Vec::new();
    let mut guards: Vec<DataId> = Vec::new();
    // Container → index of the fused output that wrote it.
    let mut writer_of: BTreeMap<usize, usize> = BTreeMap::new();
    // Containers read from memory (not via pipeline registers).
    let mut ext_read: Vec<usize> = Vec::new();
    let mut n_regs = 0usize;

    for (tp, fp) in tasklets.iter().zip(&fasts) {
        cover_locs.push(tp.cover_loc);
        // Entry coverage precedes the tasklet's reads and body, exactly
        // where the per-element engine records it.
        code.push(FKInsn::Cover { loc: tp.cover_loc });
        // Each tasklet gets a disjoint window of the register files.
        let base = n_regs as u32;

        for (k, ip) in fp.inputs.iter().enumerate() {
            // A later read into the same connector slot overwrites this
            // one; the read still happens for bounds/step parity.
            let dead = fp.inputs[k + 1..].iter().any(|later| later.slot == ip.slot);
            let acc = fused_access(&ip.plan, &mp.params, false)?;
            if let Some(&oi) = writer_of.get(&acc.data.idx()) {
                // Pipeline-internal read: an earlier tasklet wrote this
                // container. Sound only when the subset is byte-identical
                // (then the just-written element set is exactly the read
                // set) and the write was plain (WCR would make memory
                // differ from the writer's registers).
                if outputs[oi].wcr.is_some() {
                    return Err(FuseReject::ChainWcr);
                }
                if !same_subset(&outputs[oi], &acc) {
                    return Err(FuseReject::ChainMismatch);
                }
                chained.push(oi);
                if !dead {
                    let (src, from_bool) = out_regs[oi];
                    let dst = fp.conn_regs[ip.slot] + base;
                    code.push(if from_bool {
                        FKInsn::FloatFromB { dst, src }
                    } else {
                        FKInsn::MovF { dst, src }
                    });
                }
            } else {
                ext_read.push(acc.data.idx());
                in_regs.push(if dead {
                    None
                } else {
                    Some(fp.conn_regs[ip.slot] + base)
                });
                inputs.push(acc);
            }
        }

        // Translate the tasklet's code 1:1 (jump targets rebase onto the
        // concatenated stream). Select-free kernels drop the statement
        // markers — nothing reads the site — which cannot desync targets
        // because such code has no jumps at all.
        let code_base = code.len() as u32;
        let skip_stmts = !has_select;
        for insn in &fp.code {
            code.push(match insn {
                FInsn::Stmt { site } => {
                    if skip_stmts {
                        continue;
                    }
                    FKInsn::Stmt { site: *site }
                }
                FInsn::CoverSel { cond } => FKInsn::CoverSel { cond: cond + base },
                FInsn::JumpIfFalse { cond, target } => FKInsn::JumpIfFalse {
                    cond: cond + base,
                    target: target + code_base,
                },
                FInsn::Jump { target } => FKInsn::Jump {
                    target: target + code_base,
                },
                FInsn::ConstF { dst, val } => FKInsn::ConstF {
                    dst: dst + base,
                    val: *val,
                },
                FInsn::ConstB { dst, val } => FKInsn::ConstB {
                    dst: dst + base,
                    val: *val,
                },
                FInsn::MovF { dst, src } => FKInsn::MovF {
                    dst: dst + base,
                    src: src + base,
                },
                FInsn::MovB { dst, src } => FKInsn::MovB {
                    dst: dst + base,
                    src: src + base,
                },
                FInsn::LoadSymF { dst, sym } => match mp.params.iter().position(|p| p.0 == sym.0) {
                    Some(d) => FKInsn::LoadParamF {
                        dst: dst + base,
                        dim: d as u32,
                    },
                    None => FKInsn::LoadSymF {
                        dst: dst + base,
                        sym: *sym,
                    },
                },
                FInsn::BinF { op, dst, a, b } => FKInsn::BinF {
                    op: *op,
                    dst: dst + base,
                    a: a + base,
                    b: b + base,
                },
                FInsn::UnF { op, dst, a } => FKInsn::UnF {
                    op: *op,
                    dst: dst + base,
                    a: a + base,
                },
                FInsn::CmpF { op, dst, a, b } => FKInsn::CmpF {
                    op: *op,
                    dst: dst + base,
                    a: a + base,
                    b: b + base,
                },
                FInsn::NotB { dst, a } => FKInsn::NotB {
                    dst: dst + base,
                    a: a + base,
                },
                FInsn::AndB { dst, a, b } => FKInsn::AndB {
                    dst: dst + base,
                    a: a + base,
                    b: b + base,
                },
                FInsn::OrB { dst, a, b } => FKInsn::OrB {
                    dst: dst + base,
                    a: a + base,
                    b: b + base,
                },
                FInsn::BoolFromF { reg } => FKInsn::BoolFromF { reg: reg + base },
            });
        }

        for ow in &fp.out_writes {
            let acc = fused_access(&ow.plan, &mp.params, true)?;
            let di = acc.data.idx();
            if writer_of.contains_key(&di) {
                return Err(FuseReject::DupWrites);
            }
            // A write to a container some tasklet read from memory: the
            // generic path's element interleaving could observe it.
            if ext_read.contains(&di) {
                return Err(FuseReject::Overlap);
            }
            // A single-index write always carries volume 1; with
            // `lanes > 1` gathered values, the generic path raises a
            // volume mismatch — keep it there.
            if lanes > 1 && acc.dims.iter().all(|d| d.span.is_none()) {
                return Err(FuseReject::LaneVolume);
            }
            let mut gathers = fp.gather.iter().filter(|g| g.slot == ow.slot);
            let g = gathers.next().ok_or(FuseReject::NeverGathered)?;
            if gathers.next().is_some() {
                return Err(FuseReject::DupConnector);
            }
            writer_of.insert(di, outputs.len());
            out_regs.push((g.reg + base, g.from_bool));
            outputs.push(acc);
        }

        for g in &fp.guards {
            if !guards.contains(g) {
                guards.push(*g);
            }
        }
        n_regs += fp.n_regs;
    }

    // Every access node in the body must belong to some tasklet memlet;
    // then the kernel's dtype/liveness guards subsume the per-iteration
    // access checks.
    for d in &access_ids {
        let known = inputs
            .iter()
            .map(|a| a.data)
            .chain(outputs.iter().map(|a| a.data))
            .any(|x| x.idx() == d.idx());
        if !known {
            return Err(FuseReject::Dangling);
        }
    }

    let mut fk = FusedKernel {
        cover_locs,
        lanes,
        has_select,
        in_regs,
        inputs,
        chained,
        out_regs,
        outputs,
        code,
        n_regs,
        guards,
        jit_key: crate::jit::next_jit_key(),
        jit: Err(JitReject::UnsupportedArch),
    };
    fk.jit = crate::jit::lower::analyze(&fk, mp.ranges.len());
    Ok(fk)
}

/// Per-run execution context: step budget, collectives, coverage, and
/// the out-of-bounds slop switch (see [`ExecOptions::oob_slop`]).
struct RunCtx<'a> {
    steps: u64,
    max_steps: u64,
    comm: Option<&'a dyn CommHandler>,
    cov: Option<&'a mut CoverageMap>,
    oob_slop: bool,
    /// Fused kernels may enter the native tier (see [`ExecOptions::jit`]).
    jit: bool,
}

impl RunCtx<'_> {
    #[inline]
    fn tick(&mut self, n: u64) -> Result<(), ExecError> {
        self.steps += n;
        if self.steps > self.max_steps {
            return Err(ExecError::StepLimitExceeded {
                limit: self.max_steps,
            });
        }
        Ok(())
    }

    #[inline]
    fn cover(&mut self, loc: u64) {
        if let Some(c) = self.cov.as_deref_mut() {
            c.record(loc);
        }
    }

    #[inline]
    fn cover_parts(&mut self, parts: &[u64]) {
        if let Some(c) = self.cov.as_deref_mut() {
            c.record(location_id(parts));
        }
    }
}

/// Spans a [`DirtySet`] holds before further marks coalesce into the
/// nearest existing span (bounded so marking stays O(1) per write plan).
const DIRTY_SPAN_CAP: usize = 8;

/// Containers smaller than this always take the full-reset path: below
/// it, a straight memset is at least as cheap as span bookkeeping, and
/// the tracking metadata would be pure overhead.
const DIRTY_MIN_ELEMS: usize = 4096;

/// The fill pattern a retained allocation buffer held the last time it
/// was reset — what [`Executor::allocate`] restores dirty granules from.
/// `Unknown` forces a full reset (fresh buffer, program switch, slot
/// recycled through an input or `run_in_place`, shape change).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
enum Pristine {
    #[default]
    Unknown,
    Zero,
    Garbage,
}

/// Coarse per-container record of the linear element ranges a run wrote:
/// a bounded set of half-open spans, conservatively merged (`dirty ⊇
/// written` always holds; over-approximation only costs reset work,
/// never correctness). Non-affine or unbounded writes degrade to
/// [`DirtySet::mark_all`].
#[derive(Clone, Debug, Default)]
struct DirtySet {
    all: bool,
    spans: Vec<(usize, usize)>,
}

impl DirtySet {
    fn clear(&mut self) {
        self.all = false;
        self.spans.clear();
    }

    fn mark_all(&mut self) {
        self.all = true;
        self.spans.clear();
    }

    /// Records the half-open span `lo..hi` as written, merging with an
    /// overlapping or adjacent span when one exists and coalescing into
    /// the nearest span once [`DIRTY_SPAN_CAP`] is reached.
    fn mark(&mut self, lo: usize, hi: usize) {
        if self.all || lo >= hi {
            return;
        }
        for s in &mut self.spans {
            if lo <= s.1 && s.0 <= hi {
                s.0 = s.0.min(lo);
                s.1 = s.1.max(hi);
                return;
            }
        }
        if self.spans.len() < DIRTY_SPAN_CAP {
            self.spans.push((lo, hi));
            return;
        }
        let nearest = self
            .spans
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| if hi <= s.0 { s.0 - hi } else { lo - s.1 })
            .map(|(i, _)| i)
            .expect("span cap is non-zero");
        let s = &mut self.spans[nearest];
        s.0 = s.0.min(lo);
        s.1 = s.1.max(hi);
    }

    /// Total elements covered (an upper bound; spans may overlap after
    /// merges). Used to decide whether a selective reset is worthwhile.
    fn covered(&self) -> usize {
        self.spans.iter().map(|s| s.1 - s.0).sum()
    }
}

/// Counts freshly constructed [`ExecutorArena`]s process-wide — the
/// observable the per-worker arena cache exists to minimize (benches
/// assert sweeps construct far fewer arenas than they run trials).
static FRESH_ARENAS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Number of [`ExecutorArena`]s constructed from scratch so far in this
/// process (recycled arenas do not count).
pub fn fresh_arena_count() -> u64 {
    FRESH_ARENAS.load(std::sync::atomic::Ordering::Relaxed)
}

/// The owned storage of an [`Executor`], detached from any program: all
/// the id-indexed state and scratch buffers, but no borrow. Detaching
/// ([`Executor::into_arena`]) and re-attaching ([`Program::executor_with`])
/// lets long-lived workers keep warm buffers across programs — the
/// differential tester's per-worker cache stores arenas keyed by program
/// identity, so repeat tests reuse them outright and sweeps recycle them
/// across instances instead of reallocating.
#[derive(Debug, Default)]
pub struct ExecutorArena {
    syms: Vec<Option<i64>>,
    arrays: Vec<Option<ArrayValue>>,
    live: Vec<bool>,
    extra_syms: Vec<(String, i64)>,
    extra_arrays: Vec<(String, ArrayValue)>,
    stack: Vec<i64>,
    regs: Vec<Scalar>,
    in_vals: Vec<Vec<Scalar>>,
    out_vals: Vec<Vec<Scalar>>,
    lib_dims: Vec<Vec<i64>>,
    dims_buf: Vec<ConcreteRange>,
    point: Vec<i64>,
    fin_vals: Vec<Vec<f64>>,
    fout_vals: Vec<Vec<f64>>,
    regs_f: Vec<f64>,
    regs_b: Vec<bool>,
    fk_regs_f: Vec<[f64; LANES]>,
    fk_regs_b: Vec<[bool; LANES]>,
    fdims: Vec<ConcreteRange>,
    fbases: Vec<i64>,
    fstrides: Vec<i64>,
    /// Wide-integer scratch of the fused precheck, partitioned per access
    /// into net-coefficient / line-stride / array-stride segments.
    fnet: Vec<i128>,
    fodo: Vec<i64>,
    fouter: Vec<f64>,
    frow: Vec<i64>,
    fouts: Vec<ArrayValue>,
    /// Native-kernel call frame (see [`crate::jit::lower::JitLayout`]).
    jframe: Vec<u64>,
    /// Per-slot record of what the last run wrote (selective resets).
    dirty: Vec<DirtySet>,
    /// Per-slot pristine pattern the retained buffer held outside its
    /// dirty spans. Invalidated whenever a slot's contents stop being
    /// engine-controlled (inputs, `run_in_place`, program switches).
    pristine: Vec<Pristine>,
    /// Identity of the program the tracking state belongs to; arenas
    /// recycle across programs, so a mismatch wipes `dirty`/`pristine`.
    tracked_prog: Option<u64>,
    /// First wild store of the run under [`ExecOptions::oob_slop`]
    /// (slot index + faulting point), reported after the run as
    /// [`ExecError::GuardViolation`].
    guard_fault: Option<(usize, Vec<i64>)>,
}

impl ExecutorArena {
    /// A fresh, empty arena (counted by [`fresh_arena_count`]).
    pub fn new() -> Self {
        FRESH_ARENAS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Self::default()
    }
}

/// A reusable execution context for one [`Program`]: id-indexed `Vec`
/// storage for symbols and arrays plus scratch buffers, all retained
/// between runs so consecutive trials reset buffers in place instead of
/// reallocating.
pub struct Executor<'p> {
    prog: &'p Program,
    a: ExecutorArena,
}

impl<'p> Executor<'p> {
    /// Creates an executor with empty storage sized for `prog`.
    pub fn new(prog: &'p Program) -> Self {
        Self::with_arena(prog, ExecutorArena::new())
    }

    /// Creates an executor over a recycled arena, resizing the id-indexed
    /// storage for `prog` while keeping allocated buffers (retained array
    /// buffers whose dtype/shape still match are reused in place).
    pub fn with_arena(prog: &'p Program, mut a: ExecutorArena) -> Self {
        a.syms.clear();
        a.syms.resize(prog.syms.len(), None);
        a.arrays.truncate(prog.data.len());
        while a.arrays.len() < prog.data.len() {
            a.arrays.push(None);
        }
        a.live.clear();
        a.live.resize(prog.data.len(), false);
        a.extra_syms.clear();
        a.extra_arrays.clear();
        // Dirty/pristine tracking is only meaningful for the program that
        // produced it: a recycled arena attached to a different program
        // maps slot indices to different containers, so wipe the record
        // (retained buffers stay; they just take one full reset).
        if a.tracked_prog != Some(prog.id) {
            a.tracked_prog = Some(prog.id);
            a.pristine.clear();
            a.dirty.clear();
        }
        a.pristine.resize(prog.data.len(), Pristine::Unknown);
        a.dirty.resize_with(prog.data.len(), DirtySet::default);
        a.guard_fault = None;
        Executor { prog, a }
    }

    /// Detaches the executor's storage for caching; see [`ExecutorArena`].
    pub fn into_arena(self) -> ExecutorArena {
        self.a
    }

    /// Runs the program against `input` without consuming it: inputs are
    /// copied into the executor's reusable buffers, and the resulting
    /// system state stays inside the executor for inspection via
    /// [`Executor::array`], [`Executor::symbol`], [`Executor::compare_on`]
    /// or [`Executor::to_state`]. This is the zero-allocation trial entry
    /// point of the differential fuzzer.
    pub fn execute(
        &mut self,
        input: &ExecState,
        opts: &ExecOptions,
        comm: Option<&dyn CommHandler>,
        cov: Option<&mut CoverageMap>,
    ) -> Result<(), ExecError> {
        self.a.extra_syms.clear();
        self.a.extra_arrays.clear();
        for s in &mut self.a.syms {
            *s = None;
        }
        for (name, v) in input.symbols.iter() {
            match self.prog.sym_id(name) {
                Some(id) => self.a.syms[id.idx()] = Some(v),
                None => self.a.extra_syms.push((name.to_string(), v)),
            }
        }
        for l in &mut self.a.live {
            *l = false;
        }
        for (name, arr) in &input.arrays {
            match self.prog.data_id(name) {
                Some(id) => {
                    match &mut self.a.arrays[id.idx()] {
                        Some(buf) => buf.copy_from(arr),
                        slot @ None => {
                            let mut buf = arr.clone();
                            buf.repoison_guards();
                            *slot = Some(buf);
                        }
                    }
                    self.a.live[id.idx()] = true;
                    // The slot now holds caller data, not a pristine fill
                    // pattern; if a later trial allocates it, reset fully.
                    self.a.pristine[id.idx()] = Pristine::Unknown;
                    self.a.dirty[id.idx()].mark_all();
                }
                None => self.a.extra_arrays.push((name.clone(), arr.clone())),
            }
        }
        self.run_loaded(opts, comm, cov)
    }

    /// Runs the program mutating `state` in place — the exact contract of
    /// the tree-walk [`crate::run_with`], including partially-updated
    /// state on error.
    pub fn run_in_place(
        &mut self,
        state: &mut ExecState,
        opts: &ExecOptions,
        comm: Option<&dyn CommHandler>,
        cov: Option<&mut CoverageMap>,
    ) -> Result<(), ExecError> {
        self.a.extra_syms.clear();
        self.a.extra_arrays.clear();
        for s in &mut self.a.syms {
            *s = None;
        }
        for (name, v) in state.symbols.iter() {
            if let Some(id) = self.prog.sym_id(name) {
                self.a.syms[id.idx()] = Some(v);
            }
        }
        for l in &mut self.a.live {
            *l = false;
        }
        for (i, name) in self.prog.data.names.iter().enumerate() {
            if let Some(mut arr) = state.arrays.remove(name) {
                arr.repoison_guards();
                self.a.arrays[i] = Some(arr);
                self.a.live[i] = true;
            }
        }
        // Every slot either holds injected caller data now or gives its
        // buffer away to `state` afterwards — no retained pattern to
        // vouch for either way.
        for p in &mut self.a.pristine {
            *p = Pristine::Unknown;
        }
        for d in &mut self.a.dirty {
            d.clear();
        }
        let res = self.run_loaded(opts, comm, cov);
        // Write back even on error: the tree-walk engine mutates its state
        // in place, so partial updates must be observable identically.
        for (i, name) in self.prog.data.names.iter().enumerate() {
            if self.a.live[i] {
                if let Some(arr) = self.a.arrays[i].take() {
                    state.arrays.insert(name.clone(), arr);
                }
            }
        }
        for (i, name) in self.prog.syms.names.iter().enumerate() {
            match self.a.syms[i] {
                Some(v) => {
                    state.symbols.set(name.clone(), v);
                }
                None => {
                    state.symbols.remove(name);
                }
            }
        }
        res
    }

    /// Final value of a symbol after [`Executor::execute`].
    pub fn symbol(&self, name: &str) -> Option<i64> {
        match self.prog.sym_id(name) {
            Some(id) => self.a.syms[id.idx()],
            None => self
                .a
                .extra_syms
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v),
        }
    }

    /// Final contents of a container after [`Executor::execute`].
    pub fn array(&self, name: &str) -> Option<&ArrayValue> {
        match self.prog.data_id(name) {
            Some(id) if self.a.live[id.idx()] => self.a.arrays[id.idx()].as_ref(),
            Some(_) => None,
            None => self
                .a
                .extra_arrays
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, a)| a),
        }
    }

    /// Compares the named containers between two executors' final states,
    /// mirroring [`ExecState::compare_on`].
    pub fn compare_on(
        &self,
        other: &Executor<'_>,
        names: &[String],
        tol: f64,
    ) -> Option<StateMismatch> {
        for name in names {
            match (self.array(name), other.array(name)) {
                (Some(a), Some(b)) => {
                    if let Some(i) = a.first_mismatch(b, tol) {
                        let lhs = if i < a.len() {
                            a.get(i).to_string()
                        } else {
                            "<shape>".into()
                        };
                        let rhs = if i < b.len() {
                            b.get(i).to_string()
                        } else {
                            "<shape>".into()
                        };
                        return Some(StateMismatch {
                            data: name.clone(),
                            index: i,
                            lhs,
                            rhs,
                        });
                    }
                }
                (a, b) => {
                    if a.is_some() != b.is_some() {
                        return Some(StateMismatch {
                            data: name.clone(),
                            index: 0,
                            lhs: if a.is_some() {
                                "<present>".into()
                            } else {
                                "<missing>".into()
                            },
                            rhs: if b.is_some() {
                                "<present>".into()
                            } else {
                                "<missing>".into()
                            },
                        });
                    }
                }
            }
        }
        None
    }

    /// Materializes the executor's current state as an [`ExecState`]
    /// (clones all live buffers).
    pub fn to_state(&self) -> ExecState {
        let mut st = ExecState::new();
        for (name, v) in &self.a.extra_syms {
            st.symbols.set(name.clone(), *v);
        }
        for (i, name) in self.prog.syms.names.iter().enumerate() {
            if let Some(v) = self.a.syms[i] {
                st.symbols.set(name.clone(), v);
            }
        }
        for (name, arr) in &self.a.extra_arrays {
            st.arrays.insert(name.clone(), arr.clone());
        }
        for (i, name) in self.prog.data.names.iter().enumerate() {
            if self.a.live[i] {
                if let Some(arr) = &self.a.arrays[i] {
                    st.arrays.insert(name.clone(), arr.clone());
                }
            }
        }
        st
    }

    /// Test-only inspection of the dirty record for a container: returns
    /// `(mark_all, spans)` as of the last run (spans survive until the
    /// next trial's `allocate` resets them). Not a stable API.
    #[doc(hidden)]
    pub fn dirty_spans(&self, name: &str) -> Option<(bool, Vec<(usize, usize)>)> {
        let id = self.prog.data_id(name)?;
        let d = self.a.dirty.get(id.idx())?;
        Some((d.all, d.spans.clone()))
    }

    // ----- runtime ------------------------------------------------------

    fn run_loaded(
        &mut self,
        opts: &ExecOptions,
        comm: Option<&dyn CommHandler>,
        cov: Option<&mut CoverageMap>,
    ) -> Result<(), ExecError> {
        let mut ctx = RunCtx {
            steps: 0,
            max_steps: opts.max_steps,
            comm,
            cov,
            oob_slop: opts.oob_slop,
            jit: opts.jit,
        };
        self.a.guard_fault = None;
        self.allocate(opts.reset)?;
        let prog = self.prog;
        let mut current = prog.start;
        loop {
            ctx.tick(1)?;
            let sp = &prog.states[current];
            ctx.cover(sp.site);
            self.exec_block(&sp.body, &mut ctx)?;
            let mut next = None;
            for ep in &sp.edges {
                if self.eval_cond(&ep.cond)? {
                    for (sym, code) in &ep.assigns {
                        let v = self.eval_code(code)?;
                        self.a.syms[sym.idx()] = Some(v);
                    }
                    ctx.cover(ep.cover_loc);
                    next = Some(ep.dst);
                    break;
                }
            }
            match next {
                Some(n) => current = n,
                None => return self.verify_guards(),
            }
        }
    }

    /// Post-trial guard-plane verification: reports the wild store the
    /// slop mode recorded during the run, then checks every live buffer's
    /// poison bytes (defense-in-depth against engine defects — a handful
    /// of element compares per container, no ticks, no coverage; in the
    /// default trap mode this can only fail on an engine bug, so the
    /// engines stay bit-identical).
    fn verify_guards(&mut self) -> Result<(), ExecError> {
        if let Some((i, point)) = self.a.guard_fault.take() {
            let shape = self.a.arrays[i]
                .as_ref()
                .map(|arr| arr.shape().to_vec())
                .unwrap_or_default();
            return Err(ExecError::GuardViolation {
                data: self.prog.data.names[i].clone(),
                point,
                shape,
            });
        }
        for (i, slot) in self.a.arrays.iter().enumerate() {
            if !self.a.live[i] {
                continue;
            }
            if let Some(arr) = slot {
                if !arr.guards_intact() {
                    return Err(ExecError::GuardViolation {
                        data: self.prog.data.names[i].clone(),
                        point: Vec::new(),
                        shape: arr.shape().to_vec(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Allocates declared containers the caller did not provide, reusing
    /// retained buffers of matching dtype/shape from previous runs.
    ///
    /// Under [`ResetPolicy::Dirty`], a retained buffer whose pristine
    /// pattern is still on record is restored by refilling only the spans
    /// the previous run dirtied (plus a guard re-poison) — bit-identical
    /// to the full refill because `dirty ⊇ written`. Any doubt (unknown
    /// pattern, tiny container, mostly-dirty buffer, `mark_all`) falls
    /// back to the full fill.
    fn allocate(&mut self, reset: ResetPolicy) -> Result<(), ExecError> {
        let prog = self.prog;
        for ap in &prog.arrays {
            let i = ap.data.idx();
            if self.a.live[i] {
                continue;
            }
            let mut shape = Vec::with_capacity(ap.shape.len());
            for ic in &ap.shape {
                shape.push(self.eval_idx(ic)?);
            }
            if shape.iter().any(|&d| d < 0) {
                return Err(ExecError::Malformed(format!(
                    "container '{}' has negative dimension in shape {shape:?}",
                    prog.data.names[i]
                )));
            }
            let reusable = matches!(
                &self.a.arrays[i],
                Some(buf) if buf.dtype() == ap.dtype && buf.shape() == shape.as_slice()
            );
            let want = match ap.storage {
                Storage::Host => Pristine::Zero,
                Storage::Device => Pristine::Garbage,
            };
            if reusable {
                let dset = std::mem::take(&mut self.a.dirty[i]);
                let buf = self.a.arrays[i].as_mut().expect("checked above");
                let selective = reset == ResetPolicy::Dirty
                    && self.a.pristine[i] == want
                    && !dset.all
                    && buf.len() >= DIRTY_MIN_ELEMS
                    && dset.covered() < buf.len() / 2;
                if selective {
                    for &(lo, hi) in &dset.spans {
                        match ap.storage {
                            Storage::Host => buf.fill_zero_range(lo, hi),
                            Storage::Device => buf.fill_garbage_range(lo, hi),
                        }
                    }
                    buf.repoison_guards();
                } else {
                    match ap.storage {
                        Storage::Host => buf.fill_zero(),
                        Storage::Device => buf.fill_garbage(),
                    }
                }
                let mut dset = dset;
                dset.clear();
                self.a.dirty[i] = dset;
            } else {
                self.a.arrays[i] = Some(match ap.storage {
                    Storage::Host => ArrayValue::zeros(ap.dtype, shape),
                    Storage::Device => ArrayValue::garbage(ap.dtype, shape),
                });
                self.a.dirty[i].clear();
            }
            self.a.pristine[i] = want;
            self.a.live[i] = true;
        }
        Ok(())
    }

    fn exec_block(&mut self, block: &'p BlockPlan, ctx: &mut RunCtx<'_>) -> Result<(), ExecError> {
        if let Some(e) = &block.error {
            return Err(e.clone());
        }
        for step in &block.steps {
            match step {
                Step::Access(d) => {
                    if !self.a.live[d.idx()] {
                        return Err(ExecError::UnknownData(
                            self.prog.data.names[d.idx()].clone(),
                        ));
                    }
                }
                Step::Tasklet(tp) => {
                    ctx.tick(1)?;
                    ctx.cover(tp.cover_loc);
                    self.exec_tasklet(tp, ctx)?;
                }
                Step::Map(mp) => {
                    ctx.cover(mp.cover_loc);
                    self.exec_map_step(mp, ctx)?;
                }
                Step::Library(lp) => {
                    ctx.cover(lp.cover_loc);
                    self.exec_library(lp, ctx)?;
                }
            }
        }
        Ok(())
    }

    /// Executes a map scope: through its fused kernel when the compile-
    /// time plan and the runtime precheck both allow it, through the
    /// generic per-element recursion otherwise. The two are bit-identical
    /// whenever the kernel runs — the precheck proves no error (and hence
    /// no divergence in error ordering, partial writes or step-limit
    /// behavior) can occur anywhere in the iteration box.
    fn exec_map_step(&mut self, mp: &'p MapPlan, ctx: &mut RunCtx<'_>) -> Result<(), ExecError> {
        if let Some(fk) = &mp.fused {
            match self.prepare_fused(mp, fk, ctx) {
                FusedReady::ZeroTrip => return Ok(()),
                FusedReady::Run { elems, ticks } => return self.exec_fused(fk, elems, ticks, ctx),
                FusedReady::Fallback => {}
            }
        }
        self.exec_map(mp, 0, ctx)
    }

    fn exec_map(
        &mut self,
        mp: &'p MapPlan,
        dim: usize,
        ctx: &mut RunCtx<'_>,
    ) -> Result<(), ExecError> {
        if dim == mp.params.len() {
            ctx.tick(1)?;
            return self.exec_block(&mp.body, ctx);
        }
        let r = self.eval_range(&mp.ranges[dim])?;
        let param = mp.params[dim].idx();
        let saved = self.a.syms[param];
        let len = r.len() as i64;
        for k in 0..len {
            self.a.syms[param] = Some(r.start + k * r.step);
            self.exec_map(mp, dim + 1, ctx)?;
        }
        self.a.syms[param] = saved;
        Ok(())
    }

    // ----- fused map kernels --------------------------------------------

    /// Runtime precheck of a fused kernel: evaluates the map ranges (in
    /// dimension order, stopping at the first empty one exactly like the
    /// per-element recursion), then proves — via exact interval analysis
    /// of every affine subscript over the concrete iteration box — that
    /// no out-of-bounds access, no i64 overflow, no unbound symbol and no
    /// step-budget trip can occur anywhere in the box. Anything it cannot
    /// prove falls back to the generic path, which reproduces errors with
    /// their exact ordering, partial writes and step counts.
    fn prepare_fused(
        &mut self,
        mp: &'p MapPlan,
        fk: &'p FusedKernel,
        ctx: &RunCtx<'_>,
    ) -> FusedReady {
        let mut dims = std::mem::take(&mut self.a.fdims);
        let mut bases = std::mem::take(&mut self.a.fbases);
        let mut strides = std::mem::take(&mut self.a.fstrides);
        let mut wide = std::mem::take(&mut self.a.fnet);
        let ready =
            self.prepare_fused_inner(mp, fk, ctx, &mut dims, &mut bases, &mut strides, &mut wide);
        self.a.fdims = dims;
        self.a.fbases = bases;
        self.a.fstrides = strides;
        self.a.fnet = wide;
        ready
    }

    #[allow(clippy::too_many_arguments)]
    fn prepare_fused_inner(
        &mut self,
        mp: &'p MapPlan,
        fk: &'p FusedKernel,
        ctx: &RunCtx<'_>,
        dims: &mut Vec<ConcreteRange>,
        bases: &mut Vec<i64>,
        strides: &mut Vec<i64>,
        wide: &mut Vec<i128>,
    ) -> FusedReady {
        if !self.fast_guards_hold(&fk.guards) {
            return FusedReady::Fallback;
        }
        dims.clear();
        for rp in &mp.ranges {
            match self.eval_range(rp) {
                Err(_) => return FusedReady::Fallback,
                Ok(r) if r.is_empty() => return FusedReady::ZeroTrip,
                Ok(r) => dims.push(r),
            }
        }
        let n_map = dims.len();
        if fk.lanes > 1 {
            // Synthetic innermost lane dimension: the odometer, stride and
            // chunk machinery then iterate lanes like any other dimension
            // (the body never loads it — map parameters are all outer).
            dims.push(ConcreteRange {
                start: 0,
                end: fk.lanes as i64,
                step: 1,
            });
        }
        let n_dims = dims.len();
        // Checked: an astronomically large box overflows even u128 and
        // must land in the generic path (which trips the step limit
        // almost immediately), not wrap past the budget check.
        let mut elems: u128 = 1;
        for d in dims[..n_map].iter() {
            match elems.checked_mul(d.len() as u128) {
                Some(t) => elems = t,
                None => return FusedReady::Fallback,
            }
        }
        for insn in &fk.code {
            if let FKInsn::LoadSymF { sym, .. } = insn {
                if self.a.syms[sym.idx()].is_none() {
                    return FusedReady::Fallback;
                }
            }
        }

        // Per map element the generic path ticks once for the body entry,
        // once per tasklet, and once per element moved by each read and
        // write — including the pipeline-internal reads, whose volume
        // equals their writer's (always `lanes`).
        let mut ticks_pe: u128 =
            1 + fk.cover_locs.len() as u128 + fk.chained.len() as u128 * fk.lanes as u128;

        bases.clear();
        strides.clear();
        for (ai, acc) in fk.inputs.iter().chain(fk.outputs.iter()).enumerate() {
            let is_out = ai >= fk.inputs.len();
            let arr = self.a.arrays[acc.data.idx()]
                .as_ref()
                .expect("guarded slot holds a buffer");
            let shape = arr.shape();
            if shape.len() != acc.dims.len() {
                return FusedReady::Fallback;
            }
            // Partition the reusable wide scratch: start and end net
            // coefficients, accumulated line strides, row-major array
            // strides.
            wide.clear();
            wide.resize(2 * n_map + n_dims + shape.len(), 0);
            let (net, rest) = wide.split_at_mut(n_map);
            let (net2, rest) = rest.split_at_mut(n_map);
            let (lstr, astr) = rest.split_at_mut(n_dims);
            astr.fill(1);
            // Checked: a zero-length dimension makes huge outer extents
            // allocatable, and their stride product can exceed even i128
            // (such accesses are all out of bounds anyway — fall back).
            for d in (0..shape.len().saturating_sub(1)).rev() {
                match astr[d + 1].checked_mul(shape[d + 1] as i128) {
                    Some(v) => astr[d] = v,
                    None => return FusedReady::Fallback,
                }
            }
            let mut base_off = 0i64;
            let at = strides.len();
            strides.resize(at + n_dims, 0i64);
            let mut vol: u128 = 1;
            // The one ranged dimension spanning more than one element:
            // `(array dim, step value)` — it becomes the lane stride.
            let mut spread: Option<(usize, i128)> = None;
            for (s, fd) in acc.dims.iter().enumerate() {
                let Some((b, lo, hi)) =
                    analyze_fused_idx(&fd.start, &dims[..n_map], &self.a.syms, net)
                else {
                    return FusedReady::Fallback;
                };
                // Length and per-element span of this dimension. Point
                // dimensions cover exactly their start; ranged dimensions
                // must have a box-uniform length (end coefficients equal
                // start coefficients per map parameter) and a positive,
                // parameter-independent step — mirroring how the generic
                // path evaluates `start:end:step` at every element.
                let (len, step_v) = match &fd.span {
                    None => (1i128, 0i128),
                    Some(span) => {
                        let Some((eb, _, _)) =
                            analyze_fused_idx(&span.end, &dims[..n_map], &self.a.syms, net2)
                        else {
                            return FusedReady::Fallback;
                        };
                        if net != net2 {
                            return FusedReady::Fallback;
                        }
                        let Some((sb, slo, shi)) =
                            analyze_fused_idx(&span.step, &dims[..n_map], &self.a.syms, net2)
                        else {
                            return FusedReady::Fallback;
                        };
                        // A non-constant step, or a step ≤ 0 (the generic
                        // path raises `InvalidStep`), is not provably
                        // uniform/safe.
                        if slo != shi || sb <= 0 {
                            return FusedReady::Fallback;
                        }
                        let stp = sb as i128;
                        let diff = eb as i128 - b as i128;
                        let len = if diff <= 0 { 0 } else { (diff + stp - 1) / stp };
                        (len, stp)
                    }
                };
                if len == 0 {
                    // An empty subset dimension: the generic path sees a
                    // volume of 0 (an error for every lane count ≥ 1).
                    return FusedReady::Fallback;
                }
                if len > 1 {
                    if spread.is_some() {
                        return FusedReady::Fallback;
                    }
                    spread = Some((s, step_v));
                }
                // Bounds over everything the dimension touches:
                // `start + j*step` for `j in 0..len`, step > 0.
                let span_off = (len - 1) * step_v;
                if lo < 0 || hi + span_off >= shape[s] as i128 {
                    return FusedReady::Fallback;
                }
                base_off += (b as i128 * astr[s]) as i64;
                vol = match vol.checked_mul(len as u128) {
                    Some(v) => v,
                    None => return FusedReady::Fallback,
                };
                for d in 0..n_map {
                    // Only multi-iteration dimensions need a stride, and
                    // only for those is the product provably bounded (it
                    // is a difference of two in-bounds offsets): a huge
                    // step on a single-iteration dimension could overflow
                    // even i128 here.
                    if dims[d].len() > 1 {
                        lstr[d] += net[d] * dims[d].step as i128 * astr[s];
                    }
                }
            }
            for chk in &acc.checks {
                if analyze_fused_idx(chk, &dims[..n_map], &self.a.syms, net).is_none() {
                    return FusedReady::Fallback;
                }
            }
            // Volume contract of the generic lane loop: inputs broadcast
            // (1) or deliver one value per lane; outputs gather exactly
            // one value per lane. Anything else errors there — fall back.
            if is_out {
                if vol != fk.lanes as u128 {
                    return FusedReady::Fallback;
                }
            } else if vol != 1 && vol != fk.lanes as u128 {
                return FusedReady::Fallback;
            }
            ticks_pe += vol;
            for d in 0..n_map {
                // A dimension iterated more than once has a stride that is
                // the difference of two in-bounds offsets, so it fits i64;
                // single-iteration dimensions never use theirs.
                if dims[d].len() > 1 {
                    let Ok(v) = i64::try_from(lstr[d]) else {
                        return FusedReady::Fallback;
                    };
                    strides[at + d] = v;
                }
            }
            if fk.lanes > 1 && vol == fk.lanes as u128 {
                // Lane-dimension stride: the spread dimension's step times
                // its array stride. Both endpoints are in bounds, so for
                // lanes ≥ 2 the product fits i64 — checked anyway.
                let (s, stp) = spread.expect("volume > 1 has a spread dimension");
                let Ok(v) = i64::try_from(stp * astr[s]) else {
                    return FusedReady::Fallback;
                };
                strides[at + n_map] = v;
            }
            bases.push(base_off);
        }
        let ticks = match elems.checked_mul(ticks_pe) {
            Some(t) if t <= (ctx.max_steps - ctx.steps) as u128 => t,
            _ => return FusedReady::Fallback,
        };
        FusedReady::Run {
            elems: elems as u64,
            ticks: ticks as u64,
        }
    }

    /// Runs a prepared fused kernel: per-element access plans collapse to
    /// hoisted base offsets plus constant per-dimension strides, and the
    /// f64 body runs over lane chunks of the innermost dimension — or,
    /// when the body has select control flow, through the scalar
    /// per-element loop that records branch coverage like the generic
    /// engine. Bit-identical to the per-element path by the precheck's
    /// no-error proof plus disjointness of the read and write sets.
    fn exec_fused(
        &mut self,
        fk: &'p FusedKernel,
        elems: u64,
        ticks: u64,
        ctx: &mut RunCtx<'_>,
    ) -> Result<(), ExecError> {
        // Coverage is edge coverage: consecutive records pair up, so a
        // kernel recording more than one location per element (pipeline
        // entries, select sites) must interleave its records exactly as
        // the per-element engine does — the scalar body loop executes
        // the kernel's `Cover`/`CoverSel` markers in element order. A
        // single-location kernel records `loc × elems`, for which the
        // batch below is order-identical and keeps the chunked loop.
        let interleave = ctx.cov.is_some() && (fk.has_select || fk.cover_locs.len() > 1);
        if ctx.cov.is_some() && !interleave {
            for &loc in &fk.cover_locs {
                for _ in 0..elems {
                    ctx.cover(loc);
                }
            }
        }
        let scalar_body = fk.has_select || interleave;
        // The precheck proved the whole kernel fits the step budget.
        ctx.steps += ticks;

        // Dirty marking: each output's touched offsets span the interval
        // [base + sum(min(stride*span)), base + sum(max(stride*span))] over
        // the concrete iteration box — O(dims) per kernel, not per element.
        {
            let n_in = fk.inputs.len();
            let n_dims = self.a.fdims.len();
            for (oi, o) in fk.outputs.iter().enumerate() {
                let a_idx = n_in + oi;
                let mut lo = self.a.fbases[a_idx] as i128;
                let mut hi = lo;
                for d in 0..n_dims {
                    let span = self.a.fstrides[a_idx * n_dims + d] as i128
                        * (self.a.fdims[d].len() as i128 - 1);
                    if span < 0 {
                        lo += span;
                    } else {
                        hi += span;
                    }
                }
                let di = o.data.idx();
                let len = self.a.arrays[di]
                    .as_ref()
                    .expect("guarded slot holds a buffer")
                    .len() as i128;
                let lo = lo.clamp(0, len) as usize;
                let hi = (hi + 1).clamp(0, len) as usize;
                self.a.dirty[di].mark(lo, hi.max(lo));
            }
        }

        let mut rf = std::mem::take(&mut self.a.fk_regs_f);
        let mut rb = std::mem::take(&mut self.a.fk_regs_b);
        // Scalar register files for the scalar body loop (reused from
        // the fast-path arenas; taken up front so the slice views below
        // can borrow the arrays without a split borrow).
        let mut srf = std::mem::take(&mut self.a.regs_f);
        let mut srb = std::mem::take(&mut self.a.regs_b);
        if scalar_body {
            if srf.len() < fk.n_regs {
                srf.resize(fk.n_regs, 0.0);
            }
            if srb.len() < fk.n_regs {
                srb.resize(fk.n_regs, false);
            }
        } else {
            if rf.len() < fk.n_regs {
                rf.resize(fk.n_regs, [0.0; LANES]);
            }
            if rb.len() < fk.n_regs {
                rb.resize(fk.n_regs, [false; LANES]);
            }
        }
        let dims = std::mem::take(&mut self.a.fdims);
        let bases = std::mem::take(&mut self.a.fbases);
        let strides = std::mem::take(&mut self.a.fstrides);
        let mut odo = std::mem::take(&mut self.a.fodo);
        let mut outer_vals = std::mem::take(&mut self.a.fouter);
        let mut row = std::mem::take(&mut self.a.frow);
        odo.clear();
        odo.resize(dims.len(), 0);
        outer_vals.clear();
        outer_vals.resize(dims.len(), 0.0);
        row.clear();
        row.resize(bases.len(), 0);

        let mut jframe = std::mem::take(&mut self.a.jframe);
        // Write targets move out of their slots; reads borrow the rest
        // (the fused read and write sets are disjoint by construction).
        let mut outs = std::mem::take(&mut self.a.fouts);
        outs.extend(fk.outputs.iter().map(|o| {
            self.a.arrays[o.data.idx()]
                .take()
                .expect("guarded slot holds a buffer")
        }));
        {
            // The slice views borrow the executor, so they cannot park in
            // the arena like the other scratch; they are pointer-sized per
            // access and rebuilt once per kernel entry, not per element.
            let in_slices: Vec<&[f64]> = fk
                .inputs
                .iter()
                .map(|acc| {
                    self.a.arrays[acc.data.idx()]
                        .as_ref()
                        .expect("guarded slot holds a buffer")
                        .as_f64_slice()
                        .expect("guarded dtype is F64")
                })
                .collect();
            let mut out_slices: Vec<&mut [f64]> = outs
                .iter_mut()
                .map(|arr| arr.as_f64_parts_mut().expect("guarded dtype is F64").1)
                .collect();
            // Native tier: a statically eligible kernel runs emitted
            // machine code whenever this execution records no coverage
            // inside the body (entry coverage was batched above) and —
            // for vectorized kernels — this run's concrete lane strides
            // are the unit strides the packed loads assume
            // (`JitReject::NonUnitStrideLanes` otherwise; the fallback
            // is always per-kernel). Step accounting is already
            // arithmetic, and the precheck's no-error proof covers the
            // native loop exactly as it covers the bytecode loops.
            // Failure to obtain executable pages falls back down the
            // ladder.
            let mut ran_native = false;
            if ctx.jit && !interleave {
                if let Ok(lay) = &fk.jit {
                    if jit_lane_strides_ok(fk, lay, &strides, dims.len()) {
                        if let Some(code) = jit_code_for(fk, lay) {
                            // Packed blobs unroll the synthetic lane dim
                            // internally; the driver's row is the
                            // innermost real dim.
                            let inner = dims.len() - 1 - usize::from(lay.lanes > 1);
                            run_fused_jit(
                                fk,
                                lay,
                                &code,
                                inner,
                                &dims,
                                &bases,
                                &strides,
                                &self.a.syms,
                                &in_slices,
                                &mut out_slices,
                                &mut jframe,
                                &mut odo,
                            );
                            crate::jit::count_native_run(lay.lanes > 1);
                            ran_native = true;
                        }
                    }
                }
            }
            if !ran_native && scalar_body {
                run_fused_scalar(
                    fk,
                    &dims,
                    &bases,
                    &strides,
                    &self.a.syms,
                    &in_slices,
                    &mut out_slices,
                    &mut srf,
                    &mut srb,
                    ctx,
                    (&mut odo, &mut outer_vals, &mut row),
                );
            } else if !ran_native {
                run_fused_loop(
                    fk,
                    &dims,
                    &bases,
                    &strides,
                    &self.a.syms,
                    &in_slices,
                    &mut out_slices,
                    &mut rf,
                    &mut rb,
                    (&mut odo, &mut outer_vals, &mut row),
                );
            }
        }
        for (o, arr) in fk.outputs.iter().zip(outs.drain(..)) {
            self.a.arrays[o.data.idx()] = Some(arr);
        }
        self.a.fouts = outs;
        self.a.jframe = jframe;
        self.a.fk_regs_f = rf;
        self.a.fk_regs_b = rb;
        self.a.regs_f = srf;
        self.a.regs_b = srb;
        self.a.fdims = dims;
        self.a.fbases = bases;
        self.a.fstrides = strides;
        self.a.fodo = odo;
        self.a.fouter = outer_vals;
        self.a.frow = row;
        Ok(())
    }

    fn exec_tasklet(&mut self, tp: &'p TaskletPlan, ctx: &mut RunCtx<'_>) -> Result<(), ExecError> {
        if let Some(fp) = &tp.fast {
            if self.fast_guards_hold(&fp.guards) {
                return self.exec_tasklet_fast(tp, fp, ctx);
            }
        }
        let mut in_vals = std::mem::take(&mut self.a.in_vals);
        let mut out_vals = std::mem::take(&mut self.a.out_vals);
        let mut regs = std::mem::take(&mut self.a.regs);
        if in_vals.len() < tp.n_conn_slots {
            in_vals.resize_with(tp.n_conn_slots, Vec::new);
        }
        if out_vals.len() < tp.n_out_slots {
            out_vals.resize_with(tp.n_out_slots, Vec::new);
        }
        if regs.len() < tp.n_regs {
            regs.resize(tp.n_regs, Scalar::I64(0));
        }
        let res = self.exec_tasklet_inner(tp, ctx, &mut in_vals, &mut out_vals, &mut regs);
        self.a.in_vals = in_vals;
        self.a.out_vals = out_vals;
        self.a.regs = regs;
        res
    }

    fn exec_tasklet_inner(
        &mut self,
        tp: &'p TaskletPlan,
        ctx: &mut RunCtx<'_>,
        in_vals: &mut [Vec<Scalar>],
        out_vals: &mut [Vec<Scalar>],
        regs: &mut [Scalar],
    ) -> Result<(), ExecError> {
        // Gather inputs per connector slot, in memlet order.
        for ip in &tp.inputs {
            match ip {
                InputPlan::Fail(e) => return Err(e.clone()),
                InputPlan::Read { slot, conn, plan } => {
                    let buf = &mut in_vals[*slot];
                    buf.clear();
                    self.read_plan(plan, ctx, buf, &tp.name)?;
                    if buf.len() != 1 && buf.len() != tp.lanes {
                        return Err(ExecError::VolumeMismatch {
                            context: format!("tasklet '{}' input '{conn}'", tp.name),
                            expected: tp.lanes,
                            actual: buf.len(),
                        });
                    }
                }
            }
        }
        // Execute code lane-wise.
        for b in out_vals[..tp.n_out_slots].iter_mut() {
            b.clear();
        }
        for lane in 0..tp.lanes {
            for (slot, &reg) in tp.conn_regs.iter().enumerate() {
                let vals = &in_vals[slot];
                regs[reg as usize] = if vals.len() == 1 { vals[0] } else { vals[lane] };
            }
            self.run_code(&tp.code, ctx, regs, &tp.name)?;
            for g in &tp.gather {
                match g {
                    GatherSpec::Push { slot, reg } => out_vals[*slot].push(regs[*reg as usize]),
                    GatherSpec::Fail(e) => return Err(e.clone()),
                }
            }
        }
        // Deliver outputs, in memlet order.
        for ow in &tp.out_writes {
            match ow {
                OutWrite::Fail(e) => return Err(e.clone()),
                OutWrite::Write { slot, plan } => {
                    let vals = std::mem::take(&mut out_vals[*slot]);
                    let r = self.write_plan(plan, ctx, &vals, &tp.name);
                    out_vals[*slot] = vals;
                    r?;
                }
            }
        }
        Ok(())
    }

    fn run_code(
        &mut self,
        code: &'p [Insn],
        ctx: &mut RunCtx<'_>,
        regs: &mut [Scalar],
        tasklet: &str,
    ) -> Result<(), ExecError> {
        let mut pc = 0usize;
        let mut site = 0u64;
        let mut sel = 0u64;
        while pc < code.len() {
            match &code[pc] {
                Insn::Stmt { site: s } => {
                    site = *s;
                    sel = 0;
                }
                Insn::Const { dst, val } => regs[*dst as usize] = *val,
                Insn::Mov { dst, src } => regs[*dst as usize] = regs[*src as usize],
                Insn::LoadSym { dst, sym } => match self.a.syms[sym.idx()] {
                    Some(v) => regs[*dst as usize] = Scalar::I64(v),
                    None => {
                        return Err(ExecError::UndefinedRef {
                            tasklet: tasklet.to_string(),
                            name: self.prog.syms.names[sym.idx()].clone(),
                        })
                    }
                },
                Insn::Bin { op, dst, a, b } => {
                    regs[*dst as usize] = apply_bin(*op, regs[*a as usize], regs[*b as usize])?;
                }
                Insn::Un { op, dst, a } => {
                    regs[*dst as usize] = apply_un(*op, regs[*a as usize]);
                }
                Insn::Cmp { op, dst, a, b } => {
                    regs[*dst as usize] =
                        Scalar::Bool(apply_cmp(*op, regs[*a as usize], regs[*b as usize]));
                }
                Insn::CoverSel { cond } => {
                    let cv = regs[*cond as usize].as_bool();
                    sel += 1;
                    ctx.cover_parts(&[site, sel, cv as u64]);
                }
                Insn::JumpIfFalse { cond, target } => {
                    if !regs[*cond as usize].as_bool() {
                        pc = *target as usize;
                        continue;
                    }
                }
                Insn::Jump { target } => {
                    pc = *target as usize;
                    continue;
                }
            }
            pc += 1;
        }
        Ok(())
    }

    // ----- monomorphic f64 fast path ------------------------------------

    /// True when every container the fast path touches is live with the
    /// `F64` dtype the specialization assumed. A failed guard routes the
    /// whole node through the generic interpreter, which then produces
    /// the exact generic behavior (including `UnknownData` errors or
    /// non-f64 semantics for caller-substituted buffers).
    fn fast_guards_hold(&self, guards: &[DataId]) -> bool {
        guards.iter().all(|d| {
            self.a.live[d.idx()]
                && matches!(&self.a.arrays[d.idx()], Some(a) if a.dtype() == DType::F64)
        })
    }

    fn exec_tasklet_fast(
        &mut self,
        tp: &'p TaskletPlan,
        fp: &'p FastTasklet,
        ctx: &mut RunCtx<'_>,
    ) -> Result<(), ExecError> {
        let mut fin = std::mem::take(&mut self.a.fin_vals);
        let mut fout = std::mem::take(&mut self.a.fout_vals);
        let mut regs_f = std::mem::take(&mut self.a.regs_f);
        let mut regs_b = std::mem::take(&mut self.a.regs_b);
        if fin.len() < tp.n_conn_slots {
            fin.resize_with(tp.n_conn_slots, Vec::new);
        }
        if fout.len() < tp.n_out_slots {
            fout.resize_with(tp.n_out_slots, Vec::new);
        }
        if regs_f.len() < fp.n_regs {
            regs_f.resize(fp.n_regs, 0.0);
        }
        if regs_b.len() < fp.n_regs {
            regs_b.resize(fp.n_regs, false);
        }
        let res = self.exec_tasklet_fast_inner(
            tp,
            fp,
            ctx,
            &mut fin,
            &mut fout,
            &mut regs_f,
            &mut regs_b,
        );
        self.a.fin_vals = fin;
        self.a.fout_vals = fout;
        self.a.regs_f = regs_f;
        self.a.regs_b = regs_b;
        res
    }

    /// Mirrors [`Executor::exec_tasklet_inner`] step for step (gather in
    /// memlet order with volume checks, lane loop, output delivery in
    /// memlet order) on raw `f64` values.
    #[allow(clippy::too_many_arguments)]
    fn exec_tasklet_fast_inner(
        &mut self,
        tp: &'p TaskletPlan,
        fp: &'p FastTasklet,
        ctx: &mut RunCtx<'_>,
        fin: &mut [Vec<f64>],
        fout: &mut [Vec<f64>],
        regs_f: &mut [f64],
        regs_b: &mut [bool],
    ) -> Result<(), ExecError> {
        for ip in &fp.inputs {
            let buf = &mut fin[ip.slot];
            buf.clear();
            self.read_plan_f64(&ip.plan, ctx, buf, &tp.name)?;
            if buf.len() != 1 && buf.len() != tp.lanes {
                return Err(ExecError::VolumeMismatch {
                    context: format!("tasklet '{}' input '{}'", tp.name, ip.conn),
                    expected: tp.lanes,
                    actual: buf.len(),
                });
            }
        }
        for b in fout[..tp.n_out_slots].iter_mut() {
            b.clear();
        }
        for lane in 0..tp.lanes {
            for (slot, &reg) in fp.conn_regs.iter().enumerate() {
                let vals = &fin[slot];
                regs_f[reg as usize] = if vals.len() == 1 { vals[0] } else { vals[lane] };
            }
            self.run_fcode(&fp.code, ctx, regs_f, regs_b, &tp.name)?;
            for g in &fp.gather {
                fout[g.slot].push(if g.from_bool {
                    regs_b[g.reg as usize] as u8 as f64
                } else {
                    regs_f[g.reg as usize]
                });
            }
        }
        for ow in &fp.out_writes {
            let vals = std::mem::take(&mut fout[ow.slot]);
            let r = self.write_plan_f64(&ow.plan, ctx, &vals, &tp.name);
            fout[ow.slot] = vals;
            r?;
        }
        Ok(())
    }

    fn run_fcode(
        &mut self,
        code: &'p [FInsn],
        ctx: &mut RunCtx<'_>,
        regs_f: &mut [f64],
        regs_b: &mut [bool],
        tasklet: &str,
    ) -> Result<(), ExecError> {
        let mut pc = 0usize;
        let mut site = 0u64;
        let mut sel = 0u64;
        while pc < code.len() {
            match &code[pc] {
                FInsn::Stmt { site: s } => {
                    site = *s;
                    sel = 0;
                }
                FInsn::ConstF { dst, val } => regs_f[*dst as usize] = *val,
                FInsn::ConstB { dst, val } => regs_b[*dst as usize] = *val,
                FInsn::MovF { dst, src } => regs_f[*dst as usize] = regs_f[*src as usize],
                FInsn::MovB { dst, src } => regs_b[*dst as usize] = regs_b[*src as usize],
                FInsn::LoadSymF { dst, sym } => match self.a.syms[sym.idx()] {
                    Some(v) => regs_f[*dst as usize] = v as f64,
                    None => {
                        return Err(ExecError::UndefinedRef {
                            tasklet: tasklet.to_string(),
                            name: self.prog.syms.names[sym.idx()].clone(),
                        })
                    }
                },
                FInsn::BinF { op, dst, a, b } => {
                    let (x, y) = (regs_f[*a as usize], regs_f[*b as usize]);
                    // The float branch of `apply_bin`, monomorphized.
                    regs_f[*dst as usize] = match op {
                        BinOp::Add => x + y,
                        BinOp::Sub => x - y,
                        BinOp::Mul => x * y,
                        BinOp::Div => x / y,
                        BinOp::Mod => x.rem_euclid(y),
                        BinOp::Min => x.min(y),
                        BinOp::Max => x.max(y),
                        BinOp::Pow => x.powf(y),
                        BinOp::And | BinOp::Or => unreachable!("lowered to AndB/OrB"),
                    };
                }
                FInsn::UnF { op, dst, a } => {
                    let x = regs_f[*a as usize];
                    regs_f[*dst as usize] = match op {
                        UnOp::Neg => -x,
                        UnOp::Abs => x.abs(),
                        UnOp::Sqrt => x.sqrt(),
                        UnOp::Exp => x.exp(),
                        UnOp::Log => x.ln(),
                        UnOp::Floor => x.floor(),
                        UnOp::Ceil => x.ceil(),
                        UnOp::Tanh => x.tanh(),
                        UnOp::Not => unreachable!("lowered to NotB"),
                    };
                }
                FInsn::CmpF { op, dst, a, b } => {
                    let (x, y) = (regs_f[*a as usize], regs_f[*b as usize]);
                    regs_b[*dst as usize] = match op {
                        CmpOp::Lt => x < y,
                        CmpOp::Le => x <= y,
                        CmpOp::Gt => x > y,
                        CmpOp::Ge => x >= y,
                        CmpOp::Eq => x == y,
                        CmpOp::Ne => x != y,
                    };
                }
                FInsn::NotB { dst, a } => regs_b[*dst as usize] = !regs_b[*a as usize],
                FInsn::AndB { dst, a, b } => {
                    regs_b[*dst as usize] = regs_b[*a as usize] && regs_b[*b as usize]
                }
                FInsn::OrB { dst, a, b } => {
                    regs_b[*dst as usize] = regs_b[*a as usize] || regs_b[*b as usize]
                }
                FInsn::BoolFromF { reg } => regs_b[*reg as usize] = regs_f[*reg as usize] != 0.0,
                FInsn::CoverSel { cond } => {
                    let cv = regs_b[*cond as usize];
                    sel += 1;
                    ctx.cover_parts(&[site, sel, cv as u64]);
                }
                FInsn::JumpIfFalse { cond, target } => {
                    if !regs_b[*cond as usize] {
                        pc = *target as usize;
                        continue;
                    }
                }
                FInsn::Jump { target } => {
                    pc = *target as usize;
                    continue;
                }
            }
            pc += 1;
        }
        Ok(())
    }

    /// True when a concrete subset is a dense, fully in-bounds block of
    /// the array: full-rank, unit-stride, non-empty in every dimension.
    /// Such reads/writes are contiguous per row and cannot raise
    /// out-of-bounds errors, so they take the bulk-copy route.
    fn dense_in_bounds(dims: &[ConcreteRange], shape: &[i64]) -> bool {
        dims.len() == shape.len()
            && dims
                .iter()
                .zip(shape)
                .all(|(d, &s)| d.step == 1 && d.start >= 0 && d.end <= s && d.start < d.end)
    }

    /// [`Executor::read_plan`] monomorphized to `f64`: same evaluation
    /// order, same errors, same step ticks — but elements move as raw
    /// `f64`, and dense in-bounds subsets copy whole contiguous rows
    /// (`extend_from_slice`, which the compiler vectorizes) instead of
    /// iterating points. Only called under [`Executor::fast_guards_hold`].
    fn read_plan_f64(
        &mut self,
        plan: &'p MemPlan,
        ctx: &mut RunCtx<'_>,
        out: &mut Vec<f64>,
        context: &str,
    ) -> Result<(), ExecError> {
        // Subscripts evaluate first (they need the mutable sym stack);
        // the array is then borrowed immutably for the copy — no
        // per-access `Option::take` round trip on the hot trial path.
        match &plan.kind {
            MemKind::Single(idxs) => {
                let mut point = std::mem::take(&mut self.a.point);
                point.clear();
                let evald = (|| -> Result<(), ExecError> {
                    for (start, end) in idxs {
                        let v = self.eval_idx(start)?;
                        self.check_end(v, end)?;
                        point.push(v);
                    }
                    Ok(())
                })();
                let res = evald.and_then(|()| {
                    let arr = self.a.arrays[plan.data.idx()]
                        .as_ref()
                        .expect("guarded slot holds a buffer");
                    let data = arr.as_f64_slice().expect("guarded dtype is F64");
                    let off = fuzzyflow_ir::DataDesc::linearize(arr.shape(), &point).ok_or_else(
                        || ExecError::OutOfBounds {
                            data: self.prog.data.names[plan.data.idx()].clone(),
                            point: point.clone(),
                            shape: arr.shape().to_vec(),
                        },
                    )?;
                    out.push(data[off]);
                    ctx.tick(1)
                });
                self.a.point = point;
                res
            }
            MemKind::Ranges(rps) => {
                let mut point = std::mem::take(&mut self.a.point);
                let mut dims = std::mem::take(&mut self.a.dims_buf);
                dims.clear();
                let evald = (|| -> Result<(), ExecError> {
                    for rp in rps {
                        let r = self.eval_range(rp)?;
                        dims.push(r);
                    }
                    Ok(())
                })();
                let res = evald.and_then(|()| {
                    let arr = self.a.arrays[plan.data.idx()]
                        .as_ref()
                        .expect("guarded slot holds a buffer");
                    let data = arr.as_f64_slice().expect("guarded dtype is F64");
                    if Self::dense_in_bounds(&dims, arr.shape()) {
                        for_each_dense_row(&dims, arr.shape(), &mut point, |off, len| {
                            out.extend_from_slice(&data[off..off + len]);
                        });
                    } else {
                        iter_points(&dims, &mut point, |p| {
                            let off = fuzzyflow_ir::DataDesc::linearize(arr.shape(), p)
                                .ok_or_else(|| ExecError::OutOfBounds {
                                    data: self.prog.data.names[plan.data.idx()].clone(),
                                    point: p.to_vec(),
                                    shape: arr.shape().to_vec(),
                                })?;
                            out.push(data[off]);
                            Ok(())
                        })?;
                    }
                    if out.is_empty() {
                        return Err(ExecError::VolumeMismatch {
                            context: context.to_string(),
                            expected: 1,
                            actual: 0,
                        });
                    }
                    ctx.tick(out.len() as u64)
                });
                self.a.point = point;
                self.a.dims_buf = dims;
                res
            }
        }
    }

    /// [`Executor::write_plan`] monomorphized to `f64`: identical error
    /// order (symbolic evaluation, volume, tick, bounds), WCR combined
    /// with the float path of `combine_wcr`, dense in-bounds no-WCR
    /// subsets stored as contiguous row copies.
    fn write_plan_f64(
        &mut self,
        plan: &'p MemPlan,
        ctx: &mut RunCtx<'_>,
        vals: &[f64],
        context: &str,
    ) -> Result<(), ExecError> {
        let mut point = std::mem::take(&mut self.a.point);
        let mut dims = std::mem::take(&mut self.a.dims_buf);
        // Subscripts evaluate first (mutable sym stack), then the array
        // is borrowed for the store; the program reference is copied out
        // so container names stay reachable alongside the buffer borrow.
        let prog = self.prog;
        let res = (|| -> Result<(), ExecError> {
            let volume = match &plan.kind {
                MemKind::Single(idxs) => {
                    point.clear();
                    for (start, end) in idxs {
                        let v = self.eval_idx(start)?;
                        self.check_end(v, end)?;
                        point.push(v);
                    }
                    1usize
                }
                MemKind::Ranges(rps) => {
                    dims.clear();
                    for rp in rps {
                        let r = self.eval_range(rp)?;
                        dims.push(r);
                    }
                    dims.iter().map(|d| d.len()).product()
                }
            };
            if volume != vals.len() {
                return Err(ExecError::VolumeMismatch {
                    context: context.to_string(),
                    expected: volume,
                    actual: vals.len(),
                });
            }
            ctx.tick(volume as u64)?;
            let i = plan.data.idx();
            // Record the dirty span before storing — a conservative
            // superset of what lands even if the store traps mid-subset.
            let (dlo, dhi) = {
                let arr = self.a.arrays[i]
                    .as_ref()
                    .expect("guarded slot holds a buffer");
                match &plan.kind {
                    MemKind::Single(_) => {
                        match fuzzyflow_ir::DataDesc::linearize(arr.shape(), &point) {
                            Some(off) => (off, off + 1),
                            None => (0, 0),
                        }
                    }
                    MemKind::Ranges(_) => {
                        range_write_bounds(&dims, arr.shape(), arr.len()).unwrap_or((0, 0))
                    }
                }
            };
            self.a.dirty[i].mark(dlo, dhi);
            let name = &prog.data.names[i];
            let arr = self.a.arrays[i]
                .as_mut()
                .expect("guarded slot holds a buffer");
            let (shape, data) = arr.as_f64_parts_mut().expect("guarded dtype is F64");
            let combine = |old: f64, new: f64| -> f64 {
                match plan.wcr {
                    None => new,
                    Some(Wcr::Sum) => old + new,
                    Some(Wcr::Prod) => old * new,
                    Some(Wcr::Max) => old.max(new),
                    Some(Wcr::Min) => old.min(new),
                }
            };
            match &plan.kind {
                MemKind::Single(_) => {
                    let off =
                        fuzzyflow_ir::DataDesc::linearize(shape, &point).ok_or_else(|| {
                            ExecError::OutOfBounds {
                                data: name.clone(),
                                point: point.clone(),
                                shape: shape.to_vec(),
                            }
                        })?;
                    data[off] = combine(data[off], vals[0]);
                    Ok(())
                }
                MemKind::Ranges(_) => {
                    if plan.wcr.is_none() && Self::dense_in_bounds(&dims, shape) {
                        let mut k = 0usize;
                        for_each_dense_row(&dims, shape, &mut point, |off, len| {
                            data[off..off + len].copy_from_slice(&vals[k..k + len]);
                            k += len;
                        });
                        return Ok(());
                    }
                    let mut k = 0usize;
                    iter_points(&dims, &mut point, |p| {
                        let off = fuzzyflow_ir::DataDesc::linearize(shape, p).ok_or_else(|| {
                            ExecError::OutOfBounds {
                                data: name.clone(),
                                point: p.to_vec(),
                                shape: shape.to_vec(),
                            }
                        })?;
                        let v = vals[k];
                        k += 1;
                        data[off] = combine(data[off], v);
                        Ok(())
                    })
                }
            }
        })();
        let res = self.slop_rescue(
            res,
            plan,
            plan.data.idx(),
            &point,
            ctx,
            vals.first().map(|&v| Scalar::F64(v)),
        );
        self.a.point = point;
        self.a.dims_buf = dims;
        res
    }

    fn exec_library(&mut self, lp: &'p LibraryPlan, ctx: &mut RunCtx<'_>) -> Result<(), ExecError> {
        let mut in_vals = std::mem::take(&mut self.a.in_vals);
        let mut lib_dims = std::mem::take(&mut self.a.lib_dims);
        if in_vals.len() < lp.n_slots {
            in_vals.resize_with(lp.n_slots, Vec::new);
        }
        if lib_dims.len() < lp.n_slots {
            lib_dims.resize_with(lp.n_slots, Vec::new);
        }
        let res = self.exec_library_inner(lp, ctx, &mut in_vals, &mut lib_dims);
        self.a.in_vals = in_vals;
        self.a.lib_dims = lib_dims;
        res
    }

    fn exec_library_inner(
        &mut self,
        lp: &'p LibraryPlan,
        ctx: &mut RunCtx<'_>,
        in_vals: &mut [Vec<Scalar>],
        lib_dims: &mut [Vec<i64>],
    ) -> Result<(), ExecError> {
        for li in &lp.inputs {
            match li {
                LibInput::Fail(e) => return Err(e.clone()),
                LibInput::Read { slot, plan } => {
                    // Block dims evaluate before the read, like the
                    // tree-walk engine's `block_dims` call.
                    let dims = &mut lib_dims[*slot];
                    dims.clear();
                    self.eval_block_dims(plan, dims)?;
                    let buf = &mut in_vals[*slot];
                    buf.clear();
                    self.read_plan(plan, ctx, buf, &lp.name)?;
                }
            }
        }
        let arg = |i: usize| -> Result<(&Vec<i64>, &Vec<Scalar>), ExecError> {
            match &lp.args[i] {
                Ok(slot) => Ok((&lib_dims[*slot], &in_vals[*slot])),
                Err(e) => Err(e.clone()),
            }
        };

        let out: Vec<Scalar> = match &lp.op {
            LibraryOp::MatMul => {
                let (da, a) = arg(0)?;
                let (db, b) = arg(1)?;
                let c = matmul(&lp.name, da, a, db, b)?;
                ctx.tick(c.len() as u64)?;
                c
            }
            LibraryOp::Transpose => {
                let (d, v) = arg(0)?;
                if d.len() != 2 {
                    return Err(ExecError::ShapeError {
                        node: lp.name.clone(),
                        detail: format!("transpose expects 2-D input, got {d:?}"),
                    });
                }
                let (r, cdim) = (d[0] as usize, d[1] as usize);
                let mut out = vec![Scalar::F64(0.0); v.len()];
                for i in 0..r {
                    for j in 0..cdim {
                        out[j * r + i] = v[i * cdim + j];
                    }
                }
                out
            }
            LibraryOp::Reduce { op, axis } => {
                let (d, v) = arg(0)?;
                reduce(&lp.name, *op, *axis, d, v)?
            }
            LibraryOp::Copy => {
                let (_, v) = arg(0)?;
                v.clone()
            }
            LibraryOp::Softmax => {
                let (d, v) = arg(0)?;
                softmax(d, v)
            }
            LibraryOp::Comm(comm_op) => {
                let (d, v) = arg(0)?;
                let handler = ctx.comm.ok_or_else(|| ExecError::NoCommHandler {
                    node: lp.name.clone(),
                })?;
                let rank = self
                    .prog
                    .sym_id("rank")
                    .and_then(|id| self.a.syms[id.idx()])
                    .unwrap_or(0);
                let dtype = lp
                    .first_in_data
                    .filter(|id| self.a.live[id.idx()])
                    .and_then(|id| self.a.arrays[id.idx()].as_ref())
                    .map(|a| a.dtype())
                    .unwrap_or(DType::F64);
                let mut buf = ArrayValue::zeros(dtype, d.clone());
                for (i, &s) in v.iter().enumerate() {
                    buf.set(i, s);
                }
                let result = handler.collective(&lp.name, comm_op, rank, &buf)?;
                (0..result.len()).map(|i| result.get(i)).collect()
            }
        };

        for ow in &lp.out_writes {
            match ow {
                LibOutWrite::Fail(e) => return Err(e.clone()),
                LibOutWrite::Write(plan) => self.write_plan(plan, ctx, &out, &lp.name)?,
            }
        }
        Ok(())
    }

    // ----- memlet access ------------------------------------------------

    /// Reads the elements a memlet delivers into `out`, with the tree-walk
    /// engine's error order: unknown data, then symbolic evaluation, then
    /// out-of-bounds, then empty-volume, then the step tick.
    fn read_plan(
        &mut self,
        plan: &'p MemPlan,
        ctx: &mut RunCtx<'_>,
        out: &mut Vec<Scalar>,
        context: &str,
    ) -> Result<(), ExecError> {
        let i = plan.data.idx();
        if !self.a.live[i] {
            return Err(ExecError::UnknownData(self.prog.data.names[i].clone()));
        }
        let arr = self.a.arrays[i].take().expect("live slot holds a buffer");
        let mut point = std::mem::take(&mut self.a.point);
        let mut dims = std::mem::take(&mut self.a.dims_buf);
        let res = self.read_plan_inner(plan, ctx, out, context, &arr, &mut point, &mut dims);
        self.a.point = point;
        self.a.dims_buf = dims;
        self.a.arrays[i] = Some(arr);
        res
    }

    #[allow(clippy::too_many_arguments)]
    fn read_plan_inner(
        &mut self,
        plan: &'p MemPlan,
        ctx: &mut RunCtx<'_>,
        out: &mut Vec<Scalar>,
        context: &str,
        arr: &ArrayValue,
        point: &mut Vec<i64>,
        dims: &mut Vec<ConcreteRange>,
    ) -> Result<(), ExecError> {
        match &plan.kind {
            MemKind::Single(idxs) => {
                point.clear();
                for (start, end) in idxs {
                    let v = self.eval_idx(start)?;
                    self.check_end(v, end)?;
                    point.push(v);
                }
                let off =
                    fuzzyflow_ir::DataDesc::linearize(arr.shape(), point).ok_or_else(|| {
                        ExecError::OutOfBounds {
                            data: self.prog.data.names[plan.data.idx()].clone(),
                            point: point.clone(),
                            shape: arr.shape().to_vec(),
                        }
                    })?;
                out.push(arr.get(off));
                ctx.tick(1)?;
            }
            MemKind::Ranges(rps) => {
                dims.clear();
                for rp in rps {
                    let r = self.eval_range(rp)?;
                    dims.push(r);
                }
                iter_points(dims, point, |p| {
                    let off =
                        fuzzyflow_ir::DataDesc::linearize(arr.shape(), p).ok_or_else(|| {
                            ExecError::OutOfBounds {
                                data: self.prog.data.names[plan.data.idx()].clone(),
                                point: p.to_vec(),
                                shape: arr.shape().to_vec(),
                            }
                        })?;
                    out.push(arr.get(off));
                    Ok(())
                })?;
                if out.is_empty() {
                    return Err(ExecError::VolumeMismatch {
                        context: context.to_string(),
                        expected: 1,
                        actual: 0,
                    });
                }
                ctx.tick(out.len() as u64)?;
            }
        }
        Ok(())
    }

    /// Writes `vals` through a memlet, applying WCR; error order matches
    /// the tree-walk engine: symbolic evaluation, then volume mismatch,
    /// then the tick, then unknown data, then per-point bounds.
    fn write_plan(
        &mut self,
        plan: &'p MemPlan,
        ctx: &mut RunCtx<'_>,
        vals: &[Scalar],
        context: &str,
    ) -> Result<(), ExecError> {
        let mut point = std::mem::take(&mut self.a.point);
        let mut dims = std::mem::take(&mut self.a.dims_buf);
        let res = self.write_plan_inner(plan, ctx, vals, context, &mut point, &mut dims);
        self.a.point = point;
        self.a.dims_buf = dims;
        res
    }

    fn write_plan_inner(
        &mut self,
        plan: &'p MemPlan,
        ctx: &mut RunCtx<'_>,
        vals: &[Scalar],
        context: &str,
        point: &mut Vec<i64>,
        dims: &mut Vec<ConcreteRange>,
    ) -> Result<(), ExecError> {
        let volume = match &plan.kind {
            MemKind::Single(idxs) => {
                point.clear();
                for (start, end) in idxs {
                    let v = self.eval_idx(start)?;
                    self.check_end(v, end)?;
                    point.push(v);
                }
                1usize
            }
            MemKind::Ranges(rps) => {
                dims.clear();
                for rp in rps {
                    let r = self.eval_range(rp)?;
                    dims.push(r);
                }
                dims.iter().map(|d| d.len()).product()
            }
        };
        if volume != vals.len() {
            return Err(ExecError::VolumeMismatch {
                context: context.to_string(),
                expected: volume,
                actual: vals.len(),
            });
        }
        ctx.tick(volume as u64)?;
        let i = plan.data.idx();
        if !self.a.live[i] {
            return Err(ExecError::UnknownData(self.prog.data.names[i].clone()));
        }
        let mut arr = self.a.arrays[i].take().expect("live slot holds a buffer");
        // Record the dirty span before storing — a conservative superset
        // of what lands even if the store traps mid-subset.
        match &plan.kind {
            MemKind::Single(_) => {
                if let Some(off) = fuzzyflow_ir::DataDesc::linearize(arr.shape(), point) {
                    self.a.dirty[i].mark(off, off + 1);
                }
            }
            MemKind::Ranges(_) => {
                if let Some((lo, hi)) = range_write_bounds(dims, arr.shape(), arr.len()) {
                    self.a.dirty[i].mark(lo, hi);
                }
            }
        }
        let name = &self.prog.data.names[i];
        let res =
            (|| -> Result<(), ExecError> {
                match &plan.kind {
                    MemKind::Single(_) => {
                        let off = fuzzyflow_ir::DataDesc::linearize(arr.shape(), point)
                            .ok_or_else(|| ExecError::OutOfBounds {
                                data: name.clone(),
                                point: point.clone(),
                                shape: arr.shape().to_vec(),
                            })?;
                        let stored = match plan.wcr {
                            None => vals[0],
                            Some(wcr) => combine_wcr(wcr, arr.get(off), vals[0]),
                        };
                        arr.set(off, stored);
                        Ok(())
                    }
                    MemKind::Ranges(_) => {
                        let mut k = 0usize;
                        iter_points(dims, point, |p| {
                            let off = fuzzyflow_ir::DataDesc::linearize(arr.shape(), p)
                                .ok_or_else(|| ExecError::OutOfBounds {
                                    data: name.clone(),
                                    point: p.to_vec(),
                                    shape: arr.shape().to_vec(),
                                })?;
                            let v = vals[k];
                            k += 1;
                            let stored = match plan.wcr {
                                None => v,
                                Some(wcr) => combine_wcr(wcr, arr.get(off), v),
                            };
                            arr.set(off, stored);
                            Ok(())
                        })
                    }
                }
            })();
        self.a.arrays[i] = Some(arr);
        self.slop_rescue(res, plan, i, point, ctx, vals.first().copied())
    }

    /// Out-of-bounds slop mode ([`ExecOptions::oob_slop`]): re-model a
    /// trapped single-element, non-WCR store as a native wild store. A
    /// write that folds back into the payload silently corrupts a
    /// neighbouring element (and is marked dirty); one landing in a
    /// guard plane records the faulting element for post-run
    /// [`ExecError::GuardViolation`] reporting; anything further out
    /// keeps the [`ExecError::OutOfBounds`] trap.
    fn slop_rescue(
        &mut self,
        res: Result<(), ExecError>,
        plan: &MemPlan,
        i: usize,
        point: &[i64],
        ctx: &RunCtx<'_>,
        val: Option<Scalar>,
    ) -> Result<(), ExecError> {
        if !ctx.oob_slop
            || plan.wcr.is_some()
            || !matches!(&plan.kind, MemKind::Single(_))
            || !matches!(res, Err(ExecError::OutOfBounds { .. }))
        {
            return res;
        }
        let Some(val) = val else { return res };
        let arr = self.a.arrays[i]
            .as_mut()
            .expect("slot restored after the store attempt");
        let Some(off) = signed_linearize(arr.shape(), point) else {
            return res;
        };
        if !arr.poke_linear(off, val) {
            return res;
        }
        if off >= 0 && (off as usize) < arr.len() {
            self.a.dirty[i].mark(off as usize, off as usize + 1);
        } else if self.a.guard_fault.is_none() {
            self.a.guard_fault = Some((i, point.to_vec()));
        }
        Ok(())
    }

    /// Per-dimension block lengths of a memlet's concrete subset
    /// (tree-walk `block_dims`), evaluated without touching the array.
    fn eval_block_dims(&mut self, plan: &'p MemPlan, out: &mut Vec<i64>) -> Result<(), ExecError> {
        match &plan.kind {
            MemKind::Single(idxs) => {
                for (start, end) in idxs {
                    let v = self.eval_idx(start)?;
                    self.check_end(v, end)?;
                    out.push(1);
                }
            }
            MemKind::Ranges(rps) => {
                for rp in rps {
                    let r = self.eval_range(rp)?;
                    out.push(r.len() as i64);
                }
            }
        }
        Ok(())
    }

    // ----- expression evaluation ----------------------------------------

    /// Validates a single-index dimension's end expression given the
    /// start's value; see [`EndCheck`] for the parity argument.
    #[inline]
    fn check_end(&mut self, start: i64, end: &EndCheck) -> Result<(), ExecError> {
        match end {
            EndCheck::IncOfStart => {
                if start == i64::MAX {
                    return Err(ExecError::Sym(SymError::Overflow));
                }
                Ok(())
            }
            EndCheck::Eval(ic) => self.eval_idx(ic).map(|_| ()),
        }
    }

    #[inline]
    fn eval_idx(&mut self, ic: &IdxCode) -> Result<i64, ExecError> {
        match ic {
            IdxCode::Const(v) => Ok(*v),
            IdxCode::Sym(id) => self.a.syms[id.idx()].ok_or_else(|| {
                ExecError::Sym(SymError::Unbound(self.prog.syms.names[id.idx()].clone()))
            }),
            IdxCode::Affine(terms) => {
                let mut acc = 0i64;
                for (k, t) in terms.iter().enumerate() {
                    let v = match t.sym {
                        None => t.coeff,
                        Some(id) => {
                            let s = self.a.syms[id.idx()].ok_or_else(|| {
                                ExecError::Sym(SymError::Unbound(
                                    self.prog.syms.names[id.idx()].clone(),
                                ))
                            })?;
                            t.coeff
                                .checked_mul(s)
                                .ok_or(ExecError::Sym(SymError::Overflow))?
                        }
                    };
                    acc = if k == 0 {
                        v
                    } else if t.sub {
                        acc.checked_sub(v)
                            .ok_or(ExecError::Sym(SymError::Overflow))?
                    } else {
                        acc.checked_add(v)
                            .ok_or(ExecError::Sym(SymError::Overflow))?
                    };
                }
                Ok(acc)
            }
            IdxCode::Code(code) => self.eval_code(code),
        }
    }

    fn eval_code(&mut self, code: &SymCode) -> Result<i64, ExecError> {
        let mut stack = std::mem::take(&mut self.a.stack);
        stack.clear();
        let res = eval_sym_ops(&code.ops, &self.a.syms, &self.prog.syms.names, &mut stack);
        self.a.stack = stack;
        res
    }

    fn eval_range(&mut self, rp: &RangePlan) -> Result<ConcreteRange, ExecError> {
        let start = self.eval_idx(&rp.start)?;
        let end = self.eval_idx(&rp.end)?;
        let step = self.eval_idx(&rp.step)?;
        if step <= 0 {
            return Err(ExecError::Sym(SymError::InvalidStep(step)));
        }
        Ok(ConcreteRange { start, end, step })
    }

    fn eval_cond(&mut self, c: &CondPlan) -> Result<bool, ExecError> {
        Ok(match c {
            CondPlan::True => true,
            CondPlan::Cmp(op, a, b) => {
                let (x, y) = (self.eval_idx(a)?, self.eval_idx(b)?);
                match op {
                    CmpOp::Lt => x < y,
                    CmpOp::Le => x <= y,
                    CmpOp::Gt => x > y,
                    CmpOp::Ge => x >= y,
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                }
            }
            CondPlan::Not(x) => !self.eval_cond(x)?,
            CondPlan::And(l, r) => self.eval_cond(l)? && self.eval_cond(r)?,
            CondPlan::Or(l, r) => self.eval_cond(l)? || self.eval_cond(r)?,
        })
    }
}

/// Row-major linear offset of `point` against `shape` *without* bounds
/// checks — where a wild store would land natively. `None` on rank
/// mismatch or `i64` overflow.
fn signed_linearize(shape: &[i64], point: &[i64]) -> Option<i64> {
    if shape.len() != point.len() {
        return None;
    }
    let mut off = 0i128;
    let mut stride = 1i128;
    for d in (0..shape.len()).rev() {
        off += point[d] as i128 * stride;
        stride *= shape[d] as i128;
    }
    i64::try_from(off).ok()
}

/// Conservative half-open linear bounds covering every element a range
/// subset can write: the row-major offsets of the component-wise minimum
/// and maximum points (concrete ranges have positive steps and row-major
/// strides are non-negative, so these bound all visited points), clamped
/// to the payload. `None` on rank mismatch — no point linearizes then,
/// so nothing is written.
fn range_write_bounds(dims: &[ConcreteRange], shape: &[i64], len: usize) -> Option<(usize, usize)> {
    if dims.len() != shape.len() {
        return None;
    }
    let mut stride = 1i128;
    let mut lo = 0i128;
    let mut hi = 0i128;
    for d in (0..dims.len()).rev() {
        let r = &dims[d];
        let n = r.len() as i128;
        if n == 0 {
            return Some((0, 0));
        }
        lo += (r.start as i128) * stride;
        hi += (r.start as i128 + (n - 1) * r.step as i128) * stride;
        stride *= shape[d] as i128;
    }
    let lo = lo.clamp(0, len as i128) as usize;
    let hi = (hi + 1).clamp(0, len as i128) as usize;
    Some((lo, hi.max(lo)))
}

/// Row-major iteration over the contiguous rows of a dense, fully
/// in-bounds subset (see [`Executor::dense_in_bounds`]): calls
/// `f(offset, len)` once per innermost-dimension run, in the exact order
/// [`iter_points`] would visit the same elements. The caller's point
/// buffer holds the outer coordinates.
fn for_each_dense_row(
    dims: &[ConcreteRange],
    shape: &[i64],
    point: &mut Vec<i64>,
    mut f: impl FnMut(usize, usize),
) {
    let rank = dims.len();
    debug_assert!(rank >= 1, "dense subsets are full-rank");
    let row = &dims[rank - 1];
    let row_len = (row.end - row.start) as usize;
    // Row-major strides of the array.
    let mut strides = vec![1i64; rank];
    for d in (0..rank - 1).rev() {
        strides[d] = strides[d + 1] * shape[d + 1];
    }
    point.clear();
    point.extend(dims[..rank - 1].iter().map(|d| d.start));
    loop {
        let mut base = row.start * strides[rank - 1];
        for d in 0..rank - 1 {
            base += point[d] * strides[d];
        }
        f(base as usize, row_len);
        // Advance the odometer over the outer dimensions.
        let mut d = rank - 1;
        loop {
            if d == 0 {
                return;
            }
            d -= 1;
            point[d] += 1;
            if point[d] < dims[d].end {
                break;
            }
            point[d] = dims[d].start;
        }
    }
}

/// Row-major iteration over the points of concrete ranges, reusing the
/// caller's point buffer (no per-point allocation). Calls `f` for every
/// covered multi-index; empty ranges yield no points, a zero-rank subset
/// yields exactly one.
fn iter_points(
    dims: &[ConcreteRange],
    point: &mut Vec<i64>,
    mut f: impl FnMut(&[i64]) -> Result<(), ExecError>,
) -> Result<(), ExecError> {
    if dims.iter().any(|d| d.is_empty()) {
        return Ok(());
    }
    point.clear();
    point.extend(dims.iter().map(|d| d.start));
    loop {
        f(point)?;
        // Advance odometer from the last dimension.
        let mut d = dims.len();
        loop {
            if d == 0 {
                return Ok(());
            }
            d -= 1;
            point[d] += dims[d].step;
            if point[d] < dims[d].end {
                break;
            }
            point[d] = dims[d].start;
        }
    }
}

/// Exact interval analysis of one fused affine subscript over a concrete
/// iteration box, mirroring the left-to-right checked evaluation of
/// [`Executor::eval_idx`]: per-term products and every prefix sum are
/// bounded over the box (affine functions attain their extremes at box
/// corners), so a `Some` result proves no element's evaluation can
/// overflow or hit an unbound symbol. Returns `(value at the box origin,
/// interval low, interval high)` and fills `net` with the subscript's net
/// coefficient per map dimension. `None` means "might error somewhere" —
/// the caller falls back to per-element execution.
fn analyze_fused_idx(
    fidx: &FusedIdx,
    dims: &[ConcreteRange],
    syms: &[Option<i64>],
    net: &mut [i128],
) -> Option<(i64, i128, i128)> {
    for n in net.iter_mut() {
        *n = 0;
    }
    let fits = |v: i128| v >= i64::MIN as i128 && v <= i64::MAX as i128;
    let (mut lo, mut hi, mut base) = (0i128, 0i128, 0i128);
    for (k, t) in fidx.terms.iter().enumerate() {
        let c = t.coeff as i128;
        let (vlo, vhi, vbase, pd) = match t.var {
            FusedVar::None => (c, c, c, None),
            FusedVar::Outer(id) => {
                let s = syms[id.idx()]? as i128;
                let p = c * s;
                if !fits(p) {
                    return None;
                }
                (p, p, p, None)
            }
            FusedVar::Param(d) => {
                let r = &dims[d];
                let first = r.start as i128;
                let last = first + (r.len() as i128 - 1) * r.step as i128;
                let (p1, p2) = (c * first, c * last);
                if !fits(p1) || !fits(p2) {
                    return None;
                }
                (p1.min(p2), p1.max(p2), p1, Some(d))
            }
        };
        if k == 0 {
            (lo, hi, base) = (vlo, vhi, vbase);
        } else if t.sub {
            (lo, hi, base) = (lo - vhi, hi - vlo, base - vbase);
        } else {
            (lo, hi, base) = (lo + vlo, hi + vhi, base + vbase);
        }
        if !fits(lo) || !fits(hi) {
            return None;
        }
        if let Some(d) = pd {
            net[d] += if t.sub && k > 0 { -c } else { c };
        }
    }
    Some((base as i64, lo, hi))
}

/// Cached (or freshly published) native code for a statically eligible
/// kernel. `None` when the OS refuses executable pages — the caller
/// falls back to the bytecode loops. Probing is lock-free; concurrent
/// first-compilers may both emit, the insert keeps one copy.
fn jit_code_for(
    fk: &FusedKernel,
    lay: &crate::jit::lower::JitLayout,
) -> Option<std::sync::Arc<crate::jit::JitCode>> {
    if let Some(code) = crate::jit::cache::lookup(fk.jit_key) {
        return Some(code);
    }
    let bytes = crate::jit::lower::emit(fk, lay);
    crate::jit::cache::count_emission(bytes.len());
    let code = crate::jit::JitCode::publish(&bytes)?;
    Some(crate::jit::cache::insert(fk.jit_key, code))
}

/// Runtime half of packed-JIT eligibility: the emitted lane-pair loads
/// and stores assume the synthetic lane dimension is walked at unit
/// stride (broadcast inputs at stride 0). A run whose concrete subsets
/// spread the lanes any other way — including a statically spanned read
/// that collapses to volume 1 at this shape — falls back per-kernel to
/// the bytecode loops (`JitReject::NonUnitStrideLanes`). Scalar blobs
/// have no lane dimension and always pass.
fn jit_lane_strides_ok(
    fk: &FusedKernel,
    lay: &crate::jit::lower::JitLayout,
    strides: &[i64],
    n_dims: usize,
) -> bool {
    if lay.lanes == 1 {
        return true;
    }
    let lane = n_dims - 1;
    let n_in = fk.inputs.len();
    for (ii, slot) in lay.in_ptr.iter().enumerate() {
        if slot.is_none() {
            continue;
        }
        let st = strides[ii * n_dims + lane];
        if st != if lay.in_bcast[ii] { 0 } else { 1 } {
            return false;
        }
    }
    (0..fk.outputs.len()).all(|oi| strides[(n_in + oi) * n_dims + lane] == 1)
}

/// Drives a natively compiled kernel over the iteration box: the Rust
/// side walks the outer odometer exactly like [`run_fused_loop`] and the
/// emitted code executes one inner row per call, reading pointers,
/// strides and parameter values from the frame (see
/// [`crate::jit::lower::JitLayout`]). `inner` is the row dimension —
/// the innermost dim for scalar blobs, the innermost *real* dim for
/// packed blobs (which unroll the synthetic lane dim internally).
/// Bit-identical to the bytecode loops by the lowering's construction;
/// the precheck's no-error proof is what makes handing raw row pointers
/// to machine code sound.
#[allow(clippy::too_many_arguments)]
fn run_fused_jit(
    fk: &FusedKernel,
    lay: &crate::jit::lower::JitLayout,
    code: &crate::jit::JitCode,
    inner: usize,
    dims: &[ConcreteRange],
    bases: &[i64],
    strides: &[i64],
    syms: &[Option<i64>],
    ins: &[&[f64]],
    outs: &mut [&mut [f64]],
    frame: &mut Vec<u64>,
    k: &mut [i64],
) {
    let n_dims = dims.len();
    let inner_r = dims[inner];
    let n_in = fk.inputs.len();
    frame.clear();
    frame.resize(lay.frame_words, 0);
    frame[0] = inner_r.len() as u64;
    frame[1] = inner_r.start as u64;
    frame[2] = inner_r.step as u64;
    for (ii, slot) in lay.in_ptr.iter().enumerate() {
        if let Some(slot) = slot {
            frame[lay.stride_word(*slot)] = (strides[ii * n_dims + inner] * 8) as u64;
        }
    }
    for (oi, slot) in lay.out_ptr.iter().enumerate() {
        frame[lay.stride_word(*slot)] = (strides[(n_in + oi) * n_dims + inner] * 8) as u64;
    }
    for (si, sym) in lay.sym_slots.iter().enumerate() {
        let v = syms[sym.idx()].expect("precheck resolved symbol") as f64;
        frame[lay.sym_word(si)] = v.to_bits();
    }
    // Pointer and outer-parameter words are maintained incrementally:
    // written once for the box origin (`k` arrives all-zero), then
    // stepped inside the odometer — an incrementing digit adds one
    // stride to each pointer word, a rolling digit takes back the
    // strides it accumulated. Per row that is O(accesses) work on the
    // digits that changed instead of an O(accesses × dims) offset
    // recompute; word values stay bit-identical to the recompute
    // because stride sums and parameter values are exact in i64.
    debug_assert!(k.iter().all(|&v| v == 0), "odometer scratch not reset");
    for (ii, slot) in lay.in_ptr.iter().enumerate() {
        let Some(slot) = slot else { continue };
        // SAFETY: the row's first element is an accessed element of the
        // box, proven in-bounds by the precheck.
        frame[lay.ptr_word(*slot)] = unsafe { ins[ii].as_ptr().offset(bases[ii] as isize) } as u64;
    }
    for (oi, slot) in lay.out_ptr.iter().enumerate() {
        // SAFETY: as above, for the write set.
        frame[lay.ptr_word(*slot)] =
            unsafe { outs[oi].as_mut_ptr().offset(bases[n_in + oi] as isize) } as u64;
    }
    for d in 0..inner {
        frame[lay.param_word(d)] = (dims[d].start as f64).to_bits();
    }
    // SAFETY: the entry was emitted for exactly this layout (the kernel
    // carries both), and the mapping stays RX while `code`'s Arc lives.
    let f = unsafe { code.entry() };
    'rows: loop {
        // SAFETY: every pointer slot addresses live, in-bounds f64
        // storage for its row (maintained by the odometer below) and the
        // read and write sets are disjoint by fusion's construction.
        unsafe { f(frame.as_mut_ptr()) };
        let mut d = inner;
        loop {
            if d == 0 {
                break 'rows;
            }
            d -= 1;
            k[d] += 1;
            let rolled = k[d] >= dims[d].len() as i64;
            // +1 stride on an increment; a roll walks the digit back to
            // the start of its dimension (len - 1 strides, exactly what
            // the increments deposited).
            let units = if rolled { 1 - k[d] } else { 1 };
            for (ii, slot) in lay.in_ptr.iter().enumerate() {
                let Some(slot) = slot else { continue };
                let w = lay.ptr_word(*slot);
                frame[w] = frame[w].wrapping_add((units * strides[ii * n_dims + d] * 8) as u64);
            }
            for (oi, slot) in lay.out_ptr.iter().enumerate() {
                let w = lay.ptr_word(*slot);
                frame[w] =
                    frame[w].wrapping_add((units * strides[(n_in + oi) * n_dims + d] * 8) as u64);
            }
            if rolled {
                k[d] = 0;
            }
            frame[lay.param_word(d)] = ((dims[d].start + k[d] * dims[d].step) as f64).to_bits();
            if !rolled {
                break;
            }
        }
    }
}

/// The strength-reduced, lane-chunked fused loop: iterates the outer
/// dimensions with an odometer, steps raw linear offsets by constant
/// strides, and runs the straight-line body over chunks of [`LANES`]
/// elements of the innermost dimension (unit-stride accesses move as
/// slice copies; scatter loops run in lane order, so repeated offsets and
/// WCR accumulation combine in exact element order).
#[allow(clippy::too_many_arguments)]
fn run_fused_loop(
    fk: &FusedKernel,
    dims: &[ConcreteRange],
    bases: &[i64],
    strides: &[i64],
    syms: &[Option<i64>],
    ins: &[&[f64]],
    outs: &mut [&mut [f64]],
    rf: &mut [[f64; LANES]],
    rb: &mut [[bool; LANES]],
    scratch: (&mut [i64], &mut [f64], &mut [i64]),
) {
    let n_dims = dims.len();
    let inner = n_dims - 1;
    let inner_r = dims[inner];
    let inner_len = inner_r.len();
    let n_in = fk.inputs.len();
    let (k, outer_vals, row) = scratch;
    'rows: loop {
        for (a, r) in row.iter_mut().enumerate() {
            let mut off = bases[a];
            for d in 0..inner {
                off += k[d] * strides[a * n_dims + d];
            }
            *r = off;
        }
        for d in 0..inner {
            outer_vals[d] = (dims[d].start + k[d] * dims[d].step) as f64;
        }
        let mut j = 0usize;
        while j < inner_len {
            let cl = LANES.min(inner_len - j);
            let mut inner_vals = [0f64; LANES];
            for (l, v) in inner_vals[..cl].iter_mut().enumerate() {
                *v = (inner_r.start + (j + l) as i64 * inner_r.step) as f64;
            }
            for (ii, s) in ins.iter().enumerate() {
                let Some(reg) = fk.in_regs[ii] else { continue };
                let st = strides[ii * n_dims + inner];
                let base = row[ii];
                let lanes = &mut rf[reg as usize];
                if st == 1 {
                    let off = (base + j as i64) as usize;
                    lanes[..cl].copy_from_slice(&s[off..off + cl]);
                } else if st == 0 {
                    let v = s[base as usize];
                    lanes[..cl].fill(v);
                } else {
                    for (l, lane) in lanes[..cl].iter_mut().enumerate() {
                        *lane = s[(base + (j + l) as i64 * st) as usize];
                    }
                }
            }
            run_fk_chunk(&fk.code, rf, rb, syms, outer_vals, &inner_vals, inner);
            for (oi, acc) in fk.outputs.iter().enumerate() {
                let (reg, from_bool) = fk.out_regs[oi];
                let st = strides[(n_in + oi) * n_dims + inner];
                let base = row[n_in + oi];
                let out = &mut *outs[oi];
                if acc.wcr.is_none() && !from_bool && st == 1 {
                    let off = (base + j as i64) as usize;
                    out[off..off + cl].copy_from_slice(&rf[reg as usize][..cl]);
                    continue;
                }
                for l in 0..cl {
                    let off = (base + (j + l) as i64 * st) as usize;
                    let v = if from_bool {
                        rb[reg as usize][l] as u8 as f64
                    } else {
                        rf[reg as usize][l]
                    };
                    out[off] = match acc.wcr {
                        None => v,
                        Some(Wcr::Sum) => out[off] + v,
                        Some(Wcr::Prod) => out[off] * v,
                        Some(Wcr::Max) => out[off].max(v),
                        Some(Wcr::Min) => out[off].min(v),
                    };
                }
            }
            j += cl;
        }
        let mut d = inner;
        loop {
            if d == 0 {
                break 'rows;
            }
            d -= 1;
            k[d] += 1;
            if k[d] < dims[d].len() as i64 {
                break;
            }
            k[d] = 0;
        }
    }
}

/// Executes the straight-line fused body over one lane chunk. Every op
/// runs all [`LANES`] lanes (tail lanes hold stale values that cannot
/// fault and are never scattered), as fixed-width loops the compiler
/// autovectorizes.
fn run_fk_chunk(
    code: &[FKInsn],
    rf: &mut [[f64; LANES]],
    rb: &mut [[bool; LANES]],
    syms: &[Option<i64>],
    outer_vals: &[f64],
    inner_vals: &[f64; LANES],
    inner: usize,
) {
    for insn in code {
        match insn {
            FKInsn::ConstF { dst, val } => rf[*dst as usize] = [*val; LANES],
            FKInsn::ConstB { dst, val } => rb[*dst as usize] = [*val; LANES],
            FKInsn::MovF { dst, src } => rf[*dst as usize] = rf[*src as usize],
            FKInsn::MovB { dst, src } => rb[*dst as usize] = rb[*src as usize],
            FKInsn::LoadSymF { dst, sym } => {
                let v = syms[sym.idx()].expect("precheck resolved symbol") as f64;
                rf[*dst as usize] = [v; LANES];
            }
            FKInsn::LoadParamF { dst, dim } => {
                rf[*dst as usize] = if *dim as usize == inner {
                    *inner_vals
                } else {
                    [outer_vals[*dim as usize]; LANES]
                };
            }
            FKInsn::BinF { op, dst, a, b } => {
                let (x, y) = (rf[*a as usize], rf[*b as usize]);
                let o = &mut rf[*dst as usize];
                let lanes = o.iter_mut().zip(&x).zip(&y);
                match op {
                    BinOp::Add => lanes.for_each(|((o, x), y)| *o = x + y),
                    BinOp::Sub => lanes.for_each(|((o, x), y)| *o = x - y),
                    BinOp::Mul => lanes.for_each(|((o, x), y)| *o = x * y),
                    BinOp::Div => lanes.for_each(|((o, x), y)| *o = x / y),
                    BinOp::Mod => lanes.for_each(|((o, x), y)| *o = x.rem_euclid(*y)),
                    BinOp::Min => lanes.for_each(|((o, x), y)| *o = x.min(*y)),
                    BinOp::Max => lanes.for_each(|((o, x), y)| *o = x.max(*y)),
                    BinOp::Pow => lanes.for_each(|((o, x), y)| *o = x.powf(*y)),
                    BinOp::And | BinOp::Or => unreachable!("lowered to AndB/OrB"),
                }
            }
            FKInsn::UnF { op, dst, a } => {
                let x = rf[*a as usize];
                let o = &mut rf[*dst as usize];
                let lanes = o.iter_mut().zip(&x);
                match op {
                    UnOp::Neg => lanes.for_each(|(o, x)| *o = -x),
                    UnOp::Abs => lanes.for_each(|(o, x)| *o = x.abs()),
                    UnOp::Sqrt => lanes.for_each(|(o, x)| *o = x.sqrt()),
                    UnOp::Exp => lanes.for_each(|(o, x)| *o = x.exp()),
                    UnOp::Log => lanes.for_each(|(o, x)| *o = x.ln()),
                    UnOp::Floor => lanes.for_each(|(o, x)| *o = x.floor()),
                    UnOp::Ceil => lanes.for_each(|(o, x)| *o = x.ceil()),
                    UnOp::Tanh => lanes.for_each(|(o, x)| *o = x.tanh()),
                    UnOp::Not => unreachable!("lowered to NotB"),
                }
            }
            FKInsn::CmpF { op, dst, a, b } => {
                let (x, y) = (rf[*a as usize], rf[*b as usize]);
                let o = &mut rb[*dst as usize];
                let lanes = o.iter_mut().zip(&x).zip(&y);
                match op {
                    CmpOp::Lt => lanes.for_each(|((o, x), y)| *o = x < y),
                    CmpOp::Le => lanes.for_each(|((o, x), y)| *o = x <= y),
                    CmpOp::Gt => lanes.for_each(|((o, x), y)| *o = x > y),
                    CmpOp::Ge => lanes.for_each(|((o, x), y)| *o = x >= y),
                    CmpOp::Eq => lanes.for_each(|((o, x), y)| *o = x == y),
                    CmpOp::Ne => lanes.for_each(|((o, x), y)| *o = x != y),
                }
            }
            FKInsn::NotB { dst, a } => {
                let x = rb[*a as usize];
                rb[*dst as usize]
                    .iter_mut()
                    .zip(&x)
                    .for_each(|(o, x)| *o = !x);
            }
            FKInsn::AndB { dst, a, b } => {
                let (x, y) = (rb[*a as usize], rb[*b as usize]);
                rb[*dst as usize]
                    .iter_mut()
                    .zip(&x)
                    .zip(&y)
                    .for_each(|((o, x), y)| *o = *x && *y);
            }
            FKInsn::OrB { dst, a, b } => {
                let (x, y) = (rb[*a as usize], rb[*b as usize]);
                rb[*dst as usize]
                    .iter_mut()
                    .zip(&x)
                    .zip(&y)
                    .for_each(|((o, x), y)| *o = *x || *y);
            }
            FKInsn::BoolFromF { reg } => {
                let x = rf[*reg as usize];
                rb[*reg as usize]
                    .iter_mut()
                    .zip(&x)
                    .for_each(|(o, x)| *o = *x != 0.0);
            }
            FKInsn::FloatFromB { dst, src } => {
                let x = rb[*src as usize];
                rf[*dst as usize]
                    .iter_mut()
                    .zip(&x)
                    .for_each(|(o, x)| *o = *x as u8 as f64);
            }
            // Entry coverage is batched by the caller when the chunked
            // loop runs (it only runs for single-location kernels).
            FKInsn::Cover { .. } => {}
            FKInsn::Stmt { .. }
            | FKInsn::CoverSel { .. }
            | FKInsn::JumpIfFalse { .. }
            | FKInsn::Jump { .. } => {
                unreachable!("select-bodied kernels run the scalar loop")
            }
        }
    }
}

/// The scalar twin of [`run_fused_loop`] for select-bodied kernels: the
/// same odometer over hoisted base offsets and strides, but the body runs
/// once per element of the iteration box as a scalar `pc` interpreter —
/// exactly [`run_fcode`]'s arithmetic, jumps and per-select coverage
/// (`[site, sel, cond]` parts, with a fresh site/sel state per element,
/// as the generic engine starts one per lane).
#[allow(clippy::too_many_arguments)]
fn run_fused_scalar(
    fk: &FusedKernel,
    dims: &[ConcreteRange],
    bases: &[i64],
    strides: &[i64],
    syms: &[Option<i64>],
    ins: &[&[f64]],
    outs: &mut [&mut [f64]],
    rf: &mut [f64],
    rb: &mut [bool],
    ctx: &mut RunCtx<'_>,
    scratch: (&mut [i64], &mut [f64], &mut [i64]),
) {
    let n_dims = dims.len();
    let inner = n_dims - 1;
    let inner_r = dims[inner];
    let inner_len = inner_r.len();
    let n_in = fk.inputs.len();
    let (k, outer_vals, row) = scratch;
    'rows: loop {
        for (a, r) in row.iter_mut().enumerate() {
            let mut off = bases[a];
            for d in 0..inner {
                off += k[d] * strides[a * n_dims + d];
            }
            *r = off;
        }
        for d in 0..inner {
            outer_vals[d] = (dims[d].start + k[d] * dims[d].step) as f64;
        }
        for j in 0..inner_len {
            let inner_val = (inner_r.start + j as i64 * inner_r.step) as f64;
            for (ii, s) in ins.iter().enumerate() {
                let Some(reg) = fk.in_regs[ii] else { continue };
                let st = strides[ii * n_dims + inner];
                rf[reg as usize] = s[(row[ii] + j as i64 * st) as usize];
            }
            let mut pc = 0usize;
            let mut site = 0u64;
            let mut sel = 0u64;
            while pc < fk.code.len() {
                match &fk.code[pc] {
                    FKInsn::Stmt { site: s } => {
                        site = *s;
                        sel = 0;
                    }
                    FKInsn::ConstF { dst, val } => rf[*dst as usize] = *val,
                    FKInsn::ConstB { dst, val } => rb[*dst as usize] = *val,
                    FKInsn::MovF { dst, src } => rf[*dst as usize] = rf[*src as usize],
                    FKInsn::MovB { dst, src } => rb[*dst as usize] = rb[*src as usize],
                    FKInsn::LoadSymF { dst, sym } => {
                        rf[*dst as usize] =
                            syms[sym.idx()].expect("precheck resolved symbol") as f64;
                    }
                    FKInsn::LoadParamF { dst, dim } => {
                        rf[*dst as usize] = if *dim as usize == inner {
                            inner_val
                        } else {
                            outer_vals[*dim as usize]
                        };
                    }
                    FKInsn::BinF { op, dst, a, b } => {
                        let (x, y) = (rf[*a as usize], rf[*b as usize]);
                        rf[*dst as usize] = match op {
                            BinOp::Add => x + y,
                            BinOp::Sub => x - y,
                            BinOp::Mul => x * y,
                            BinOp::Div => x / y,
                            BinOp::Mod => x.rem_euclid(y),
                            BinOp::Min => x.min(y),
                            BinOp::Max => x.max(y),
                            BinOp::Pow => x.powf(y),
                            BinOp::And | BinOp::Or => unreachable!("lowered to AndB/OrB"),
                        };
                    }
                    FKInsn::UnF { op, dst, a } => {
                        let x = rf[*a as usize];
                        rf[*dst as usize] = match op {
                            UnOp::Neg => -x,
                            UnOp::Abs => x.abs(),
                            UnOp::Sqrt => x.sqrt(),
                            UnOp::Exp => x.exp(),
                            UnOp::Log => x.ln(),
                            UnOp::Floor => x.floor(),
                            UnOp::Ceil => x.ceil(),
                            UnOp::Tanh => x.tanh(),
                            UnOp::Not => unreachable!("lowered to NotB"),
                        };
                    }
                    FKInsn::CmpF { op, dst, a, b } => {
                        let (x, y) = (rf[*a as usize], rf[*b as usize]);
                        rb[*dst as usize] = match op {
                            CmpOp::Lt => x < y,
                            CmpOp::Le => x <= y,
                            CmpOp::Gt => x > y,
                            CmpOp::Ge => x >= y,
                            CmpOp::Eq => x == y,
                            CmpOp::Ne => x != y,
                        };
                    }
                    FKInsn::NotB { dst, a } => rb[*dst as usize] = !rb[*a as usize],
                    FKInsn::AndB { dst, a, b } => {
                        rb[*dst as usize] = rb[*a as usize] && rb[*b as usize]
                    }
                    FKInsn::OrB { dst, a, b } => {
                        rb[*dst as usize] = rb[*a as usize] || rb[*b as usize]
                    }
                    FKInsn::BoolFromF { reg } => rb[*reg as usize] = rf[*reg as usize] != 0.0,
                    FKInsn::FloatFromB { dst, src } => {
                        rf[*dst as usize] = rb[*src as usize] as u8 as f64
                    }
                    FKInsn::CoverSel { cond } => {
                        let cv = rb[*cond as usize];
                        sel += 1;
                        ctx.cover_parts(&[site, sel, cv as u64]);
                    }
                    FKInsn::JumpIfFalse { cond, target } => {
                        if !rb[*cond as usize] {
                            pc = *target as usize;
                            continue;
                        }
                    }
                    FKInsn::Jump { target } => {
                        pc = *target as usize;
                        continue;
                    }
                    FKInsn::Cover { loc } => {
                        // Once per element: when the inner dimension is
                        // the lane block, only the first lane records.
                        if fk.lanes == 1 || j == 0 {
                            ctx.cover(*loc);
                        }
                    }
                }
                pc += 1;
            }
            for (oi, acc) in fk.outputs.iter().enumerate() {
                let (reg, from_bool) = fk.out_regs[oi];
                let st = strides[(n_in + oi) * n_dims + inner];
                let off = (row[n_in + oi] + j as i64 * st) as usize;
                let v = if from_bool {
                    rb[reg as usize] as u8 as f64
                } else {
                    rf[reg as usize]
                };
                let out = &mut *outs[oi];
                out[off] = match acc.wcr {
                    None => v,
                    Some(Wcr::Sum) => out[off] + v,
                    Some(Wcr::Prod) => out[off] * v,
                    Some(Wcr::Max) => out[off].max(v),
                    Some(Wcr::Min) => out[off].min(v),
                };
            }
        }
        let mut d = inner;
        loop {
            if d == 0 {
                break 'rows;
            }
            d -= 1;
            k[d] += 1;
            if k[d] < dims[d].len() as i64 {
                break;
            }
            k[d] = 0;
        }
    }
}

/// Postfix evaluation of a compiled symbolic expression, with the same
/// error semantics as [`SymExpr::eval`].
fn eval_sym_ops(
    ops: &[SymOp],
    syms: &[Option<i64>],
    names: &[String],
    stack: &mut Vec<i64>,
) -> Result<i64, ExecError> {
    for op in ops {
        match op {
            SymOp::Push(v) => stack.push(*v),
            SymOp::Load(id) => match syms[id.idx()] {
                Some(v) => stack.push(v),
                None => return Err(ExecError::Sym(SymError::Unbound(names[id.idx()].clone()))),
            },
            SymOp::Add => {
                let b = stack.pop().expect("stack");
                let a = stack.pop().expect("stack");
                stack.push(a.checked_add(b).ok_or(ExecError::Sym(SymError::Overflow))?);
            }
            SymOp::Sub => {
                let b = stack.pop().expect("stack");
                let a = stack.pop().expect("stack");
                stack.push(a.checked_sub(b).ok_or(ExecError::Sym(SymError::Overflow))?);
            }
            SymOp::Mul => {
                let b = stack.pop().expect("stack");
                let a = stack.pop().expect("stack");
                stack.push(a.checked_mul(b).ok_or(ExecError::Sym(SymError::Overflow))?);
            }
            SymOp::EnsureNonZero => {
                if *stack.last().expect("stack") == 0 {
                    return Err(ExecError::Sym(SymError::DivisionByZero));
                }
            }
            SymOp::DivE => {
                let a = stack.pop().expect("stack");
                let b = stack.pop().expect("stack");
                stack.push(
                    a.checked_div_euclid(b)
                        .ok_or(ExecError::Sym(SymError::Overflow))?,
                );
            }
            SymOp::ModE => {
                let a = stack.pop().expect("stack");
                let b = stack.pop().expect("stack");
                stack.push(
                    a.checked_rem_euclid(b)
                        .ok_or(ExecError::Sym(SymError::Overflow))?,
                );
            }
            SymOp::Min => {
                let b = stack.pop().expect("stack");
                let a = stack.pop().expect("stack");
                stack.push(a.min(b));
            }
            SymOp::Max => {
                let b = stack.pop().expect("stack");
                let a = stack.pop().expect("stack");
                stack.push(a.max(b));
            }
            SymOp::Neg => {
                let a = stack.pop().expect("stack");
                stack.push(a.checked_neg().ok_or(ExecError::Sym(SymError::Overflow))?);
            }
        }
    }
    Ok(stack.pop().expect("expression leaves one value"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzyflow_ir::{
        sym, Memlet, ScalarExpr, Schedule, SdfgBuilder, Subset, SymExpr, SymRange, Tasklet, Wcr,
    };

    /// `(total tasklets, specialized tasklets)` across all blocks.
    fn count_fast(p: &Program) -> (usize, usize) {
        fn walk(b: &BlockPlan, n: &mut usize, f: &mut usize) {
            for s in &b.steps {
                match s {
                    Step::Tasklet(tp) => {
                        *n += 1;
                        if tp.fast.is_some() {
                            *f += 1;
                        }
                    }
                    Step::Map(mp) => walk(&mp.body, n, f),
                    _ => {}
                }
            }
        }
        let (mut n, mut f) = (0, 0);
        for st in &p.states {
            walk(&st.body, &mut n, &mut f);
        }
        (n, f)
    }

    fn mapped(body: ScalarExpr) -> Sdfg {
        let mut b = SdfgBuilder::new("spec");
        b.symbol("N");
        b.array("A", DType::F64, &["N"]);
        b.array("B", DType::F64, &["N"]);
        let st = b.start();
        b.in_state(st, |df| {
            let a = df.access("A");
            let o = df.access("B");
            let body = body.clone();
            let m = df.map(
                &["i"],
                vec![SymRange::full(sym("N"))],
                Schedule::Parallel,
                move |mb| {
                    let a = mb.access("A");
                    let o = mb.access("B");
                    let t = mb.tasklet(Tasklet::simple("t", vec!["x"], "y", body.clone()));
                    mb.read(
                        a,
                        t,
                        Memlet::new("A", Subset::at(vec![sym("i")])).to_conn("x"),
                    );
                    mb.write(
                        t,
                        o,
                        Memlet::new("B", Subset::at(vec![sym("i")])).from_conn("y"),
                    );
                },
            );
            df.auto_wire(m, &[a], &[o]);
        });
        b.build()
    }

    #[test]
    fn eligible_f64_tasklets_are_specialized() {
        // The canonical hot-loop shapes must all take the fast path.
        for body in [
            ScalarExpr::r("x").mul(ScalarExpr::f64(2.0)),
            ScalarExpr::r("x")
                .mul(ScalarExpr::f64(2.0))
                .add(ScalarExpr::r("i")),
            ScalarExpr::r("x").div(ScalarExpr::r("N").sqrt()),
            ScalarExpr::r("x")
                .lt(ScalarExpr::f64(0.0))
                .select(ScalarExpr::r("x").neg(), ScalarExpr::r("x")),
        ] {
            let p = Program::compile(&mapped(body.clone()));
            assert_eq!(count_fast(&p), (1, 1), "{body:?} should specialize");
        }
    }

    #[test]
    fn integer_operated_tasklets_stay_generic() {
        // Integer-integer arithmetic wraps in the generic engine; the
        // eligibility pass must refuse to lower it to float math.
        for body in [
            ScalarExpr::r("i")
                .add(ScalarExpr::i64(1))
                .add(ScalarExpr::r("x")),
            ScalarExpr::r("i")
                .div(ScalarExpr::i64(2))
                .add(ScalarExpr::r("x")),
            ScalarExpr::r("x").add(ScalarExpr::r("i").neg()),
        ] {
            let p = Program::compile(&mapped(body.clone()));
            assert_eq!(count_fast(&p), (1, 0), "{body:?} must stay generic");
        }
    }

    #[test]
    fn non_f64_containers_stay_generic() {
        let mut b = SdfgBuilder::new("i64io");
        b.symbol("N");
        b.array("A", DType::I64, &["N"]);
        b.array("B", DType::F64, &["N"]);
        let st = b.start();
        b.in_state(st, |df| {
            let a = df.access("A");
            let o = df.access("B");
            let t = df.tasklet(Tasklet::simple(
                "t",
                vec!["x"],
                "y",
                ScalarExpr::r("x").mul(ScalarExpr::f64(1.5)),
            ));
            df.read(
                a,
                t,
                Memlet::new("A", Subset::at(vec![fuzzyflow_ir::SymExpr::Int(0)])).to_conn("x"),
            );
            df.write(
                t,
                o,
                Memlet::new("B", Subset::at(vec![fuzzyflow_ir::SymExpr::Int(0)])).from_conn("y"),
            );
        });
        let p = Program::compile(&b.build());
        assert_eq!(count_fast(&p), (1, 0));
    }

    #[test]
    fn specialization_can_be_disabled() {
        let p = Program::compile_with_options(
            &mapped(ScalarExpr::r("x").mul(ScalarExpr::f64(2.0))),
            &CompileOptions {
                specialize_f64: false,
                ..Default::default()
            },
        );
        assert_eq!(count_fast(&p), (1, 0));
    }

    /// Returns the fusion info of every map scope of a compiled program.
    fn fusion(p: &Program) -> Vec<MapFusionInfo> {
        p.tasklet_stats().maps
    }

    #[test]
    fn canonical_elementwise_map_fuses() {
        for body in [
            ScalarExpr::r("x").mul(ScalarExpr::f64(2.0)),
            ScalarExpr::r("x")
                .mul(ScalarExpr::f64(2.0))
                .add(ScalarExpr::r("i")),
            ScalarExpr::r("x").div(ScalarExpr::r("N").sqrt()),
        ] {
            let p = Program::compile(&mapped(body.clone()));
            let maps = fusion(&p);
            assert_eq!(maps.len(), 1);
            assert!(maps[0].fused, "{body:?} should fuse: {:?}", maps[0].reason);
            assert_eq!(maps[0].label, "map[i]");
        }
    }

    #[test]
    fn select_bodies_fuse_with_jump_code() {
        // The PR 4 blocker: jump-based selects now run in-kernel.
        let p = Program::compile(&mapped(
            ScalarExpr::r("x")
                .lt(ScalarExpr::f64(0.0))
                .select(ScalarExpr::r("x").neg(), ScalarExpr::r("x")),
        ));
        let maps = fusion(&p);
        assert!(maps[0].fused, "{:?}", maps[0].reason);
    }

    #[test]
    fn generic_tasklets_do_not_fuse() {
        // Integer-operated body: not f64-specializable, hence not fusable.
        let p = Program::compile(&mapped(
            ScalarExpr::r("i")
                .add(ScalarExpr::i64(1))
                .add(ScalarExpr::r("x")),
        ));
        let maps = fusion(&p);
        assert!(!maps[0].fused);
        assert_eq!(maps[0].reason, Some("tasklet is not f64-specialized"));
    }

    #[test]
    fn read_write_overlap_must_not_fuse() {
        // In-place A[i] = A[i] * 2: container read and written by the
        // same scope — the chunked kernel could observe its own writes.
        let mut b = SdfgBuilder::new("inplace");
        b.symbol("N");
        b.array("A", DType::F64, &["N"]);
        let st = b.start();
        b.in_state(st, |df| {
            let a_in = df.access("A");
            let a_out = df.access("A");
            let m = df.map(
                &["i"],
                vec![SymRange::full(sym("N"))],
                Schedule::Parallel,
                |mb| {
                    let a = mb.access("A");
                    let o = mb.access("A");
                    let t = mb.tasklet(Tasklet::simple(
                        "t",
                        vec!["x"],
                        "y",
                        ScalarExpr::r("x").mul(ScalarExpr::f64(2.0)),
                    ));
                    mb.read(
                        a,
                        t,
                        Memlet::new("A", Subset::at(vec![sym("i")])).to_conn("x"),
                    );
                    mb.write(
                        t,
                        o,
                        Memlet::new("A", Subset::at(vec![sym("i")])).from_conn("y"),
                    );
                },
            );
            df.auto_wire(m, &[a_in], &[a_out]);
        });
        let p = Program::compile(&b.build());
        let maps = fusion(&p);
        assert!(!maps[0].fused);
        assert!(
            maps[0].reason.unwrap().contains("overlap"),
            "{:?}",
            maps[0].reason
        );
    }

    /// `A[i*L .. i*L+L]` — the canonical lane-blocked subset.
    fn lane_sub(l: i64) -> Subset {
        let base = SymExpr::Mul(Box::new(sym("i")), Box::new(SymExpr::Int(l)));
        let end = SymExpr::Add(Box::new(base.clone()), Box::new(SymExpr::Int(l)));
        Subset::new(vec![SymRange::span(base, end)])
    }

    /// `B[out] = A[i*L .. i*L+L] * 2` over `i in [0, N)` with a
    /// `lanes`-wide tasklet body.
    fn lane_mapped(lanes: u32, out: Subset) -> Sdfg {
        let mut b = SdfgBuilder::new("lanes");
        b.symbol("N");
        b.symbol("M");
        b.array("A", DType::F64, &["M"]);
        b.array("B", DType::F64, &["M"]);
        let st = b.start();
        b.in_state(st, move |df| {
            let a = df.access("A");
            let o = df.access("B");
            let out = out.clone();
            let m = df.map(
                &["i"],
                vec![SymRange::full(sym("N"))],
                Schedule::Parallel,
                move |mb| {
                    let a = mb.access("A");
                    let o = mb.access("B");
                    let mut t = Tasklet::simple(
                        "t",
                        vec!["x"],
                        "y",
                        ScalarExpr::r("x").mul(ScalarExpr::f64(2.0)),
                    );
                    t.lanes = lanes;
                    let t = mb.tasklet(t);
                    mb.read(a, t, Memlet::new("A", lane_sub(lanes as i64)).to_conn("x"));
                    mb.write(t, o, Memlet::new("B", out.clone()).from_conn("y"));
                },
            );
            df.auto_wire(m, &[a], &[o]);
        });
        b.build()
    }

    #[test]
    fn vectorized_lane_bodies_fuse() {
        for lanes in [2u32, 4, 8] {
            let p = Program::compile(&lane_mapped(lanes, lane_sub(lanes as i64)));
            let maps = fusion(&p);
            assert!(maps[0].fused, "lanes={lanes}: {:?}", maps[0].reason);
        }
    }

    #[test]
    fn vectorized_single_index_writes_reject() {
        // A lanes=4 tasklet scattering into a one-element memlet can
        // never satisfy the volume contract; reject at compile time.
        let p = Program::compile(&lane_mapped(4, Subset::at(vec![sym("i")])));
        let maps = fusion(&p);
        assert!(!maps[0].fused);
        assert_eq!(maps[0].reason, Some(FuseReject::LaneVolume.message()));
    }

    /// Two-stage pipeline `T[i] = A[i]*2; B[i] = T[reread] + 1` inside one
    /// map scope, with an optional WCR on the intermediate write and
    /// per-stage lane widths.
    fn pipelined(wcr: Option<Wcr>, reread: Subset, lanes: (u32, u32)) -> Sdfg {
        let mut b = SdfgBuilder::new("pipe");
        b.symbol("N");
        b.array("A", DType::F64, &["N"]);
        b.array("T", DType::F64, &["N"]);
        b.array("B", DType::F64, &["N"]);
        let st = b.start();
        b.in_state(st, move |df| {
            let a = df.access("A");
            let tmp = df.access("T");
            let o = df.access("B");
            let reread = reread.clone();
            let m = df.map(
                &["i"],
                vec![SymRange::full(sym("N"))],
                Schedule::Parallel,
                move |mb| {
                    let a = mb.access("A");
                    let tm = mb.access("T");
                    let o = mb.access("B");
                    let mut s1 = Tasklet::simple(
                        "s1",
                        vec!["x"],
                        "y",
                        ScalarExpr::r("x").mul(ScalarExpr::f64(2.0)),
                    );
                    s1.lanes = lanes.0;
                    let mut s2 = Tasklet::simple(
                        "s2",
                        vec!["x"],
                        "y",
                        ScalarExpr::r("x").add(ScalarExpr::f64(1.0)),
                    );
                    s2.lanes = lanes.1;
                    let t1 = mb.tasklet(s1);
                    let t2 = mb.tasklet(s2);
                    mb.read(
                        a,
                        t1,
                        Memlet::new("A", Subset::at(vec![sym("i")])).to_conn("x"),
                    );
                    let mut w = Memlet::new("T", Subset::at(vec![sym("i")])).from_conn("y");
                    if let Some(op) = wcr {
                        w = w.with_wcr(op);
                    }
                    mb.write(t1, tm, w);
                    mb.read(tm, t2, Memlet::new("T", reread.clone()).to_conn("x"));
                    mb.write(
                        t2,
                        o,
                        Memlet::new("B", Subset::at(vec![sym("i")])).from_conn("y"),
                    );
                },
            );
            df.auto_wire(m, &[a], &[tmp, o]);
        });
        b.build()
    }

    #[test]
    fn straight_line_pipelines_fuse() {
        let p = Program::compile(&pipelined(None, Subset::at(vec![sym("i")]), (1, 1)));
        let maps = fusion(&p);
        assert_eq!(maps.len(), 1);
        assert!(maps[0].fused, "{:?}", maps[0].reason);
    }

    #[test]
    fn wcr_intermediates_reject_pipelining() {
        // T accumulates — the reader must observe memory, not the
        // producing tasklet's register.
        let p = Program::compile(&pipelined(
            Some(Wcr::Sum),
            Subset::at(vec![sym("i")]),
            (1, 1),
        ));
        let maps = fusion(&p);
        assert!(!maps[0].fused);
        assert_eq!(maps[0].reason, Some(FuseReject::ChainWcr.message()));
    }

    #[test]
    fn chained_subset_mismatch_rejects_pipelining() {
        // Stage 2 re-reads T through a different subscript than stage 1
        // wrote — the register short-circuit would be wrong.
        let p = Program::compile(&pipelined(None, Subset::at(vec![SymExpr::Int(0)]), (1, 1)));
        let maps = fusion(&p);
        assert!(!maps[0].fused);
        assert_eq!(maps[0].reason, Some(FuseReject::ChainMismatch.message()));
    }

    #[test]
    fn mixed_lane_pipelines_reject() {
        let p = Program::compile(&pipelined(None, Subset::at(vec![sym("i")]), (2, 1)));
        let maps = fusion(&p);
        assert!(!maps[0].fused);
        assert_eq!(maps[0].reason, Some(FuseReject::MixedLanes.message()));
    }

    #[test]
    fn fusion_can_be_disabled() {
        let p = Program::compile_with_options(
            &mapped(ScalarExpr::r("x").mul(ScalarExpr::f64(2.0))),
            &CompileOptions {
                fuse_maps: false,
                ..Default::default()
            },
        );
        let maps = fusion(&p);
        assert!(!maps[0].fused);
        assert_eq!(maps[0].reason, Some("map fusion disabled"));
        // The f64 fast path is still on.
        assert_eq!(p.tasklet_stats().specialized, 1);
    }

    #[test]
    fn program_ids_are_unique_and_shared_by_clones() {
        let p1 = Program::compile(&mapped(ScalarExpr::r("x")));
        let p2 = Program::compile(&mapped(ScalarExpr::r("x")));
        assert_ne!(p1.id(), p2.id());
        assert_eq!(p1.id(), p1.clone().id());
    }
}
