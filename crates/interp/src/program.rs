//! The compile-once execution engine.
//!
//! [`Program::compile`] lowers an [`Sdfg`] into a self-contained, immutable
//! program: all data/symbol/connector names are interned into dense ids,
//! memlet subscripts are precompiled into affine access plans (with a
//! compiled postfix expression fallback for non-affine subscripts), and
//! tasklet statement trees are flattened into a register-based instruction
//! list. An [`Executor`] then runs the program against id-indexed `Vec`
//! storage with reusable buffers, so the differential-fuzzing trial loop
//! pays for compilation once and resets state in place between trials.
//!
//! The engine is semantics-identical to the tree-walk interpreter in
//! [`crate::exec`] — same results bit for bit, same [`ExecError`] variants
//! raised in the same order, same step counts for the hang oracle, and the
//! same coverage location ids — which the engine-equivalence property
//! suite enforces differentially (FuzzyFlow's own method, applied to our
//! two engines).

use crate::coverage::{location_id, CoverageMap};
use crate::error::ExecError;
use crate::exec::{
    apply_bin, apply_cmp, apply_un, combine_wcr, matmul, reduce, softmax, CommHandler, ExecOptions,
    ExecState, StateMismatch,
};
use crate::value::ArrayValue;
use fuzzyflow_ir::{
    BinOp, CmpOp, CondExpr, DType, DfNode, LibraryOp, Memlet, Scalar, Sdfg, Storage, SymExpr,
    Tasklet, UnOp, Wcr,
};
use fuzzyflow_sym::{ConcreteRange, SymError};
use std::collections::BTreeMap;

/// Dense id of an interned data container name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct DataId(u32);

impl DataId {
    #[inline]
    fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Dense id of an interned symbol name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct SymId(u32);

impl SymId {
    #[inline]
    fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Order-preserving string interner producing dense `u32` ids.
#[derive(Clone, Debug, Default)]
struct Interner {
    names: Vec<String>,
    ids: BTreeMap<String, u32>,
}

impl Interner {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        id
    }

    fn get(&self, name: &str) -> Option<u32> {
        self.ids.get(name).copied()
    }

    fn len(&self) -> usize {
        self.names.len()
    }
}

/// Postfix-compiled symbolic integer expression. Evaluation reproduces
/// [`SymExpr::eval`] exactly, including error order (for division and
/// remainder the divisor is evaluated and zero-checked *before* the
/// dividend, as in the tree evaluator).
#[derive(Clone, Debug)]
struct SymCode {
    ops: Vec<SymOp>,
}

#[derive(Clone, Debug)]
enum SymOp {
    Push(i64),
    Load(SymId),
    Add,
    Sub,
    Mul,
    /// Errors with `DivisionByZero` if the value on top of the stack is 0.
    EnsureNonZero,
    /// Pops dividend (top) then divisor; pushes Euclidean quotient.
    DivE,
    /// Pops dividend (top) then divisor; pushes Euclidean remainder.
    ModE,
    Min,
    Max,
    Neg,
}

/// One atom of an affine access plan: `± coeff` or `± coeff * sym`.
#[derive(Clone, Debug)]
struct AffTerm {
    /// `false` = added, `true` = subtracted.
    sub: bool,
    sym: Option<SymId>,
    coeff: i64,
}

/// A compiled index expression: constants and bare symbols resolve without
/// any walking, affine chains of `{Int, Sym, Int*Sym}` atoms use a flat
/// term list, and everything else (division, remainder, min/max,
/// re-associated or nested arithmetic) falls back to compiled postfix
/// form.
#[derive(Clone, Debug)]
enum IdxCode {
    Const(i64),
    Sym(SymId),
    /// A left-associated sum/difference of atoms, evaluated as
    /// `((t0 ± t1) ± t2) …` with checked arithmetic. Only expressions
    /// whose tree evaluation performs this *exact* sequence of checked
    /// operations are lowered here (no algebraic rewriting, no constant
    /// folding across atoms), so overflow and unbound-symbol errors stay
    /// bit-identical to [`SymExpr::eval`] — the compiled-code fallback
    /// covers everything else.
    Affine(Vec<AffTerm>),
    Code(SymCode),
}

/// Compiled per-dimension range of a memlet subset or map.
#[derive(Clone, Debug)]
struct RangePlan {
    start: IdxCode,
    end: IdxCode,
    step: IdxCode,
}

/// Compiled access plan of one memlet.
#[derive(Clone, Debug)]
struct MemPlan {
    data: DataId,
    wcr: Option<Wcr>,
    kind: MemKind,
}

#[derive(Clone, Debug)]
enum MemKind {
    /// Every dimension is a single index with unit step: the offset is
    /// computed directly, no range materialization or point iteration.
    /// Each dimension keeps `(start, end)`: the end expression's value is
    /// provably `start + 1`, but it is still evaluated for its *errors*
    /// (e.g. overflow at the i64 edge), exactly as `Subset::concrete`
    /// does in the tree-walk engine.
    Single(Vec<(IdxCode, IdxCode)>),
    /// General (possibly strided / multi-element) subset.
    Ranges(Vec<RangePlan>),
}

/// Compiled inter-state condition (short-circuit evaluation order matches
/// [`CondExpr::eval`]).
#[derive(Clone, Debug)]
enum CondPlan {
    True,
    Cmp(CmpOp, IdxCode, IdxCode),
    Not(Box<CondPlan>),
    And(Box<CondPlan>, Box<CondPlan>),
    Or(Box<CondPlan>, Box<CondPlan>),
}

/// One instruction of the flat, register-based tasklet bytecode.
#[derive(Clone, Debug)]
enum Insn {
    /// Marks the start of a tasklet statement: sets the coverage site and
    /// resets the per-statement select counter.
    Stmt {
        site: u64,
    },
    Const {
        dst: u32,
        val: Scalar,
    },
    Mov {
        dst: u32,
        src: u32,
    },
    LoadSym {
        dst: u32,
        sym: SymId,
    },
    Bin {
        op: BinOp,
        dst: u32,
        a: u32,
        b: u32,
    },
    Un {
        op: UnOp,
        dst: u32,
        a: u32,
    },
    Cmp {
        op: CmpOp,
        dst: u32,
        a: u32,
        b: u32,
    },
    /// Select branch coverage: bumps the select counter and records
    /// `location_id([site, sel, cond])`.
    CoverSel {
        cond: u32,
    },
    JumpIfFalse {
        cond: u32,
        target: u32,
    },
    Jump {
        target: u32,
    },
}

/// Compiled tasklet node.
#[derive(Clone, Debug)]
struct TaskletPlan {
    name: String,
    cover_loc: u64,
    lanes: usize,
    n_conn_slots: usize,
    /// Register holding each input-connector slot's lane value.
    conn_regs: Vec<u32>,
    inputs: Vec<InputPlan>,
    code: Vec<Insn>,
    n_regs: usize,
    /// Per `Tasklet::outputs` entry, in declaration order.
    gather: Vec<GatherSpec>,
    n_out_slots: usize,
    out_writes: Vec<OutWrite>,
}

#[derive(Clone, Debug)]
enum InputPlan {
    Fail(ExecError),
    Read {
        slot: usize,
        conn: String,
        plan: MemPlan,
    },
}

#[derive(Clone, Debug)]
enum GatherSpec {
    Push { slot: usize, reg: u32 },
    Fail(ExecError),
}

#[derive(Clone, Debug)]
enum OutWrite {
    Fail(ExecError),
    Write { slot: usize, plan: MemPlan },
}

/// Compiled map scope.
#[derive(Clone, Debug)]
struct MapPlan {
    cover_loc: u64,
    params: Vec<SymId>,
    ranges: Vec<RangePlan>,
    body: BlockPlan,
}

/// Compiled library node.
#[derive(Clone, Debug)]
struct LibraryPlan {
    name: String,
    cover_loc: u64,
    op: LibraryOp,
    inputs: Vec<LibInput>,
    n_slots: usize,
    /// Input-connector slots in the order the operation consumes them
    /// (`A`, `B` for MatMul; `in` otherwise), or the "missing input
    /// connector" error.
    args: Vec<Result<usize, ExecError>>,
    /// Data container of the first incoming memlet (dtype source for the
    /// simulated collective's send buffer).
    first_in_data: Option<DataId>,
    out_writes: Vec<LibOutWrite>,
}

#[derive(Clone, Debug)]
enum LibInput {
    Fail(ExecError),
    Read { slot: usize, plan: MemPlan },
}

#[derive(Clone, Debug)]
enum LibOutWrite {
    Fail(ExecError),
    Write(MemPlan),
}

/// One step of a compiled dataflow block, in topological order.
#[derive(Clone, Debug)]
enum Step {
    Access(DataId),
    Tasklet(TaskletPlan),
    Map(MapPlan),
    Library(LibraryPlan),
}

/// A compiled dataflow graph (state body or map body).
#[derive(Clone, Debug, Default)]
struct BlockPlan {
    /// Structural defect discovered at compile time but — for parity with
    /// the tree-walk engine — raised only when the block actually executes.
    error: Option<ExecError>,
    steps: Vec<Step>,
}

/// Compiled declared container.
#[derive(Clone, Debug)]
struct ArrayPlan {
    data: DataId,
    dtype: DType,
    storage: Storage,
    shape: Vec<IdxCode>,
}

/// Compiled state of the state machine.
#[derive(Clone, Debug)]
struct StatePlan {
    /// `location_id([0x57A7E, state_id])`: both the coverage location and
    /// the parent site of the state's dataflow nodes.
    site: u64,
    body: BlockPlan,
    edges: Vec<EdgePlan>,
}

#[derive(Clone, Debug)]
struct EdgePlan {
    cond: CondPlan,
    assigns: Vec<(SymId, SymCode)>,
    cover_loc: u64,
    dst: usize,
}

/// A compiled, immutable, shareable (`Sync`) program. Compile once with
/// [`Program::compile`], then execute many times — either through the
/// convenience [`Program::run`]/[`Program::run_with`] (which keep the
/// [`ExecState`] in/out contract of the tree-walk interpreter) or through
/// a reusable [`Executor`] for zero-allocation trial loops.
#[derive(Clone, Debug)]
pub struct Program {
    name: String,
    data: Interner,
    syms: Interner,
    arrays: Vec<ArrayPlan>,
    states: Vec<StatePlan>,
    start: usize,
}

impl Program {
    /// Lowers an SDFG into a compiled program. Compilation never fails:
    /// structural defects (cyclic dataflow, missing connectors, never-
    /// assigned outputs) are lowered into steps that raise the exact
    /// runtime error the tree-walk interpreter would raise, at the same
    /// execution point — a block that never runs never errors.
    pub fn compile(sdfg: &Sdfg) -> Program {
        let mut c = Compiler {
            sdfg,
            data: Interner::default(),
            syms: Interner::default(),
        };
        // The collective runtime reads `rank` even when unbound.
        c.syms.intern("rank");

        let arrays: Vec<ArrayPlan> = sdfg
            .arrays
            .iter()
            .map(|(name, desc)| ArrayPlan {
                data: DataId(c.data.intern(name)),
                dtype: desc.dtype,
                storage: desc.storage,
                shape: desc.shape.iter().map(|e| c.idx(e)).collect(),
            })
            .collect();

        let ids: Vec<fuzzyflow_ir::StateId> = sdfg.states.node_ids().collect();
        let dense_of = |id: fuzzyflow_ir::StateId| -> usize {
            ids.iter().position(|&x| x == id).expect("state id known")
        };
        let states: Vec<StatePlan> = ids
            .iter()
            .map(|&id| {
                let site = location_id(&[0x57A7E, id.0 as u64]);
                let body = c.block(&sdfg.state(id).df, site);
                let edges = sdfg
                    .states
                    .out_edge_ids(id)
                    .iter()
                    .map(|&e| {
                        let edge = sdfg.states.edge(e);
                        EdgePlan {
                            cond: c.cond(&edge.condition),
                            assigns: edge
                                .assignments
                                .iter()
                                .map(|(s, v)| {
                                    let code = c.code(v);
                                    (SymId(c.syms.intern(s)), code)
                                })
                                .collect(),
                            cover_loc: location_id(&[0xED6E, e.0 as u64]),
                            dst: dense_of(sdfg.states.dst(e)),
                        }
                    })
                    .collect();
                StatePlan { site, body, edges }
            })
            .collect();

        Program {
            name: sdfg.name.clone(),
            data: c.data,
            syms: c.syms,
            arrays,
            states,
            start: dense_of(sdfg.start),
        }
    }

    /// Program name (copied from the source SDFG).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Creates a reusable executor for this program.
    pub fn executor(&self) -> Executor<'_> {
        Executor::new(self)
    }

    /// Compile-once equivalent of [`crate::run`]: executes against the
    /// given state in place.
    pub fn run(&self, state: &mut ExecState) -> Result<(), ExecError> {
        self.run_with(state, &ExecOptions::default(), None, None)
    }

    /// Compile-once equivalent of [`crate::run_with`].
    pub fn run_with(
        &self,
        state: &mut ExecState,
        opts: &ExecOptions,
        comm: Option<&dyn CommHandler>,
        cov: Option<&mut CoverageMap>,
    ) -> Result<(), ExecError> {
        self.executor().run_in_place(state, opts, comm, cov)
    }

    fn sym_id(&self, name: &str) -> Option<SymId> {
        self.syms.get(name).map(SymId)
    }

    fn data_id(&self, name: &str) -> Option<DataId> {
        self.data.get(name).map(DataId)
    }
}

struct Compiler<'s> {
    #[allow(dead_code)]
    sdfg: &'s Sdfg,
    data: Interner,
    syms: Interner,
}

impl Compiler<'_> {
    /// Compiles a symbolic expression into postfix code with interned ids.
    fn code(&mut self, e: &SymExpr) -> SymCode {
        let mut ops = Vec::new();
        self.emit(e, &mut ops);
        SymCode { ops }
    }

    fn emit(&mut self, e: &SymExpr, ops: &mut Vec<SymOp>) {
        match e {
            SymExpr::Int(v) => ops.push(SymOp::Push(*v)),
            SymExpr::Sym(s) => ops.push(SymOp::Load(SymId(self.syms.intern(s)))),
            SymExpr::Add(a, b) => {
                self.emit(a, ops);
                self.emit(b, ops);
                ops.push(SymOp::Add);
            }
            SymExpr::Sub(a, b) => {
                self.emit(a, ops);
                self.emit(b, ops);
                ops.push(SymOp::Sub);
            }
            SymExpr::Mul(a, b) => {
                self.emit(a, ops);
                self.emit(b, ops);
                ops.push(SymOp::Mul);
            }
            SymExpr::Div(a, b) => {
                self.emit(b, ops);
                ops.push(SymOp::EnsureNonZero);
                self.emit(a, ops);
                ops.push(SymOp::DivE);
            }
            SymExpr::Mod(a, b) => {
                self.emit(b, ops);
                ops.push(SymOp::EnsureNonZero);
                self.emit(a, ops);
                ops.push(SymOp::ModE);
            }
            SymExpr::Min(a, b) => {
                self.emit(a, ops);
                self.emit(b, ops);
                ops.push(SymOp::Min);
            }
            SymExpr::Max(a, b) => {
                self.emit(a, ops);
                self.emit(b, ops);
                ops.push(SymOp::Max);
            }
            SymExpr::Neg(a) => {
                self.emit(a, ops);
                ops.push(SymOp::Neg);
            }
        }
    }

    /// Classifies an index expression: constant, bare symbol, affine form,
    /// or compiled-code fallback.
    fn idx(&mut self, e: &SymExpr) -> IdxCode {
        if e.is_constant() {
            if let Ok(v) = e.eval(&fuzzyflow_sym::Bindings::new()) {
                return IdxCode::Const(v);
            }
            // Constant but erroring (overflow / division by zero): keep
            // the compiled form so the runtime error matches.
            return IdxCode::Code(self.code(e));
        }
        if let SymExpr::Sym(s) = e {
            return IdxCode::Sym(SymId(self.syms.intern(s)));
        }
        if let Some(terms) = self.affine(e) {
            return IdxCode::Affine(terms);
        }
        IdxCode::Code(self.code(e))
    }

    /// Strict structural recognizer for parity-exact affine chains:
    /// `atom_0 ± atom_1 ± … ± atom_k` (left-associated), where each atom
    /// is `Int`, `Sym` or `Int*Sym`/`Sym*Int`. No algebraic rewriting is
    /// performed — evaluating the atoms left to right replays the tree
    /// evaluator's checked-operation sequence exactly, so overflow and
    /// unbound errors cannot diverge. Anything else returns `None` and
    /// takes the compiled-code path.
    fn affine(&mut self, e: &SymExpr) -> Option<Vec<AffTerm>> {
        match e {
            SymExpr::Add(a, b) => {
                let mut terms = self.affine(a)?;
                terms.push(self.affine_atom(b, false)?);
                Some(terms)
            }
            SymExpr::Sub(a, b) => {
                let mut terms = self.affine(a)?;
                terms.push(self.affine_atom(b, true)?);
                Some(terms)
            }
            leaf => Some(vec![self.affine_atom(leaf, false)?]),
        }
    }

    fn affine_atom(&mut self, e: &SymExpr, sub: bool) -> Option<AffTerm> {
        match e {
            SymExpr::Int(c) => Some(AffTerm {
                sub,
                sym: None,
                coeff: *c,
            }),
            SymExpr::Sym(s) => Some(AffTerm {
                sub,
                sym: Some(SymId(self.syms.intern(s))),
                coeff: 1,
            }),
            SymExpr::Mul(x, y) => match (x.as_ref(), y.as_ref()) {
                (SymExpr::Int(c), SymExpr::Sym(s)) | (SymExpr::Sym(s), SymExpr::Int(c)) => {
                    Some(AffTerm {
                        sub,
                        sym: Some(SymId(self.syms.intern(s))),
                        coeff: *c,
                    })
                }
                _ => None,
            },
            _ => None,
        }
    }

    fn cond(&mut self, c: &CondExpr) -> CondPlan {
        match c {
            CondExpr::True => CondPlan::True,
            CondExpr::Cmp(op, a, b) => CondPlan::Cmp(*op, self.idx(a), self.idx(b)),
            CondExpr::Not(x) => CondPlan::Not(Box::new(self.cond(x))),
            CondExpr::And(l, r) => CondPlan::And(Box::new(self.cond(l)), Box::new(self.cond(r))),
            CondExpr::Or(l, r) => CondPlan::Or(Box::new(self.cond(l)), Box::new(self.cond(r))),
        }
    }

    fn memlet(&mut self, m: &Memlet) -> MemPlan {
        let data = DataId(self.data.intern(&m.data));
        let dims = m.subset.dims();
        let single = dims
            .iter()
            .all(|d| d.is_index() && d.step.as_int() == Some(1));
        let kind = if single {
            MemKind::Single(
                dims.iter()
                    .map(|d| (self.idx(&d.start), self.idx(&d.end)))
                    .collect(),
            )
        } else {
            MemKind::Ranges(
                dims.iter()
                    .map(|d| RangePlan {
                        start: self.idx(&d.start),
                        end: self.idx(&d.end),
                        step: self.idx(&d.step),
                    })
                    .collect(),
            )
        };
        MemPlan {
            data,
            wcr: m.wcr,
            kind,
        }
    }

    fn block(&mut self, df: &fuzzyflow_ir::Dataflow, site: u64) -> BlockPlan {
        let order = match fuzzyflow_graph::topological_sort(&df.graph) {
            Ok(o) => o,
            Err(e) => {
                return BlockPlan {
                    error: Some(ExecError::Malformed(format!("cyclic dataflow ({e})"))),
                    steps: Vec::new(),
                }
            }
        };
        let mut steps = Vec::with_capacity(order.len());
        for n in order {
            let node_site = location_id(&[site, n.0 as u64]);
            match df.graph.node(n) {
                DfNode::Access(name) => steps.push(Step::Access(DataId(self.data.intern(name)))),
                DfNode::Tasklet(t) => steps.push(Step::Tasklet(self.tasklet(df, n, t, node_site))),
                DfNode::Map(m) => steps.push(Step::Map(MapPlan {
                    cover_loc: location_id(&[node_site]),
                    params: m
                        .params
                        .iter()
                        .map(|p| SymId(self.syms.intern(p)))
                        .collect(),
                    ranges: m
                        .ranges
                        .iter()
                        .map(|r| RangePlan {
                            start: self.idx(&r.start),
                            end: self.idx(&r.end),
                            step: self.idx(&r.step),
                        })
                        .collect(),
                    body: self.block(&m.body, node_site),
                })),
                DfNode::Library(l) => steps.push(Step::Library(self.library(df, n, l, node_site))),
            }
        }
        BlockPlan { error: None, steps }
    }

    fn tasklet(
        &mut self,
        df: &fuzzyflow_ir::Dataflow,
        n: fuzzyflow_graph::NodeId,
        t: &Tasklet,
        node_site: u64,
    ) -> TaskletPlan {
        let lanes = t.lanes.max(1) as usize;

        // Input connector slots, in first-occurrence order; duplicate
        // connectors share a slot (the later read overwrites, as the
        // tree-walk engine's BTreeMap insert does).
        let mut conn_slots: Vec<String> = Vec::new();
        let mut inputs = Vec::new();
        for (_, m) in df.in_memlets(n) {
            match &m.dst_conn {
                None => inputs.push(InputPlan::Fail(ExecError::Malformed(format!(
                    "input memlet of tasklet '{}' has no connector",
                    t.name
                )))),
                Some(conn) => {
                    let slot = match conn_slots.iter().position(|c| c == conn) {
                        Some(i) => i,
                        None => {
                            conn_slots.push(conn.clone());
                            conn_slots.len() - 1
                        }
                    };
                    inputs.push(InputPlan::Read {
                        slot,
                        conn: conn.clone(),
                        plan: self.memlet(m),
                    });
                }
            }
        }

        // Named registers: one per connector slot, one per distinct
        // statement destination not already a connector.
        let mut reg_of: BTreeMap<String, u32> = BTreeMap::new();
        let mut conn_regs = Vec::with_capacity(conn_slots.len());
        for (i, conn) in conn_slots.iter().enumerate() {
            reg_of.insert(conn.clone(), i as u32);
            conn_regs.push(i as u32);
        }
        let mut next_reg = conn_slots.len() as u32;
        for stmt in &t.code {
            reg_of.entry(stmt.dst.clone()).or_insert_with(|| {
                let r = next_reg;
                next_reg += 1;
                r
            });
        }
        let named_count = next_reg;

        // Statements: the defined-name set grows statically exactly as the
        // tree-walk scope does per lane, so register reads can never see a
        // previous lane's value.
        let mut defined: Vec<&str> = conn_slots.iter().map(|s| s.as_str()).collect();
        let mut code = Vec::new();
        let mut max_depth = 0usize;
        for (si, stmt) in t.code.iter().enumerate() {
            code.push(Insn::Stmt {
                site: location_id(&[node_site, si as u64]),
            });
            let depth = self.expr(&stmt.value, &mut code, named_count, 0, &defined, &reg_of);
            max_depth = max_depth.max(depth);
            code.push(Insn::Mov {
                dst: reg_of[&stmt.dst],
                src: named_count,
            });
            if !defined.contains(&stmt.dst.as_str()) {
                defined.push(&stmt.dst);
            }
        }

        // Output gather specs, one per declared output in order; a missing
        // assignment errors after the first lane's statements run, exactly
        // where the tree-walk engine raises it.
        let mut out_names: Vec<&str> = Vec::new();
        let gather: Vec<GatherSpec> = t
            .outputs
            .iter()
            .map(|out| {
                if defined.contains(&out.as_str()) {
                    let slot = match out_names.iter().position(|o| o == out) {
                        Some(i) => i,
                        None => {
                            out_names.push(out);
                            out_names.len() - 1
                        }
                    };
                    GatherSpec::Push {
                        slot,
                        reg: reg_of[out.as_str()],
                    }
                } else {
                    GatherSpec::Fail(ExecError::Malformed(format!(
                        "tasklet '{}' never assigns output connector '{out}'",
                        t.name
                    )))
                }
            })
            .collect();

        let out_writes: Vec<OutWrite> = df
            .out_memlets(n)
            .iter()
            .map(|(_, m)| match &m.src_conn {
                None => OutWrite::Fail(ExecError::Malformed(format!(
                    "output memlet of tasklet '{}' has no connector",
                    t.name
                ))),
                Some(conn) => match out_names.iter().position(|o| o == conn) {
                    Some(slot) => OutWrite::Write {
                        slot,
                        plan: self.memlet(m),
                    },
                    None => OutWrite::Fail(ExecError::UndefinedRef {
                        tasklet: t.name.clone(),
                        name: conn.clone(),
                    }),
                },
            })
            .collect();

        TaskletPlan {
            name: t.name.clone(),
            cover_loc: location_id(&[node_site]),
            lanes,
            n_conn_slots: conn_slots.len(),
            conn_regs,
            inputs,
            code,
            n_regs: (named_count as usize) + max_depth + 1,
            gather,
            n_out_slots: out_names.len(),
            out_writes,
        }
    }

    /// Compiles a scalar expression; the result lands in scratch register
    /// `scratch_base + depth`. Returns the maximum scratch depth used.
    fn expr(
        &mut self,
        e: &fuzzyflow_ir::ScalarExpr,
        code: &mut Vec<Insn>,
        scratch_base: u32,
        depth: u32,
        defined: &[&str],
        reg_of: &BTreeMap<String, u32>,
    ) -> usize {
        use fuzzyflow_ir::ScalarExpr as E;
        let dst = scratch_base + depth;
        match e {
            E::Const(c) => {
                code.push(Insn::Const { dst, val: *c });
                depth as usize
            }
            E::Ref(name) => {
                if defined.contains(&name.as_str()) {
                    code.push(Insn::Mov {
                        dst,
                        src: reg_of[name.as_str()],
                    });
                } else {
                    code.push(Insn::LoadSym {
                        dst,
                        sym: SymId(self.syms.intern(name)),
                    });
                }
                depth as usize
            }
            E::Bin(op, a, b) => {
                let da = self.expr(a, code, scratch_base, depth, defined, reg_of);
                let db = self.expr(b, code, scratch_base, depth + 1, defined, reg_of);
                code.push(Insn::Bin {
                    op: *op,
                    dst,
                    a: dst,
                    b: dst + 1,
                });
                da.max(db)
            }
            E::Cmp(op, a, b) => {
                let da = self.expr(a, code, scratch_base, depth, defined, reg_of);
                let db = self.expr(b, code, scratch_base, depth + 1, defined, reg_of);
                code.push(Insn::Cmp {
                    op: *op,
                    dst,
                    a: dst,
                    b: dst + 1,
                });
                da.max(db)
            }
            E::Un(op, a) => {
                let da = self.expr(a, code, scratch_base, depth, defined, reg_of);
                code.push(Insn::Un {
                    op: *op,
                    dst,
                    a: dst,
                });
                da
            }
            E::Select(c, a, b) => {
                let dc = self.expr(c, code, scratch_base, depth, defined, reg_of);
                code.push(Insn::CoverSel { cond: dst });
                let jump_else = code.len();
                code.push(Insn::JumpIfFalse {
                    cond: dst,
                    target: 0,
                });
                let da = self.expr(a, code, scratch_base, depth, defined, reg_of);
                let jump_end = code.len();
                code.push(Insn::Jump { target: 0 });
                let else_at = code.len() as u32;
                let db = self.expr(b, code, scratch_base, depth, defined, reg_of);
                let end_at = code.len() as u32;
                if let Insn::JumpIfFalse { target, .. } = &mut code[jump_else] {
                    *target = else_at;
                }
                if let Insn::Jump { target } = &mut code[jump_end] {
                    *target = end_at;
                }
                dc.max(da).max(db)
            }
        }
    }

    fn library(
        &mut self,
        df: &fuzzyflow_ir::Dataflow,
        n: fuzzyflow_graph::NodeId,
        l: &fuzzyflow_ir::LibraryNode,
        node_site: u64,
    ) -> LibraryPlan {
        let mut conn_slots: Vec<String> = Vec::new();
        let mut inputs = Vec::new();
        let in_memlets = df.in_memlets(n);
        for (_, m) in &in_memlets {
            match &m.dst_conn {
                None => inputs.push(LibInput::Fail(ExecError::Malformed(format!(
                    "input memlet of library '{}' has no connector",
                    l.name
                )))),
                Some(conn) => {
                    let slot = match conn_slots.iter().position(|c| c == conn) {
                        Some(i) => i,
                        None => {
                            conn_slots.push(conn.clone());
                            conn_slots.len() - 1
                        }
                    };
                    inputs.push(LibInput::Read {
                        slot,
                        plan: self.memlet(m),
                    });
                }
            }
        }
        let args: Vec<Result<usize, ExecError>> =
            l.op.input_conns()
                .iter()
                .map(|conn| {
                    conn_slots.iter().position(|c| c == conn).ok_or_else(|| {
                        ExecError::Malformed(format!(
                            "library '{}' missing input connector '{conn}'",
                            l.name
                        ))
                    })
                })
                .collect();
        let out_conn = l.op.output_conns()[0];
        let out_writes: Vec<LibOutWrite> = df
            .out_memlets(n)
            .iter()
            .map(|(_, m)| match &m.src_conn {
                None => LibOutWrite::Fail(ExecError::Malformed(format!(
                    "output memlet of library '{}' has no connector",
                    l.name
                ))),
                Some(conn) if conn == out_conn => LibOutWrite::Write(self.memlet(m)),
                Some(conn) => LibOutWrite::Fail(ExecError::Malformed(format!(
                    "library '{}' has no output connector '{conn}'",
                    l.name
                ))),
            })
            .collect();
        LibraryPlan {
            name: l.name.clone(),
            cover_loc: location_id(&[node_site]),
            op: l.op.clone(),
            inputs,
            n_slots: conn_slots.len(),
            args,
            first_in_data: in_memlets
                .first()
                .map(|(_, m)| DataId(self.data.intern(&m.data))),
            out_writes,
        }
    }
}

/// Per-run execution context: step budget, collectives, coverage.
struct RunCtx<'a> {
    steps: u64,
    max_steps: u64,
    comm: Option<&'a dyn CommHandler>,
    cov: Option<&'a mut CoverageMap>,
}

impl RunCtx<'_> {
    #[inline]
    fn tick(&mut self, n: u64) -> Result<(), ExecError> {
        self.steps += n;
        if self.steps > self.max_steps {
            return Err(ExecError::StepLimitExceeded {
                limit: self.max_steps,
            });
        }
        Ok(())
    }

    #[inline]
    fn cover(&mut self, loc: u64) {
        if let Some(c) = self.cov.as_deref_mut() {
            c.record(loc);
        }
    }

    #[inline]
    fn cover_parts(&mut self, parts: &[u64]) {
        if let Some(c) = self.cov.as_deref_mut() {
            c.record(location_id(parts));
        }
    }
}

/// A reusable execution context for one [`Program`]: id-indexed `Vec`
/// storage for symbols and arrays plus scratch buffers, all retained
/// between runs so consecutive trials reset buffers in place instead of
/// reallocating.
pub struct Executor<'p> {
    prog: &'p Program,
    syms: Vec<Option<i64>>,
    arrays: Vec<Option<ArrayValue>>,
    /// Whether the slot is semantically present in the current run (stale
    /// buffers from earlier trials are kept for reuse but not visible).
    live: Vec<bool>,
    extra_syms: Vec<(String, i64)>,
    extra_arrays: Vec<(String, ArrayValue)>,
    // Scratch, reused across runs.
    stack: Vec<i64>,
    regs: Vec<Scalar>,
    in_vals: Vec<Vec<Scalar>>,
    out_vals: Vec<Vec<Scalar>>,
    lib_dims: Vec<Vec<i64>>,
    dims_buf: Vec<ConcreteRange>,
    point: Vec<i64>,
}

impl<'p> Executor<'p> {
    /// Creates an executor with empty storage sized for `prog`.
    pub fn new(prog: &'p Program) -> Self {
        Executor {
            prog,
            syms: vec![None; prog.syms.len()],
            arrays: (0..prog.data.len()).map(|_| None).collect(),
            live: vec![false; prog.data.len()],
            extra_syms: Vec::new(),
            extra_arrays: Vec::new(),
            stack: Vec::new(),
            regs: Vec::new(),
            in_vals: Vec::new(),
            out_vals: Vec::new(),
            lib_dims: Vec::new(),
            dims_buf: Vec::new(),
            point: Vec::new(),
        }
    }

    /// Runs the program against `input` without consuming it: inputs are
    /// copied into the executor's reusable buffers, and the resulting
    /// system state stays inside the executor for inspection via
    /// [`Executor::array`], [`Executor::symbol`], [`Executor::compare_on`]
    /// or [`Executor::to_state`]. This is the zero-allocation trial entry
    /// point of the differential fuzzer.
    pub fn execute(
        &mut self,
        input: &ExecState,
        opts: &ExecOptions,
        comm: Option<&dyn CommHandler>,
        cov: Option<&mut CoverageMap>,
    ) -> Result<(), ExecError> {
        self.extra_syms.clear();
        self.extra_arrays.clear();
        for s in &mut self.syms {
            *s = None;
        }
        for (name, v) in input.symbols.iter() {
            match self.prog.sym_id(name) {
                Some(id) => self.syms[id.idx()] = Some(v),
                None => self.extra_syms.push((name.to_string(), v)),
            }
        }
        for l in &mut self.live {
            *l = false;
        }
        for (name, arr) in &input.arrays {
            match self.prog.data_id(name) {
                Some(id) => {
                    match &mut self.arrays[id.idx()] {
                        Some(buf) => buf.copy_from(arr),
                        slot @ None => *slot = Some(arr.clone()),
                    }
                    self.live[id.idx()] = true;
                }
                None => self.extra_arrays.push((name.clone(), arr.clone())),
            }
        }
        self.run_loaded(opts, comm, cov)
    }

    /// Runs the program mutating `state` in place — the exact contract of
    /// the tree-walk [`crate::run_with`], including partially-updated
    /// state on error.
    pub fn run_in_place(
        &mut self,
        state: &mut ExecState,
        opts: &ExecOptions,
        comm: Option<&dyn CommHandler>,
        cov: Option<&mut CoverageMap>,
    ) -> Result<(), ExecError> {
        self.extra_syms.clear();
        self.extra_arrays.clear();
        for s in &mut self.syms {
            *s = None;
        }
        for (name, v) in state.symbols.iter() {
            if let Some(id) = self.prog.sym_id(name) {
                self.syms[id.idx()] = Some(v);
            }
        }
        for l in &mut self.live {
            *l = false;
        }
        for (i, name) in self.prog.data.names.iter().enumerate() {
            if let Some(arr) = state.arrays.remove(name) {
                self.arrays[i] = Some(arr);
                self.live[i] = true;
            }
        }
        let res = self.run_loaded(opts, comm, cov);
        // Write back even on error: the tree-walk engine mutates its state
        // in place, so partial updates must be observable identically.
        for (i, name) in self.prog.data.names.iter().enumerate() {
            if self.live[i] {
                if let Some(arr) = self.arrays[i].take() {
                    state.arrays.insert(name.clone(), arr);
                }
            }
        }
        for (i, name) in self.prog.syms.names.iter().enumerate() {
            match self.syms[i] {
                Some(v) => {
                    state.symbols.set(name.clone(), v);
                }
                None => {
                    state.symbols.remove(name);
                }
            }
        }
        res
    }

    /// Final value of a symbol after [`Executor::execute`].
    pub fn symbol(&self, name: &str) -> Option<i64> {
        match self.prog.sym_id(name) {
            Some(id) => self.syms[id.idx()],
            None => self
                .extra_syms
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v),
        }
    }

    /// Final contents of a container after [`Executor::execute`].
    pub fn array(&self, name: &str) -> Option<&ArrayValue> {
        match self.prog.data_id(name) {
            Some(id) if self.live[id.idx()] => self.arrays[id.idx()].as_ref(),
            Some(_) => None,
            None => self
                .extra_arrays
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, a)| a),
        }
    }

    /// Compares the named containers between two executors' final states,
    /// mirroring [`ExecState::compare_on`].
    pub fn compare_on(
        &self,
        other: &Executor<'_>,
        names: &[String],
        tol: f64,
    ) -> Option<StateMismatch> {
        for name in names {
            match (self.array(name), other.array(name)) {
                (Some(a), Some(b)) => {
                    if let Some(i) = a.first_mismatch(b, tol) {
                        let lhs = if i < a.len() {
                            a.get(i).to_string()
                        } else {
                            "<shape>".into()
                        };
                        let rhs = if i < b.len() {
                            b.get(i).to_string()
                        } else {
                            "<shape>".into()
                        };
                        return Some(StateMismatch {
                            data: name.clone(),
                            index: i,
                            lhs,
                            rhs,
                        });
                    }
                }
                (a, b) => {
                    if a.is_some() != b.is_some() {
                        return Some(StateMismatch {
                            data: name.clone(),
                            index: 0,
                            lhs: if a.is_some() {
                                "<present>".into()
                            } else {
                                "<missing>".into()
                            },
                            rhs: if b.is_some() {
                                "<present>".into()
                            } else {
                                "<missing>".into()
                            },
                        });
                    }
                }
            }
        }
        None
    }

    /// Materializes the executor's current state as an [`ExecState`]
    /// (clones all live buffers).
    pub fn to_state(&self) -> ExecState {
        let mut st = ExecState::new();
        for (name, v) in &self.extra_syms {
            st.symbols.set(name.clone(), *v);
        }
        for (i, name) in self.prog.syms.names.iter().enumerate() {
            if let Some(v) = self.syms[i] {
                st.symbols.set(name.clone(), v);
            }
        }
        for (name, arr) in &self.extra_arrays {
            st.arrays.insert(name.clone(), arr.clone());
        }
        for (i, name) in self.prog.data.names.iter().enumerate() {
            if self.live[i] {
                if let Some(arr) = &self.arrays[i] {
                    st.arrays.insert(name.clone(), arr.clone());
                }
            }
        }
        st
    }

    // ----- runtime ------------------------------------------------------

    fn run_loaded(
        &mut self,
        opts: &ExecOptions,
        comm: Option<&dyn CommHandler>,
        cov: Option<&mut CoverageMap>,
    ) -> Result<(), ExecError> {
        let mut ctx = RunCtx {
            steps: 0,
            max_steps: opts.max_steps,
            comm,
            cov,
        };
        self.allocate()?;
        let prog = self.prog;
        let mut current = prog.start;
        loop {
            ctx.tick(1)?;
            let sp = &prog.states[current];
            ctx.cover(sp.site);
            self.exec_block(&sp.body, &mut ctx)?;
            let mut next = None;
            for ep in &sp.edges {
                if self.eval_cond(&ep.cond)? {
                    for (sym, code) in &ep.assigns {
                        let v = self.eval_code(code)?;
                        self.syms[sym.idx()] = Some(v);
                    }
                    ctx.cover(ep.cover_loc);
                    next = Some(ep.dst);
                    break;
                }
            }
            match next {
                Some(n) => current = n,
                None => return Ok(()),
            }
        }
    }

    /// Allocates declared containers the caller did not provide, reusing
    /// retained buffers of matching dtype/shape from previous runs.
    fn allocate(&mut self) -> Result<(), ExecError> {
        let prog = self.prog;
        for ap in &prog.arrays {
            let i = ap.data.idx();
            if self.live[i] {
                continue;
            }
            let mut shape = Vec::with_capacity(ap.shape.len());
            for ic in &ap.shape {
                shape.push(self.eval_idx(ic)?);
            }
            if shape.iter().any(|&d| d < 0) {
                return Err(ExecError::Malformed(format!(
                    "container '{}' has negative dimension in shape {shape:?}",
                    prog.data.names[i]
                )));
            }
            let reusable = matches!(
                &self.arrays[i],
                Some(buf) if buf.dtype() == ap.dtype && buf.shape() == shape.as_slice()
            );
            if reusable {
                let buf = self.arrays[i].as_mut().expect("checked above");
                match ap.storage {
                    Storage::Host => buf.fill_zero(),
                    Storage::Device => buf.fill_garbage(),
                }
            } else {
                self.arrays[i] = Some(match ap.storage {
                    Storage::Host => ArrayValue::zeros(ap.dtype, shape),
                    Storage::Device => ArrayValue::garbage(ap.dtype, shape),
                });
            }
            self.live[i] = true;
        }
        Ok(())
    }

    fn exec_block(&mut self, block: &'p BlockPlan, ctx: &mut RunCtx<'_>) -> Result<(), ExecError> {
        if let Some(e) = &block.error {
            return Err(e.clone());
        }
        for step in &block.steps {
            match step {
                Step::Access(d) => {
                    if !self.live[d.idx()] {
                        return Err(ExecError::UnknownData(
                            self.prog.data.names[d.idx()].clone(),
                        ));
                    }
                }
                Step::Tasklet(tp) => {
                    ctx.tick(1)?;
                    ctx.cover(tp.cover_loc);
                    self.exec_tasklet(tp, ctx)?;
                }
                Step::Map(mp) => {
                    ctx.cover(mp.cover_loc);
                    self.exec_map(mp, 0, ctx)?;
                }
                Step::Library(lp) => {
                    ctx.cover(lp.cover_loc);
                    self.exec_library(lp, ctx)?;
                }
            }
        }
        Ok(())
    }

    fn exec_map(
        &mut self,
        mp: &'p MapPlan,
        dim: usize,
        ctx: &mut RunCtx<'_>,
    ) -> Result<(), ExecError> {
        if dim == mp.params.len() {
            ctx.tick(1)?;
            return self.exec_block(&mp.body, ctx);
        }
        let r = self.eval_range(&mp.ranges[dim])?;
        let param = mp.params[dim].idx();
        let saved = self.syms[param];
        let len = r.len() as i64;
        for k in 0..len {
            self.syms[param] = Some(r.start + k * r.step);
            self.exec_map(mp, dim + 1, ctx)?;
        }
        self.syms[param] = saved;
        Ok(())
    }

    fn exec_tasklet(&mut self, tp: &'p TaskletPlan, ctx: &mut RunCtx<'_>) -> Result<(), ExecError> {
        let mut in_vals = std::mem::take(&mut self.in_vals);
        let mut out_vals = std::mem::take(&mut self.out_vals);
        let mut regs = std::mem::take(&mut self.regs);
        if in_vals.len() < tp.n_conn_slots {
            in_vals.resize_with(tp.n_conn_slots, Vec::new);
        }
        if out_vals.len() < tp.n_out_slots {
            out_vals.resize_with(tp.n_out_slots, Vec::new);
        }
        if regs.len() < tp.n_regs {
            regs.resize(tp.n_regs, Scalar::I64(0));
        }
        let res = self.exec_tasklet_inner(tp, ctx, &mut in_vals, &mut out_vals, &mut regs);
        self.in_vals = in_vals;
        self.out_vals = out_vals;
        self.regs = regs;
        res
    }

    fn exec_tasklet_inner(
        &mut self,
        tp: &'p TaskletPlan,
        ctx: &mut RunCtx<'_>,
        in_vals: &mut [Vec<Scalar>],
        out_vals: &mut [Vec<Scalar>],
        regs: &mut [Scalar],
    ) -> Result<(), ExecError> {
        // Gather inputs per connector slot, in memlet order.
        for ip in &tp.inputs {
            match ip {
                InputPlan::Fail(e) => return Err(e.clone()),
                InputPlan::Read { slot, conn, plan } => {
                    let buf = &mut in_vals[*slot];
                    buf.clear();
                    self.read_plan(plan, ctx, buf, &tp.name)?;
                    if buf.len() != 1 && buf.len() != tp.lanes {
                        return Err(ExecError::VolumeMismatch {
                            context: format!("tasklet '{}' input '{conn}'", tp.name),
                            expected: tp.lanes,
                            actual: buf.len(),
                        });
                    }
                }
            }
        }
        // Execute code lane-wise.
        for b in out_vals[..tp.n_out_slots].iter_mut() {
            b.clear();
        }
        for lane in 0..tp.lanes {
            for (slot, &reg) in tp.conn_regs.iter().enumerate() {
                let vals = &in_vals[slot];
                regs[reg as usize] = if vals.len() == 1 { vals[0] } else { vals[lane] };
            }
            self.run_code(&tp.code, ctx, regs, &tp.name)?;
            for g in &tp.gather {
                match g {
                    GatherSpec::Push { slot, reg } => out_vals[*slot].push(regs[*reg as usize]),
                    GatherSpec::Fail(e) => return Err(e.clone()),
                }
            }
        }
        // Deliver outputs, in memlet order.
        for ow in &tp.out_writes {
            match ow {
                OutWrite::Fail(e) => return Err(e.clone()),
                OutWrite::Write { slot, plan } => {
                    let vals = std::mem::take(&mut out_vals[*slot]);
                    let r = self.write_plan(plan, ctx, &vals, &tp.name);
                    out_vals[*slot] = vals;
                    r?;
                }
            }
        }
        Ok(())
    }

    fn run_code(
        &mut self,
        code: &'p [Insn],
        ctx: &mut RunCtx<'_>,
        regs: &mut [Scalar],
        tasklet: &str,
    ) -> Result<(), ExecError> {
        let mut pc = 0usize;
        let mut site = 0u64;
        let mut sel = 0u64;
        while pc < code.len() {
            match &code[pc] {
                Insn::Stmt { site: s } => {
                    site = *s;
                    sel = 0;
                }
                Insn::Const { dst, val } => regs[*dst as usize] = *val,
                Insn::Mov { dst, src } => regs[*dst as usize] = regs[*src as usize],
                Insn::LoadSym { dst, sym } => match self.syms[sym.idx()] {
                    Some(v) => regs[*dst as usize] = Scalar::I64(v),
                    None => {
                        return Err(ExecError::UndefinedRef {
                            tasklet: tasklet.to_string(),
                            name: self.prog.syms.names[sym.idx()].clone(),
                        })
                    }
                },
                Insn::Bin { op, dst, a, b } => {
                    regs[*dst as usize] = apply_bin(*op, regs[*a as usize], regs[*b as usize])?;
                }
                Insn::Un { op, dst, a } => {
                    regs[*dst as usize] = apply_un(*op, regs[*a as usize]);
                }
                Insn::Cmp { op, dst, a, b } => {
                    regs[*dst as usize] =
                        Scalar::Bool(apply_cmp(*op, regs[*a as usize], regs[*b as usize]));
                }
                Insn::CoverSel { cond } => {
                    let cv = regs[*cond as usize].as_bool();
                    sel += 1;
                    ctx.cover_parts(&[site, sel, cv as u64]);
                }
                Insn::JumpIfFalse { cond, target } => {
                    if !regs[*cond as usize].as_bool() {
                        pc = *target as usize;
                        continue;
                    }
                }
                Insn::Jump { target } => {
                    pc = *target as usize;
                    continue;
                }
            }
            pc += 1;
        }
        Ok(())
    }

    fn exec_library(&mut self, lp: &'p LibraryPlan, ctx: &mut RunCtx<'_>) -> Result<(), ExecError> {
        let mut in_vals = std::mem::take(&mut self.in_vals);
        let mut lib_dims = std::mem::take(&mut self.lib_dims);
        if in_vals.len() < lp.n_slots {
            in_vals.resize_with(lp.n_slots, Vec::new);
        }
        if lib_dims.len() < lp.n_slots {
            lib_dims.resize_with(lp.n_slots, Vec::new);
        }
        let res = self.exec_library_inner(lp, ctx, &mut in_vals, &mut lib_dims);
        self.in_vals = in_vals;
        self.lib_dims = lib_dims;
        res
    }

    fn exec_library_inner(
        &mut self,
        lp: &'p LibraryPlan,
        ctx: &mut RunCtx<'_>,
        in_vals: &mut [Vec<Scalar>],
        lib_dims: &mut [Vec<i64>],
    ) -> Result<(), ExecError> {
        for li in &lp.inputs {
            match li {
                LibInput::Fail(e) => return Err(e.clone()),
                LibInput::Read { slot, plan } => {
                    // Block dims evaluate before the read, like the
                    // tree-walk engine's `block_dims` call.
                    let dims = &mut lib_dims[*slot];
                    dims.clear();
                    self.eval_block_dims(plan, dims)?;
                    let buf = &mut in_vals[*slot];
                    buf.clear();
                    self.read_plan(plan, ctx, buf, &lp.name)?;
                }
            }
        }
        let arg = |i: usize| -> Result<(&Vec<i64>, &Vec<Scalar>), ExecError> {
            match &lp.args[i] {
                Ok(slot) => Ok((&lib_dims[*slot], &in_vals[*slot])),
                Err(e) => Err(e.clone()),
            }
        };

        let out: Vec<Scalar> = match &lp.op {
            LibraryOp::MatMul => {
                let (da, a) = arg(0)?;
                let (db, b) = arg(1)?;
                let c = matmul(&lp.name, da, a, db, b)?;
                ctx.tick(c.len() as u64)?;
                c
            }
            LibraryOp::Transpose => {
                let (d, v) = arg(0)?;
                if d.len() != 2 {
                    return Err(ExecError::ShapeError {
                        node: lp.name.clone(),
                        detail: format!("transpose expects 2-D input, got {d:?}"),
                    });
                }
                let (r, cdim) = (d[0] as usize, d[1] as usize);
                let mut out = vec![Scalar::F64(0.0); v.len()];
                for i in 0..r {
                    for j in 0..cdim {
                        out[j * r + i] = v[i * cdim + j];
                    }
                }
                out
            }
            LibraryOp::Reduce { op, axis } => {
                let (d, v) = arg(0)?;
                reduce(&lp.name, *op, *axis, d, v)?
            }
            LibraryOp::Copy => {
                let (_, v) = arg(0)?;
                v.clone()
            }
            LibraryOp::Softmax => {
                let (d, v) = arg(0)?;
                softmax(d, v)
            }
            LibraryOp::Comm(comm_op) => {
                let (d, v) = arg(0)?;
                let handler = ctx.comm.ok_or_else(|| ExecError::NoCommHandler {
                    node: lp.name.clone(),
                })?;
                let rank = self
                    .prog
                    .sym_id("rank")
                    .and_then(|id| self.syms[id.idx()])
                    .unwrap_or(0);
                let dtype = lp
                    .first_in_data
                    .filter(|id| self.live[id.idx()])
                    .and_then(|id| self.arrays[id.idx()].as_ref())
                    .map(|a| a.dtype())
                    .unwrap_or(DType::F64);
                let mut buf = ArrayValue::zeros(dtype, d.clone());
                for (i, &s) in v.iter().enumerate() {
                    buf.set(i, s);
                }
                let result = handler.collective(&lp.name, comm_op, rank, &buf)?;
                (0..result.len()).map(|i| result.get(i)).collect()
            }
        };

        for ow in &lp.out_writes {
            match ow {
                LibOutWrite::Fail(e) => return Err(e.clone()),
                LibOutWrite::Write(plan) => self.write_plan(plan, ctx, &out, &lp.name)?,
            }
        }
        Ok(())
    }

    // ----- memlet access ------------------------------------------------

    /// Reads the elements a memlet delivers into `out`, with the tree-walk
    /// engine's error order: unknown data, then symbolic evaluation, then
    /// out-of-bounds, then empty-volume, then the step tick.
    fn read_plan(
        &mut self,
        plan: &'p MemPlan,
        ctx: &mut RunCtx<'_>,
        out: &mut Vec<Scalar>,
        context: &str,
    ) -> Result<(), ExecError> {
        let i = plan.data.idx();
        if !self.live[i] {
            return Err(ExecError::UnknownData(self.prog.data.names[i].clone()));
        }
        let arr = self.arrays[i].take().expect("live slot holds a buffer");
        let mut point = std::mem::take(&mut self.point);
        let mut dims = std::mem::take(&mut self.dims_buf);
        let res = self.read_plan_inner(plan, ctx, out, context, &arr, &mut point, &mut dims);
        self.point = point;
        self.dims_buf = dims;
        self.arrays[i] = Some(arr);
        res
    }

    #[allow(clippy::too_many_arguments)]
    fn read_plan_inner(
        &mut self,
        plan: &'p MemPlan,
        ctx: &mut RunCtx<'_>,
        out: &mut Vec<Scalar>,
        context: &str,
        arr: &ArrayValue,
        point: &mut Vec<i64>,
        dims: &mut Vec<ConcreteRange>,
    ) -> Result<(), ExecError> {
        match &plan.kind {
            MemKind::Single(idxs) => {
                point.clear();
                for (start, end) in idxs {
                    point.push(self.eval_idx(start)?);
                    self.eval_idx(end)?;
                }
                let off =
                    fuzzyflow_ir::DataDesc::linearize(arr.shape(), point).ok_or_else(|| {
                        ExecError::OutOfBounds {
                            data: self.prog.data.names[plan.data.idx()].clone(),
                            point: point.clone(),
                            shape: arr.shape().to_vec(),
                        }
                    })?;
                out.push(arr.get(off));
                ctx.tick(1)?;
            }
            MemKind::Ranges(rps) => {
                dims.clear();
                for rp in rps {
                    let r = self.eval_range(rp)?;
                    dims.push(r);
                }
                iter_points(dims, point, |p| {
                    let off =
                        fuzzyflow_ir::DataDesc::linearize(arr.shape(), p).ok_or_else(|| {
                            ExecError::OutOfBounds {
                                data: self.prog.data.names[plan.data.idx()].clone(),
                                point: p.to_vec(),
                                shape: arr.shape().to_vec(),
                            }
                        })?;
                    out.push(arr.get(off));
                    Ok(())
                })?;
                if out.is_empty() {
                    return Err(ExecError::VolumeMismatch {
                        context: context.to_string(),
                        expected: 1,
                        actual: 0,
                    });
                }
                ctx.tick(out.len() as u64)?;
            }
        }
        Ok(())
    }

    /// Writes `vals` through a memlet, applying WCR; error order matches
    /// the tree-walk engine: symbolic evaluation, then volume mismatch,
    /// then the tick, then unknown data, then per-point bounds.
    fn write_plan(
        &mut self,
        plan: &'p MemPlan,
        ctx: &mut RunCtx<'_>,
        vals: &[Scalar],
        context: &str,
    ) -> Result<(), ExecError> {
        let mut point = std::mem::take(&mut self.point);
        let mut dims = std::mem::take(&mut self.dims_buf);
        let res = self.write_plan_inner(plan, ctx, vals, context, &mut point, &mut dims);
        self.point = point;
        self.dims_buf = dims;
        res
    }

    fn write_plan_inner(
        &mut self,
        plan: &'p MemPlan,
        ctx: &mut RunCtx<'_>,
        vals: &[Scalar],
        context: &str,
        point: &mut Vec<i64>,
        dims: &mut Vec<ConcreteRange>,
    ) -> Result<(), ExecError> {
        let volume = match &plan.kind {
            MemKind::Single(idxs) => {
                point.clear();
                for (start, end) in idxs {
                    point.push(self.eval_idx(start)?);
                    self.eval_idx(end)?;
                }
                1usize
            }
            MemKind::Ranges(rps) => {
                dims.clear();
                for rp in rps {
                    let r = self.eval_range(rp)?;
                    dims.push(r);
                }
                dims.iter().map(|d| d.len()).product()
            }
        };
        if volume != vals.len() {
            return Err(ExecError::VolumeMismatch {
                context: context.to_string(),
                expected: volume,
                actual: vals.len(),
            });
        }
        ctx.tick(volume as u64)?;
        let i = plan.data.idx();
        if !self.live[i] {
            return Err(ExecError::UnknownData(self.prog.data.names[i].clone()));
        }
        let mut arr = self.arrays[i].take().expect("live slot holds a buffer");
        let name = &self.prog.data.names[i];
        let res =
            (|| -> Result<(), ExecError> {
                match &plan.kind {
                    MemKind::Single(_) => {
                        let off = fuzzyflow_ir::DataDesc::linearize(arr.shape(), point)
                            .ok_or_else(|| ExecError::OutOfBounds {
                                data: name.clone(),
                                point: point.clone(),
                                shape: arr.shape().to_vec(),
                            })?;
                        let stored = match plan.wcr {
                            None => vals[0],
                            Some(wcr) => combine_wcr(wcr, arr.get(off), vals[0]),
                        };
                        arr.set(off, stored);
                        Ok(())
                    }
                    MemKind::Ranges(_) => {
                        let mut k = 0usize;
                        iter_points(dims, point, |p| {
                            let off = fuzzyflow_ir::DataDesc::linearize(arr.shape(), p)
                                .ok_or_else(|| ExecError::OutOfBounds {
                                    data: name.clone(),
                                    point: p.to_vec(),
                                    shape: arr.shape().to_vec(),
                                })?;
                            let v = vals[k];
                            k += 1;
                            let stored = match plan.wcr {
                                None => v,
                                Some(wcr) => combine_wcr(wcr, arr.get(off), v),
                            };
                            arr.set(off, stored);
                            Ok(())
                        })
                    }
                }
            })();
        self.arrays[i] = Some(arr);
        res
    }

    /// Per-dimension block lengths of a memlet's concrete subset
    /// (tree-walk `block_dims`), evaluated without touching the array.
    fn eval_block_dims(&mut self, plan: &'p MemPlan, out: &mut Vec<i64>) -> Result<(), ExecError> {
        match &plan.kind {
            MemKind::Single(idxs) => {
                for (start, end) in idxs {
                    self.eval_idx(start)?;
                    self.eval_idx(end)?;
                    out.push(1);
                }
            }
            MemKind::Ranges(rps) => {
                for rp in rps {
                    let r = self.eval_range(rp)?;
                    out.push(r.len() as i64);
                }
            }
        }
        Ok(())
    }

    // ----- expression evaluation ----------------------------------------

    #[inline]
    fn eval_idx(&mut self, ic: &IdxCode) -> Result<i64, ExecError> {
        match ic {
            IdxCode::Const(v) => Ok(*v),
            IdxCode::Sym(id) => self.syms[id.idx()].ok_or_else(|| {
                ExecError::Sym(SymError::Unbound(self.prog.syms.names[id.idx()].clone()))
            }),
            IdxCode::Affine(terms) => {
                let mut acc = 0i64;
                for (k, t) in terms.iter().enumerate() {
                    let v = match t.sym {
                        None => t.coeff,
                        Some(id) => {
                            let s = self.syms[id.idx()].ok_or_else(|| {
                                ExecError::Sym(SymError::Unbound(
                                    self.prog.syms.names[id.idx()].clone(),
                                ))
                            })?;
                            t.coeff
                                .checked_mul(s)
                                .ok_or(ExecError::Sym(SymError::Overflow))?
                        }
                    };
                    acc = if k == 0 {
                        v
                    } else if t.sub {
                        acc.checked_sub(v)
                            .ok_or(ExecError::Sym(SymError::Overflow))?
                    } else {
                        acc.checked_add(v)
                            .ok_or(ExecError::Sym(SymError::Overflow))?
                    };
                }
                Ok(acc)
            }
            IdxCode::Code(code) => self.eval_code(code),
        }
    }

    fn eval_code(&mut self, code: &SymCode) -> Result<i64, ExecError> {
        let mut stack = std::mem::take(&mut self.stack);
        stack.clear();
        let res = eval_sym_ops(&code.ops, &self.syms, &self.prog.syms.names, &mut stack);
        self.stack = stack;
        res
    }

    fn eval_range(&mut self, rp: &RangePlan) -> Result<ConcreteRange, ExecError> {
        let start = self.eval_idx(&rp.start)?;
        let end = self.eval_idx(&rp.end)?;
        let step = self.eval_idx(&rp.step)?;
        if step <= 0 {
            return Err(ExecError::Sym(SymError::InvalidStep(step)));
        }
        Ok(ConcreteRange { start, end, step })
    }

    fn eval_cond(&mut self, c: &CondPlan) -> Result<bool, ExecError> {
        Ok(match c {
            CondPlan::True => true,
            CondPlan::Cmp(op, a, b) => {
                let (x, y) = (self.eval_idx(a)?, self.eval_idx(b)?);
                match op {
                    CmpOp::Lt => x < y,
                    CmpOp::Le => x <= y,
                    CmpOp::Gt => x > y,
                    CmpOp::Ge => x >= y,
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                }
            }
            CondPlan::Not(x) => !self.eval_cond(x)?,
            CondPlan::And(l, r) => self.eval_cond(l)? && self.eval_cond(r)?,
            CondPlan::Or(l, r) => self.eval_cond(l)? || self.eval_cond(r)?,
        })
    }
}

/// Row-major iteration over the points of concrete ranges, reusing the
/// caller's point buffer (no per-point allocation). Calls `f` for every
/// covered multi-index; empty ranges yield no points, a zero-rank subset
/// yields exactly one.
fn iter_points(
    dims: &[ConcreteRange],
    point: &mut Vec<i64>,
    mut f: impl FnMut(&[i64]) -> Result<(), ExecError>,
) -> Result<(), ExecError> {
    if dims.iter().any(|d| d.is_empty()) {
        return Ok(());
    }
    point.clear();
    point.extend(dims.iter().map(|d| d.start));
    loop {
        f(point)?;
        // Advance odometer from the last dimension.
        let mut d = dims.len();
        loop {
            if d == 0 {
                return Ok(());
            }
            d -= 1;
            point[d] += dims[d].step;
            if point[d] < dims[d].end {
                break;
            }
            point[d] = dims[d].start;
        }
    }
}

/// Postfix evaluation of a compiled symbolic expression, with the same
/// error semantics as [`SymExpr::eval`].
fn eval_sym_ops(
    ops: &[SymOp],
    syms: &[Option<i64>],
    names: &[String],
    stack: &mut Vec<i64>,
) -> Result<i64, ExecError> {
    for op in ops {
        match op {
            SymOp::Push(v) => stack.push(*v),
            SymOp::Load(id) => match syms[id.idx()] {
                Some(v) => stack.push(v),
                None => return Err(ExecError::Sym(SymError::Unbound(names[id.idx()].clone()))),
            },
            SymOp::Add => {
                let b = stack.pop().expect("stack");
                let a = stack.pop().expect("stack");
                stack.push(a.checked_add(b).ok_or(ExecError::Sym(SymError::Overflow))?);
            }
            SymOp::Sub => {
                let b = stack.pop().expect("stack");
                let a = stack.pop().expect("stack");
                stack.push(a.checked_sub(b).ok_or(ExecError::Sym(SymError::Overflow))?);
            }
            SymOp::Mul => {
                let b = stack.pop().expect("stack");
                let a = stack.pop().expect("stack");
                stack.push(a.checked_mul(b).ok_or(ExecError::Sym(SymError::Overflow))?);
            }
            SymOp::EnsureNonZero => {
                if *stack.last().expect("stack") == 0 {
                    return Err(ExecError::Sym(SymError::DivisionByZero));
                }
            }
            SymOp::DivE => {
                let a = stack.pop().expect("stack");
                let b = stack.pop().expect("stack");
                stack.push(
                    a.checked_div_euclid(b)
                        .ok_or(ExecError::Sym(SymError::Overflow))?,
                );
            }
            SymOp::ModE => {
                let a = stack.pop().expect("stack");
                let b = stack.pop().expect("stack");
                stack.push(
                    a.checked_rem_euclid(b)
                        .ok_or(ExecError::Sym(SymError::Overflow))?,
                );
            }
            SymOp::Min => {
                let b = stack.pop().expect("stack");
                let a = stack.pop().expect("stack");
                stack.push(a.min(b));
            }
            SymOp::Max => {
                let b = stack.pop().expect("stack");
                let a = stack.pop().expect("stack");
                stack.push(a.max(b));
            }
            SymOp::Neg => {
                let a = stack.pop().expect("stack");
                stack.push(a.checked_neg().ok_or(ExecError::Sym(SymError::Overflow))?);
            }
        }
    }
    Ok(stack.pop().expect("expression leaves one value"))
}
