//! AFL-style edge coverage instrumentation.
//!
//! Reproduces the mechanism behind the paper's AFL++ integration
//! (Sec. 5.1 *coverage-guided fuzzing*): the interpreter reports location
//! identifiers as it executes; consecutive locations are combined into
//! *edges* that index a fixed-size byte map with saturating hit counters
//! bucketed like AFL's. A fuzzer keeps an input if it touches a
//! `(edge, bucket)` pair never seen before.

/// Size of the coverage map (64 KiB, as in AFL).
pub const MAP_SIZE: usize = 1 << 16;

/// A coverage map for one execution.
#[derive(Clone)]
pub struct CoverageMap {
    map: Vec<u8>,
    prev_loc: u64,
}

impl Default for CoverageMap {
    fn default() -> Self {
        Self::new()
    }
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> Self {
        CoverageMap {
            map: vec![0u8; MAP_SIZE],
            prev_loc: 0,
        }
    }

    /// Records execution of the location `loc` (a stable hash of a program
    /// point). Combines with the previously executed location into an edge.
    pub fn record(&mut self, loc: u64) {
        let cur = mix(loc);
        let idx = ((cur ^ self.prev_loc) & (MAP_SIZE as u64 - 1)) as usize;
        self.map[idx] = self.map[idx].saturating_add(1);
        self.prev_loc = cur >> 1;
    }

    /// Resets the previous-location register (call between independent
    /// executions that share a map).
    pub fn reset_edge_state(&mut self) {
        self.prev_loc = 0;
    }

    /// Clears all counters.
    pub fn clear(&mut self) {
        self.map.fill(0);
        self.prev_loc = 0;
    }

    /// Number of distinct edges hit.
    pub fn edges_hit(&self) -> usize {
        self.map.iter().filter(|&&b| b > 0).count()
    }

    /// The raw per-edge hit counters (saturating `u8`, indexed by edge
    /// id). Coverage consumers — corpus schedulers weighting rare edges,
    /// per-edge reporting — read counts from here instead of keeping a
    /// side channel next to the map.
    pub fn hit_counts(&self) -> &[u8] {
        &self.map
    }

    /// Iterates the `(edge id, hit count)` pairs of every edge this
    /// execution touched, in edge-id order.
    pub fn hits(&self) -> impl Iterator<Item = (usize, u8)> + '_ {
        self.map
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// AFL-style bucketing of a raw hit count into a power-of-two class.
    fn bucket(count: u8) -> u8 {
        match count {
            0 => 0,
            1 => 1,
            2 => 2,
            3 => 4,
            4..=7 => 8,
            8..=15 => 16,
            16..=31 => 32,
            32..=127 => 64,
            _ => 128,
        }
    }

    /// Merges this execution's coverage into a global `virgin` map.
    /// Returns `true` if any new `(edge, bucket)` was discovered — the
    /// "interesting input" signal for the fuzzer queue.
    pub fn merge_into(&self, virgin: &mut [u8; MAP_SIZE]) -> bool {
        let mut new_coverage = false;
        for (i, &c) in self.map.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let b = Self::bucket(c);
            if virgin[i] & b == 0 {
                virgin[i] |= b;
                new_coverage = true;
            }
        }
        new_coverage
    }
}

/// SplitMix64 finalizer — cheap, well-distributed location mixing.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Stable location id from structural coordinates (state index, node path
/// hash, discriminator). Used by the interpreter to name program points.
pub fn location_id(parts: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
    for &p in parts {
        h ^= p;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_marks_edges() {
        let mut c = CoverageMap::new();
        assert_eq!(c.edges_hit(), 0);
        c.record(1);
        c.record(2);
        assert!(c.edges_hit() >= 1);
    }

    #[test]
    fn different_paths_different_edges() {
        let mut a = CoverageMap::new();
        a.record(1);
        a.record(2);
        let mut b = CoverageMap::new();
        b.record(2);
        b.record(1);
        // Order matters for edge coverage.
        assert_ne!(a.map, b.map);
    }

    #[test]
    fn merge_reports_new_coverage_once() {
        let mut virgin = [0u8; MAP_SIZE];
        let mut c = CoverageMap::new();
        c.record(7);
        c.record(8);
        assert!(c.merge_into(&mut virgin));
        assert!(!c.merge_into(&mut virgin)); // same coverage: nothing new
    }

    #[test]
    fn bucket_changes_count_as_new() {
        let mut virgin = [0u8; MAP_SIZE];
        let mut c = CoverageMap::new();
        c.record(7);
        c.record(8);
        c.merge_into(&mut virgin);
        // Hitting the same edge many more times moves it to a new bucket.
        let mut c2 = CoverageMap::new();
        for _ in 0..20 {
            c2.reset_edge_state();
            c2.record(7);
            c2.record(8);
        }
        assert!(c2.merge_into(&mut virgin));
    }

    #[test]
    fn clear_resets() {
        let mut c = CoverageMap::new();
        c.record(3);
        c.clear();
        assert_eq!(c.edges_hit(), 0);
    }

    #[test]
    fn location_id_stable_and_distinct() {
        assert_eq!(location_id(&[1, 2, 3]), location_id(&[1, 2, 3]));
        assert_ne!(location_id(&[1, 2, 3]), location_id(&[3, 2, 1]));
    }
}
