//! Runtime array values.

use fuzzyflow_ir::{DType, Scalar};

/// Sentinel bit pattern used to fill "uninitialized" device allocations.
/// Models the garbage contents of freshly allocated GPU memory that the
/// CLOUDSC GPU-kernel-extraction bug copies back to the host (paper
/// Sec. 6.4, Fig. 7). Deterministic so test failures reproduce exactly.
pub const GARBAGE_BITS: u64 = 0xDEAD_BEEF_DEAD_BEEF;

#[derive(Clone, Debug, PartialEq)]
enum Data {
    F64(Vec<f64>),
    F32(Vec<f32>),
    I64(Vec<i64>),
    I32(Vec<i32>),
    Bool(Vec<bool>),
}

/// A typed, shaped, row-major array value. Scalars are rank-0 arrays with
/// a single element.
#[derive(Clone, Debug, PartialEq)]
pub struct ArrayValue {
    dtype: DType,
    shape: Vec<i64>,
    data: Data,
}

impl ArrayValue {
    /// A zero-filled array.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is negative. Negative extents are always a
    /// shape bug in the caller; silently clamping them to empty arrays
    /// would let the bug surface far downstream as a confusing
    /// zero-length-data failure instead of at the allocation site.
    pub fn zeros(dtype: DType, shape: Vec<i64>) -> Self {
        assert!(
            shape.iter().all(|&d| d >= 0),
            "ArrayValue::zeros: negative dimension in shape {shape:?}"
        );
        let n = shape.iter().product::<i64>() as usize;
        let n = if shape.is_empty() { 1 } else { n };
        let data = match dtype {
            DType::F64 => Data::F64(vec![0.0; n]),
            DType::F32 => Data::F32(vec![0.0; n]),
            DType::I64 => Data::I64(vec![0; n]),
            DType::I32 => Data::I32(vec![0; n]),
            DType::Bool => Data::Bool(vec![false; n]),
        };
        ArrayValue { dtype, shape, data }
    }

    /// An array filled with a deterministic "uninitialized memory" pattern.
    pub fn garbage(dtype: DType, shape: Vec<i64>) -> Self {
        let mut v = Self::zeros(dtype, shape);
        v.fill_garbage();
        v
    }

    /// Resets every element to zero in place (no reallocation).
    pub fn fill_zero(&mut self) {
        match &mut self.data {
            Data::F64(v) => v.fill(0.0),
            Data::F32(v) => v.fill(0.0),
            Data::I64(v) => v.fill(0),
            Data::I32(v) => v.fill(0),
            Data::Bool(v) => v.fill(false),
        }
    }

    /// Resets every element to the deterministic [`GARBAGE_BITS`] pattern
    /// in place (no reallocation).
    pub fn fill_garbage(&mut self) {
        match &mut self.data {
            Data::F64(v) => v.fill(f64::from_bits(GARBAGE_BITS)),
            Data::F32(v) => v.fill(f32::from_bits(GARBAGE_BITS as u32)),
            Data::I64(v) => v.fill(GARBAGE_BITS as i64),
            Data::I32(v) => v.fill(GARBAGE_BITS as i32),
            Data::Bool(v) => v.fill(true),
        }
    }

    /// Makes `self` a bit-identical copy of `src`, reusing the existing
    /// element buffer when the dtypes match (the compiled engine's trial
    /// loop resets inputs in place with this instead of reallocating).
    pub fn copy_from(&mut self, src: &ArrayValue) {
        self.dtype = src.dtype;
        self.shape.clone_from(&src.shape);
        match (&mut self.data, &src.data) {
            (Data::F64(d), Data::F64(s)) => d.clone_from(s),
            (Data::F32(d), Data::F32(s)) => d.clone_from(s),
            (Data::I64(d), Data::I64(s)) => d.clone_from(s),
            (Data::I32(d), Data::I32(s)) => d.clone_from(s),
            (Data::Bool(d), Data::Bool(s)) => d.clone_from(s),
            (d, s) => *d = s.clone(),
        }
    }

    /// An array filled with one value.
    pub fn filled(dtype: DType, shape: Vec<i64>, value: Scalar) -> Self {
        let mut v = Self::zeros(dtype, shape);
        let value = value.cast(dtype);
        for i in 0..v.len() {
            v.set(i, value);
        }
        v
    }

    /// A rank-0 scalar value.
    pub fn scalar(value: Scalar) -> Self {
        let mut v = Self::zeros(value.dtype(), Vec::new());
        v.set(0, value);
        v
    }

    /// Builds an `f64` array from a slice (convenience for tests/examples).
    pub fn from_f64(shape: Vec<i64>, values: &[f64]) -> Self {
        assert_eq!(
            shape
                .iter()
                .product::<i64>()
                .max(if shape.is_empty() { 1 } else { 0 }),
            values.len() as i64,
            "value count must match shape"
        );
        ArrayValue {
            dtype: DType::F64,
            shape,
            data: Data::F64(values.to_vec()),
        }
    }

    /// Element type.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Concrete shape.
    pub fn shape(&self) -> &[i64] {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match &self.data {
            Data::F64(v) => v.len(),
            Data::F32(v) => v.len(),
            Data::I64(v) => v.len(),
            Data::I32(v) => v.len(),
            Data::Bool(v) => v.len(),
        }
    }

    /// True if the array has no elements (zero-sized dimension).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads the element at a linear offset.
    pub fn get(&self, idx: usize) -> Scalar {
        match &self.data {
            Data::F64(v) => Scalar::F64(v[idx]),
            Data::F32(v) => Scalar::F32(v[idx]),
            Data::I64(v) => Scalar::I64(v[idx]),
            Data::I32(v) => Scalar::I32(v[idx]),
            Data::Bool(v) => Scalar::Bool(v[idx]),
        }
    }

    /// Writes the element at a linear offset (casting to the array dtype).
    pub fn set(&mut self, idx: usize, value: Scalar) {
        match &mut self.data {
            Data::F64(v) => v[idx] = value.as_f64(),
            Data::F32(v) => v[idx] = value.as_f64() as f32,
            Data::I64(v) => v[idx] = value.as_i64(),
            Data::I32(v) => v[idx] = value.as_i64() as i32,
            Data::Bool(v) => v[idx] = value.as_bool(),
        }
    }

    /// Borrows the raw element buffer when the dtype is `F64` — the
    /// compiled engine's monomorphic fast path reads through this instead
    /// of boxing every element into a [`Scalar`].
    pub fn as_f64_slice(&self) -> Option<&[f64]> {
        match &self.data {
            Data::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Mutably borrows the shape and raw element buffer together when the
    /// dtype is `F64` (split borrow: the fast path linearizes against the
    /// shape while writing through the buffer).
    pub fn as_f64_parts_mut(&mut self) -> Option<(&[i64], &mut [f64])> {
        match &mut self.data {
            Data::F64(v) => Some((&self.shape, v)),
            _ => None,
        }
    }

    /// View as `f64` values (copying). Convenience for assertions.
    pub fn to_f64_vec(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.get(i).as_f64()).collect()
    }

    /// First differing linear index between two arrays under bit-exact
    /// comparison (`tol == 0`) or tolerance comparison. `None` means equal.
    /// Arrays of different dtype/shape differ at index 0 by convention.
    pub fn first_mismatch(&self, other: &ArrayValue, tol: f64) -> Option<usize> {
        if self.dtype != other.dtype || self.shape != other.shape {
            return Some(0);
        }
        (0..self.len()).find(|&i| {
            let (a, b) = (self.get(i), other.get(i));
            if tol == 0.0 {
                !a.bits_eq(b)
            } else {
                !a.approx_eq(b, tol)
            }
        })
    }

    /// Total size in bytes.
    pub fn byte_size(&self) -> usize {
        self.len() * self.dtype.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_len() {
        let a = ArrayValue::zeros(DType::F32, vec![2, 3]);
        assert_eq!(a.len(), 6);
        assert_eq!(a.get(5), Scalar::F32(0.0));
        assert_eq!(a.byte_size(), 24);
    }

    #[test]
    fn scalar_is_rank0() {
        let s = ArrayValue::scalar(Scalar::I64(42));
        assert_eq!(s.shape(), &[] as &[i64]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(0), Scalar::I64(42));
    }

    #[test]
    fn set_casts_to_dtype() {
        let mut a = ArrayValue::zeros(DType::I32, vec![2]);
        a.set(0, Scalar::F64(3.9));
        assert_eq!(a.get(0), Scalar::I32(3));
    }

    #[test]
    fn garbage_is_deterministic_and_nonzero() {
        let a = ArrayValue::garbage(DType::F64, vec![4]);
        let b = ArrayValue::garbage(DType::F64, vec![4]);
        assert_eq!(a, b);
        assert_ne!(a.get(0).as_f64(), 0.0);
    }

    #[test]
    fn first_mismatch_exact_and_tolerant() {
        let a = ArrayValue::from_f64(vec![3], &[1.0, 2.0, 3.0]);
        let mut b = a.clone();
        assert_eq!(a.first_mismatch(&b, 0.0), None);
        b.set(1, Scalar::F64(2.0 + 1e-9));
        assert_eq!(a.first_mismatch(&b, 0.0), Some(1));
        assert_eq!(a.first_mismatch(&b, 1e-5), None);
    }

    #[test]
    fn shape_mismatch_is_mismatch() {
        let a = ArrayValue::zeros(DType::F64, vec![2]);
        let b = ArrayValue::zeros(DType::F64, vec![3]);
        assert_eq!(a.first_mismatch(&b, 0.0), Some(0));
    }

    #[test]
    fn zero_sized_dimension() {
        let a = ArrayValue::zeros(DType::F64, vec![0, 4]);
        assert!(a.is_empty());
    }
}
