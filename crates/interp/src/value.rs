//! Runtime array values.
//!
//! Every [`ArrayValue`] buffer is allocated with **poisoned guard planes**:
//! [`GUARD_ELEMS`] slop elements before and after the payload, filled with
//! per-dtype sentinel patterns distinct from the "uninitialized device
//! memory" garbage patterns. The guards model the adjacent bytes an
//! out-of-bounds write would corrupt natively; the executor re-poisons
//! them on every reset and verifies them after every trial, so a stray
//! write faults at the offending container instead of surfacing later as
//! an opaque value mismatch. All public accessors (`len`, `get`, `set`,
//! slices, comparisons, `Debug`) window the payload — guards are invisible
//! outside this module except through [`ArrayValue::guards_intact`].

use fuzzyflow_ir::{DType, Scalar};
use std::fmt;

/// Sentinel bit pattern used to fill "uninitialized" `F64` device
/// allocations. Models the garbage contents of freshly allocated GPU
/// memory that the CLOUDSC GPU-kernel-extraction bug copies back to the
/// host (paper Sec. 6.4, Fig. 7). Deterministic so test failures
/// reproduce exactly. (Pinned by the engine-equivalence suite; the other
/// dtypes get their own distinct patterns below.)
pub const GARBAGE_BITS: u64 = 0xDEAD_BEEF_DEAD_BEEF;

/// `F32` garbage sentinel. Deliberately *not* a truncation of
/// [`GARBAGE_BITS`], so an `F32` buffer mistakenly reinterpreted as
/// another dtype (or vice versa) cannot masquerade as correctly
/// initialized garbage.
pub const GARBAGE_BITS_F32: u32 = 0xDEAD_F32B;

/// `I64` garbage sentinel (distinct from every other dtype's pattern).
pub const GARBAGE_BITS_I64: i64 = 0x0BAD_CAFE_0BAD_CAFE;

/// `I32` garbage sentinel (distinct from `GARBAGE_BITS as i32`, which
/// used to collide with the `F32` pattern bit-for-bit).
pub const GARBAGE_BITS_I32: i32 = 0x0BAD_F00D;

/// `Bool` garbage value. Booleans only have two states; `true` is the
/// "visibly uninitialized" one (zero-init would be indistinguishable from
/// a correct `fill_zero`).
pub const GARBAGE_BOOL: bool = true;

/// Number of guard elements on *each* side of a buffer's payload.
pub const GUARD_ELEMS: usize = 4;

/// Guard-plane poison for `F64` guards — distinct from [`GARBAGE_BITS`]
/// so a garbage fill overrunning its window could never repair a guard.
pub const POISON_F64: u64 = 0xFEED_FACE_FEED_FACE;
/// Guard-plane poison for `F32` guards.
pub const POISON_F32: u32 = 0xFEED_FACE;
/// Guard-plane poison for `I64` guards.
pub const POISON_I64: i64 = 0x7EE7_5EED_7EE7_5EED;
/// Guard-plane poison for `I32` guards.
pub const POISON_I32: i32 = 0x7EE7_5EED;
/// Guard-plane poison for `Bool` guards (`false`, the opposite of
/// [`GARBAGE_BOOL`]; an OOB store of `false` into a bool guard is the one
/// corruption this scheme cannot see).
pub const POISON_BOOL: bool = false;

#[derive(Clone)]
enum Data {
    F64(Vec<f64>),
    F32(Vec<f32>),
    I64(Vec<i64>),
    I32(Vec<i32>),
    Bool(Vec<bool>),
}

fn guarded_vec<T: Copy>(n: usize, fill: T, poison: T) -> Vec<T> {
    let mut v = vec![fill; n + 2 * GUARD_ELEMS];
    v[..GUARD_ELEMS].fill(poison);
    v[n + GUARD_ELEMS..].fill(poison);
    v
}

/// A typed, shaped, row-major array value. Scalars are rank-0 arrays with
/// a single element. The underlying buffer carries [`GUARD_ELEMS`]
/// poisoned guard elements on each side of the payload; every accessor
/// below addresses the payload window only.
#[derive(Clone)]
pub struct ArrayValue {
    dtype: DType,
    shape: Vec<i64>,
    data: Data,
}

impl ArrayValue {
    /// A zero-filled array.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is negative. Negative extents are always a
    /// shape bug in the caller; silently clamping them to empty arrays
    /// would let the bug surface far downstream as a confusing
    /// zero-length-data failure instead of at the allocation site.
    pub fn zeros(dtype: DType, shape: Vec<i64>) -> Self {
        assert!(
            shape.iter().all(|&d| d >= 0),
            "ArrayValue::zeros: negative dimension in shape {shape:?}"
        );
        let n = shape.iter().product::<i64>() as usize;
        let n = if shape.is_empty() { 1 } else { n };
        let data = match dtype {
            DType::F64 => Data::F64(guarded_vec(n, 0.0, f64::from_bits(POISON_F64))),
            DType::F32 => Data::F32(guarded_vec(n, 0.0, f32::from_bits(POISON_F32))),
            DType::I64 => Data::I64(guarded_vec(n, 0, POISON_I64)),
            DType::I32 => Data::I32(guarded_vec(n, 0, POISON_I32)),
            DType::Bool => Data::Bool(guarded_vec(n, false, POISON_BOOL)),
        };
        ArrayValue { dtype, shape, data }
    }

    /// An array filled with a deterministic "uninitialized memory" pattern.
    pub fn garbage(dtype: DType, shape: Vec<i64>) -> Self {
        let mut v = Self::zeros(dtype, shape);
        v.fill_garbage();
        v
    }

    /// Resets every payload element to zero in place (no reallocation)
    /// and re-poisons the guard planes.
    pub fn fill_zero(&mut self) {
        match &mut self.data {
            Data::F64(v) => v.fill(0.0),
            Data::F32(v) => v.fill(0.0),
            Data::I64(v) => v.fill(0),
            Data::I32(v) => v.fill(0),
            Data::Bool(v) => v.fill(false),
        }
        self.repoison_guards();
    }

    /// Resets every payload element to the per-dtype garbage sentinel
    /// ([`GARBAGE_BITS`], [`GARBAGE_BITS_F32`], [`GARBAGE_BITS_I64`],
    /// [`GARBAGE_BITS_I32`], [`GARBAGE_BOOL`]) in place and re-poisons
    /// the guard planes.
    pub fn fill_garbage(&mut self) {
        match &mut self.data {
            Data::F64(v) => v.fill(f64::from_bits(GARBAGE_BITS)),
            Data::F32(v) => v.fill(f32::from_bits(GARBAGE_BITS_F32)),
            Data::I64(v) => v.fill(GARBAGE_BITS_I64),
            Data::I32(v) => v.fill(GARBAGE_BITS_I32),
            Data::Bool(v) => v.fill(GARBAGE_BOOL),
        }
        self.repoison_guards();
    }

    /// Resets payload elements `lo..hi` (clamped to the payload) to zero.
    /// Selective trial resets restore only dirty granules through this.
    pub fn fill_zero_range(&mut self, lo: usize, hi: usize) {
        let (lo, hi) = (lo.min(self.len()), hi.min(self.len()));
        let (lo, hi) = (lo + GUARD_ELEMS, hi + GUARD_ELEMS);
        match &mut self.data {
            Data::F64(v) => v[lo..hi].fill(0.0),
            Data::F32(v) => v[lo..hi].fill(0.0),
            Data::I64(v) => v[lo..hi].fill(0),
            Data::I32(v) => v[lo..hi].fill(0),
            Data::Bool(v) => v[lo..hi].fill(false),
        }
    }

    /// Resets payload elements `lo..hi` (clamped) to the garbage sentinel.
    pub fn fill_garbage_range(&mut self, lo: usize, hi: usize) {
        let (lo, hi) = (lo.min(self.len()), hi.min(self.len()));
        let (lo, hi) = (lo + GUARD_ELEMS, hi + GUARD_ELEMS);
        match &mut self.data {
            Data::F64(v) => v[lo..hi].fill(f64::from_bits(GARBAGE_BITS)),
            Data::F32(v) => v[lo..hi].fill(f32::from_bits(GARBAGE_BITS_F32)),
            Data::I64(v) => v[lo..hi].fill(GARBAGE_BITS_I64),
            Data::I32(v) => v[lo..hi].fill(GARBAGE_BITS_I32),
            Data::Bool(v) => v[lo..hi].fill(GARBAGE_BOOL),
        }
    }

    /// Rewrites both guard planes with their poison pattern, erasing any
    /// recorded corruption (every trial-reset path calls this so a guard
    /// violation is attributed to exactly one trial).
    pub fn repoison_guards(&mut self) {
        let n = self.len();
        match &mut self.data {
            Data::F64(v) => {
                v[..GUARD_ELEMS].fill(f64::from_bits(POISON_F64));
                v[n + GUARD_ELEMS..].fill(f64::from_bits(POISON_F64));
            }
            Data::F32(v) => {
                v[..GUARD_ELEMS].fill(f32::from_bits(POISON_F32));
                v[n + GUARD_ELEMS..].fill(f32::from_bits(POISON_F32));
            }
            Data::I64(v) => {
                v[..GUARD_ELEMS].fill(POISON_I64);
                v[n + GUARD_ELEMS..].fill(POISON_I64);
            }
            Data::I32(v) => {
                v[..GUARD_ELEMS].fill(POISON_I32);
                v[n + GUARD_ELEMS..].fill(POISON_I32);
            }
            Data::Bool(v) => {
                v[..GUARD_ELEMS].fill(POISON_BOOL);
                v[n + GUARD_ELEMS..].fill(POISON_BOOL);
            }
        }
    }

    /// True when both guard planes still hold their poison pattern
    /// bit-for-bit (bit comparison, so NaN poison floats compare equal).
    pub fn guards_intact(&self) -> bool {
        let n = self.len();
        match &self.data {
            Data::F64(v) => {
                let p = POISON_F64;
                v[..GUARD_ELEMS]
                    .iter()
                    .chain(&v[n + GUARD_ELEMS..])
                    .all(|x| x.to_bits() == p)
            }
            Data::F32(v) => {
                let p = POISON_F32;
                v[..GUARD_ELEMS]
                    .iter()
                    .chain(&v[n + GUARD_ELEMS..])
                    .all(|x| x.to_bits() == p)
            }
            Data::I64(v) => v[..GUARD_ELEMS]
                .iter()
                .chain(&v[n + GUARD_ELEMS..])
                .all(|&x| x == POISON_I64),
            Data::I32(v) => v[..GUARD_ELEMS]
                .iter()
                .chain(&v[n + GUARD_ELEMS..])
                .all(|&x| x == POISON_I32),
            Data::Bool(v) => v[..GUARD_ELEMS]
                .iter()
                .chain(&v[n + GUARD_ELEMS..])
                .all(|&x| x == POISON_BOOL),
        }
    }

    /// Stores `value` at a *signed* payload-relative linear offset,
    /// allowed to land in either guard plane — the "slop" model of a
    /// native out-of-bounds store. Returns `false` (storing nothing)
    /// when the offset falls outside `payload ∪ guards`, the analogue of
    /// a far store hitting unmapped memory.
    pub fn poke_linear(&mut self, off: i64, value: Scalar) -> bool {
        let n = self.len() as i64;
        if off < -(GUARD_ELEMS as i64) || off >= n + GUARD_ELEMS as i64 {
            return false;
        }
        let raw = (off + GUARD_ELEMS as i64) as usize;
        match &mut self.data {
            Data::F64(v) => v[raw] = value.as_f64(),
            Data::F32(v) => v[raw] = value.as_f64() as f32,
            Data::I64(v) => v[raw] = value.as_i64(),
            Data::I32(v) => v[raw] = value.as_i64() as i32,
            Data::Bool(v) => v[raw] = value.as_bool(),
        }
        true
    }

    /// Makes `self` a payload-identical copy of `src`, reusing the
    /// existing element buffer when the dtypes match (the compiled
    /// engine's trial loop resets inputs in place with this instead of
    /// reallocating). `self`'s guard planes come out freshly poisoned
    /// regardless of either side's prior guard state.
    pub fn copy_from(&mut self, src: &ArrayValue) {
        self.dtype = src.dtype;
        self.shape.clone_from(&src.shape);
        match (&mut self.data, &src.data) {
            (Data::F64(d), Data::F64(s)) => d.clone_from(s),
            (Data::F32(d), Data::F32(s)) => d.clone_from(s),
            (Data::I64(d), Data::I64(s)) => d.clone_from(s),
            (Data::I32(d), Data::I32(s)) => d.clone_from(s),
            (Data::Bool(d), Data::Bool(s)) => d.clone_from(s),
            (d, s) => *d = s.clone(),
        }
        self.repoison_guards();
    }

    /// An array filled with one value.
    pub fn filled(dtype: DType, shape: Vec<i64>, value: Scalar) -> Self {
        let mut v = Self::zeros(dtype, shape);
        let value = value.cast(dtype);
        for i in 0..v.len() {
            v.set(i, value);
        }
        v
    }

    /// A rank-0 scalar value.
    pub fn scalar(value: Scalar) -> Self {
        let mut v = Self::zeros(value.dtype(), Vec::new());
        v.set(0, value);
        v
    }

    /// Builds an `f64` array from a slice (convenience for tests/examples).
    pub fn from_f64(shape: Vec<i64>, values: &[f64]) -> Self {
        assert_eq!(
            shape
                .iter()
                .product::<i64>()
                .max(if shape.is_empty() { 1 } else { 0 }),
            values.len() as i64,
            "value count must match shape"
        );
        let mut data = guarded_vec(values.len(), 0.0, f64::from_bits(POISON_F64));
        data[GUARD_ELEMS..GUARD_ELEMS + values.len()].copy_from_slice(values);
        ArrayValue {
            dtype: DType::F64,
            shape,
            data: Data::F64(data),
        }
    }

    /// Element type.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Concrete shape.
    pub fn shape(&self) -> &[i64] {
        &self.shape
    }

    /// Number of payload elements (guard planes excluded).
    pub fn len(&self) -> usize {
        let raw = match &self.data {
            Data::F64(v) => v.len(),
            Data::F32(v) => v.len(),
            Data::I64(v) => v.len(),
            Data::I32(v) => v.len(),
            Data::Bool(v) => v.len(),
        };
        raw - 2 * GUARD_ELEMS
    }

    /// True if the array has no elements (zero-sized dimension).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads the element at a linear offset.
    pub fn get(&self, idx: usize) -> Scalar {
        debug_assert!(idx < self.len());
        let idx = idx + GUARD_ELEMS;
        match &self.data {
            Data::F64(v) => Scalar::F64(v[idx]),
            Data::F32(v) => Scalar::F32(v[idx]),
            Data::I64(v) => Scalar::I64(v[idx]),
            Data::I32(v) => Scalar::I32(v[idx]),
            Data::Bool(v) => Scalar::Bool(v[idx]),
        }
    }

    /// Writes the element at a linear offset (casting to the array dtype).
    pub fn set(&mut self, idx: usize, value: Scalar) {
        assert!(idx < self.len(), "linear index outside payload");
        let idx = idx + GUARD_ELEMS;
        match &mut self.data {
            Data::F64(v) => v[idx] = value.as_f64(),
            Data::F32(v) => v[idx] = value.as_f64() as f32,
            Data::I64(v) => v[idx] = value.as_i64(),
            Data::I32(v) => v[idx] = value.as_i64() as i32,
            Data::Bool(v) => v[idx] = value.as_bool(),
        }
    }

    /// Borrows the raw payload when the dtype is `F64` — the compiled
    /// engine's monomorphic fast path reads through this instead of
    /// boxing every element into a [`Scalar`].
    pub fn as_f64_slice(&self) -> Option<&[f64]> {
        match &self.data {
            Data::F64(v) => Some(&v[GUARD_ELEMS..v.len() - GUARD_ELEMS]),
            _ => None,
        }
    }

    /// Mutably borrows the shape and raw payload together when the
    /// dtype is `F64` (split borrow: the fast path linearizes against the
    /// shape while writing through the buffer).
    pub fn as_f64_parts_mut(&mut self) -> Option<(&[i64], &mut [f64])> {
        match &mut self.data {
            Data::F64(v) => {
                let n = v.len() - GUARD_ELEMS;
                Some((&self.shape, &mut v[GUARD_ELEMS..n]))
            }
            _ => None,
        }
    }

    /// View as `f64` values (copying). Convenience for assertions.
    pub fn to_f64_vec(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.get(i).as_f64()).collect()
    }

    /// First differing linear index between two arrays under bit-exact
    /// comparison (`tol == 0`) or tolerance comparison. `None` means equal.
    /// Arrays of different dtype/shape differ at index 0 by convention.
    pub fn first_mismatch(&self, other: &ArrayValue, tol: f64) -> Option<usize> {
        if self.dtype != other.dtype || self.shape != other.shape {
            return Some(0);
        }
        (0..self.len()).find(|&i| {
            let (a, b) = (self.get(i), other.get(i));
            if tol == 0.0 {
                !a.bits_eq(b)
            } else {
                !a.approx_eq(b, tol)
            }
        })
    }

    /// Total payload size in bytes.
    pub fn byte_size(&self) -> usize {
        self.len() * self.dtype.size_bytes()
    }
}

/// Payload-only equality: two arrays are equal when dtype, shape and
/// payload elements match — guard planes never participate, so a guarded
/// executor result compares equal to a plainly constructed expectation
/// and a corrupted guard cannot masquerade as a semantic change.
impl PartialEq for ArrayValue {
    fn eq(&self, other: &Self) -> bool {
        if self.dtype != other.dtype || self.shape != other.shape {
            return false;
        }
        match (&self.data, &other.data) {
            (Data::F64(a), Data::F64(b)) => payload(a) == payload(b),
            (Data::F32(a), Data::F32(b)) => payload(a) == payload(b),
            (Data::I64(a), Data::I64(b)) => payload(a) == payload(b),
            (Data::I32(a), Data::I32(b)) => payload(a) == payload(b),
            (Data::Bool(a), Data::Bool(b)) => payload(a) == payload(b),
            _ => false,
        }
    }
}

fn payload<T>(v: &[T]) -> &[T] {
    &v[GUARD_ELEMS..v.len() - GUARD_ELEMS]
}

/// Payload-only `Debug`: report byte-identity assertions format states
/// with `{:?}`, so guard bytes must never leak into the rendering.
impl fmt::Debug for ArrayValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        struct P<'a>(&'a Data);
        impl fmt::Debug for P<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                match self.0 {
                    Data::F64(v) => f.debug_list().entries(payload(v)).finish(),
                    Data::F32(v) => f.debug_list().entries(payload(v)).finish(),
                    Data::I64(v) => f.debug_list().entries(payload(v)).finish(),
                    Data::I32(v) => f.debug_list().entries(payload(v)).finish(),
                    Data::Bool(v) => f.debug_list().entries(payload(v)).finish(),
                }
            }
        }
        f.debug_struct("ArrayValue")
            .field("dtype", &self.dtype)
            .field("shape", &self.shape)
            .field("data", &P(&self.data))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_len() {
        let a = ArrayValue::zeros(DType::F32, vec![2, 3]);
        assert_eq!(a.len(), 6);
        assert_eq!(a.get(5), Scalar::F32(0.0));
        assert_eq!(a.byte_size(), 24);
    }

    #[test]
    fn scalar_is_rank0() {
        let s = ArrayValue::scalar(Scalar::I64(42));
        assert_eq!(s.shape(), &[] as &[i64]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(0), Scalar::I64(42));
    }

    #[test]
    fn set_casts_to_dtype() {
        let mut a = ArrayValue::zeros(DType::I32, vec![2]);
        a.set(0, Scalar::F64(3.9));
        assert_eq!(a.get(0), Scalar::I32(3));
    }

    #[test]
    fn garbage_is_deterministic_and_nonzero() {
        let a = ArrayValue::garbage(DType::F64, vec![4]);
        let b = ArrayValue::garbage(DType::F64, vec![4]);
        assert_eq!(a, b);
        assert_ne!(a.get(0).as_f64(), 0.0);
    }

    #[test]
    fn garbage_sentinels_are_distinct_per_dtype() {
        // Bit patterns of the four non-bool sentinels, widened to u64:
        // all distinct, so a buffer of one dtype reinterpreted as another
        // can never look correctly initialized.
        let pats = [
            GARBAGE_BITS,
            GARBAGE_BITS_F32 as u64,
            GARBAGE_BITS_I64 as u64,
            GARBAGE_BITS_I32 as u64,
        ];
        for (i, a) in pats.iter().enumerate() {
            for b in &pats[i + 1..] {
                assert_ne!(a, b, "garbage sentinels must differ");
            }
        }
        assert_eq!(
            ArrayValue::garbage(DType::F32, vec![1]).get(0),
            Scalar::F32(f32::from_bits(GARBAGE_BITS_F32))
        );
        assert_eq!(
            ArrayValue::garbage(DType::I64, vec![1]).get(0),
            Scalar::I64(GARBAGE_BITS_I64)
        );
        assert_eq!(
            ArrayValue::garbage(DType::I32, vec![1]).get(0),
            Scalar::I32(GARBAGE_BITS_I32)
        );
        assert_eq!(
            ArrayValue::garbage(DType::Bool, vec![1]).get(0),
            Scalar::Bool(GARBAGE_BOOL)
        );
    }

    #[test]
    fn first_mismatch_exact_and_tolerant() {
        let a = ArrayValue::from_f64(vec![3], &[1.0, 2.0, 3.0]);
        let mut b = a.clone();
        assert_eq!(a.first_mismatch(&b, 0.0), None);
        b.set(1, Scalar::F64(2.0 + 1e-9));
        assert_eq!(a.first_mismatch(&b, 0.0), Some(1));
        assert_eq!(a.first_mismatch(&b, 1e-5), None);
    }

    #[test]
    fn shape_mismatch_is_mismatch() {
        let a = ArrayValue::zeros(DType::F64, vec![2]);
        let b = ArrayValue::zeros(DType::F64, vec![3]);
        assert_eq!(a.first_mismatch(&b, 0.0), Some(0));
    }

    #[test]
    fn zero_sized_dimension() {
        let a = ArrayValue::zeros(DType::F64, vec![0, 4]);
        assert!(a.is_empty());
    }

    #[test]
    fn guards_start_intact_and_survive_fills() {
        for dt in [DType::F64, DType::F32, DType::I64, DType::I32, DType::Bool] {
            let mut a = ArrayValue::zeros(dt, vec![5]);
            assert!(a.guards_intact(), "{dt:?} guards poisoned at birth");
            a.fill_garbage();
            assert!(a.guards_intact(), "{dt:?} guards survive fill_garbage");
            a.fill_zero();
            assert!(a.guards_intact(), "{dt:?} guards survive fill_zero");
            a.fill_zero_range(0, 5);
            a.fill_garbage_range(2, 5);
            assert!(a.guards_intact(), "{dt:?} guards survive range fills");
        }
    }

    #[test]
    fn poke_linear_corrupts_guard_and_repoison_heals() {
        let mut a = ArrayValue::zeros(DType::F64, vec![4]);
        // One past the end: lands in the trailing guard plane.
        assert!(a.poke_linear(4, Scalar::F64(1.5)));
        assert!(!a.guards_intact());
        // Before the start: leading guard plane.
        let mut b = ArrayValue::zeros(DType::F64, vec![4]);
        assert!(b.poke_linear(-1, Scalar::F64(1.5)));
        assert!(!b.guards_intact());
        // Far out: refused, nothing written.
        let mut c = ArrayValue::zeros(DType::F64, vec![4]);
        assert!(!c.poke_linear(4 + GUARD_ELEMS as i64, Scalar::F64(1.5)));
        assert!(c.guards_intact());
        a.repoison_guards();
        assert!(a.guards_intact());
    }

    #[test]
    fn equality_and_debug_ignore_guards() {
        let mut a = ArrayValue::from_f64(vec![2], &[1.0, 2.0]);
        let b = a.clone();
        let clean = format!("{b:?}");
        a.poke_linear(2, Scalar::F64(9.0));
        assert_eq!(a, b, "guard corruption must not affect equality");
        assert_eq!(format!("{a:?}"), clean, "guard bytes leak into Debug");
        assert!(!clean.contains("9"), "payload debug shows guard value");
    }

    #[test]
    fn copy_from_repoisons_guards() {
        let src = ArrayValue::from_f64(vec![3], &[1.0, 2.0, 3.0]);
        let mut dst = ArrayValue::zeros(DType::F64, vec![3]);
        dst.poke_linear(3, Scalar::F64(7.0));
        assert!(!dst.guards_intact());
        dst.copy_from(&src);
        assert_eq!(dst, src);
        assert!(dst.guards_intact(), "copy_from must re-poison guards");
    }
}
