//! Execution errors — the interpreter's crash/hang oracles.

use fuzzyflow_sym::SymError;
use std::fmt;

/// A runtime failure during program execution. In differential testing,
/// any `ExecError` raised by the transformed cutout but not the original
/// marks the transformation invalid (paper Sec. 5.1: "the transformed
/// program c' crashes or hangs while c does not").
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    /// Memory access outside a container's bounds (the "crash" oracle —
    /// natively this would be a segmentation fault or silent corruption).
    OutOfBounds {
        data: String,
        point: Vec<i64>,
        shape: Vec<i64>,
    },
    /// A poisoned guard plane was found corrupted after a run: an
    /// out-of-bounds write landed in the slop bytes around `data`'s
    /// payload instead of trapping (the compiled engine's opt-in slop
    /// mode, or an engine defect caught by the always-on post-trial
    /// verification). `point` is the faulting element when the engine
    /// recorded the wild store; empty when only the corruption itself
    /// was observed.
    GuardViolation {
        data: String,
        point: Vec<i64>,
        shape: Vec<i64>,
    },
    /// A referenced container has no allocation and no descriptor.
    UnknownData(String),
    /// Symbolic evaluation failed (unbound symbol, overflow, bad step).
    Sym(SymError),
    /// The step budget was exhausted (the "hang" oracle).
    StepLimitExceeded { limit: u64 },
    /// Integer division or remainder by zero.
    IntegerDivisionByZero,
    /// A memlet delivered the wrong number of elements for its connector.
    VolumeMismatch {
        context: String,
        expected: usize,
        actual: usize,
    },
    /// A tasklet referenced an undefined connector/local/symbol.
    UndefinedRef { tasklet: String, name: String },
    /// A library node's operands had unsupported shapes.
    ShapeError { node: String, detail: String },
    /// A communication collective was executed without a
    /// [`CommHandler`](crate::CommHandler) (single-node context, paper
    /// Sec. 6.2).
    NoCommHandler { node: String },
    /// Structural problem discovered during execution (malformed IR that
    /// validation would also reject).
    Malformed(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::OutOfBounds { data, point, shape } => write!(
                f,
                "out-of-bounds access on '{data}': index {point:?} outside shape {shape:?}"
            ),
            ExecError::GuardViolation { data, point, shape } => {
                if point.is_empty() {
                    write!(
                        f,
                        "guard-plane violation on '{data}': poisoned slop bytes corrupted \
                         (shape {shape:?})"
                    )
                } else {
                    write!(
                        f,
                        "guard-plane violation on '{data}': out-of-bounds write at {point:?} \
                         landed in the guard plane (shape {shape:?})"
                    )
                }
            }
            ExecError::UnknownData(d) => write!(f, "unknown data container '{d}'"),
            ExecError::Sym(e) => write!(f, "symbolic evaluation error: {e}"),
            ExecError::StepLimitExceeded { limit } => {
                write!(f, "step limit exceeded ({limit} steps) — treating as hang")
            }
            ExecError::IntegerDivisionByZero => write!(f, "integer division by zero"),
            ExecError::VolumeMismatch {
                context,
                expected,
                actual,
            } => write!(
                f,
                "{context}: memlet volume mismatch (expected {expected} elements, got {actual})"
            ),
            ExecError::UndefinedRef { tasklet, name } => {
                write!(f, "tasklet '{tasklet}': undefined reference '{name}'")
            }
            ExecError::ShapeError { node, detail } => {
                write!(f, "library node '{node}': {detail}")
            }
            ExecError::NoCommHandler { node } => write!(
                f,
                "communication node '{node}' executed without a communication context"
            ),
            ExecError::Malformed(m) => write!(f, "malformed program: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<SymError> for ExecError {
    fn from(e: SymError) -> Self {
        ExecError::Sym(e)
    }
}

impl ExecError {
    /// True for errors that correspond to a *crash* of the program under
    /// test (rather than harness misuse like a missing comm handler).
    pub fn is_crash(&self) -> bool {
        matches!(
            self,
            ExecError::OutOfBounds { .. }
                | ExecError::GuardViolation { .. }
                | ExecError::IntegerDivisionByZero
                | ExecError::Sym(SymError::Overflow)
                | ExecError::Sym(SymError::DivisionByZero)
        )
    }

    /// True for the hang oracle.
    pub fn is_hang(&self) -> bool {
        matches!(self, ExecError::StepLimitExceeded { .. })
    }

    /// Stable, machine-readable tag for the error class — the key fault
    /// triage buckets on. Unlike [`Display`](fmt::Display) output these
    /// never embed instance data, so two faults of the same class
    /// compare equal regardless of the faulting index or container.
    pub fn kind(&self) -> &'static str {
        match self {
            ExecError::OutOfBounds { .. } => "out-of-bounds",
            ExecError::GuardViolation { .. } => "guard-violation",
            ExecError::UnknownData(_) => "unknown-data",
            ExecError::Sym(_) => "symbolic-error",
            ExecError::StepLimitExceeded { .. } => "step-limit",
            ExecError::IntegerDivisionByZero => "integer-division-by-zero",
            ExecError::VolumeMismatch { .. } => "volume-mismatch",
            ExecError::UndefinedRef { .. } => "undefined-ref",
            ExecError::ShapeError { .. } => "shape-error",
            ExecError::NoCommHandler { .. } => "no-comm-handler",
            ExecError::Malformed(_) => "malformed",
        }
    }

    /// The data container the error faulted on, when the class has one.
    pub fn container(&self) -> Option<&str> {
        match self {
            ExecError::OutOfBounds { data, .. }
            | ExecError::GuardViolation { data, .. }
            | ExecError::UnknownData(data) => Some(data),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(ExecError::OutOfBounds {
            data: "A".into(),
            point: vec![5],
            shape: vec![4]
        }
        .is_crash());
        assert!(ExecError::StepLimitExceeded { limit: 10 }.is_hang());
        assert!(!ExecError::UnknownData("x".into()).is_crash());
        assert!(ExecError::IntegerDivisionByZero.is_crash());
    }

    #[test]
    fn display_messages() {
        let e = ExecError::OutOfBounds {
            data: "C".into(),
            point: vec![8, 0],
            shape: vec![8, 8],
        };
        assert!(e.to_string().contains("out-of-bounds"));
        assert!(e.to_string().contains("'C'"));
    }
}
