//! The BERT encoder multi-head-attention block of paper Sec. 6.1 /
//! Fig. 5, scaled to workstation size with the paper's *ratios* intact.
//!
//! Structure (per Fig. 5):
//!
//! 1. a **batched matrix-matrix multiplication** computes the attention
//!    scores `tmp[BH, SM, SM] = A[BH, SM, P] @ Bt[BH, P, SM]`,
//! 2. a **scaling loop nest** multiplies `tmp` by the scalar `scale` —
//!    this is the loop nest the DaCe vectorization transformation targets
//!    and the cutout of the case study,
//! 3. a softmax and a value contraction consume the scaled scores, so the
//!    scaled tensor is read downstream (it lands in the system state).
//!
//! The input-space ratio matches the paper: the scaling nest's input `tmp`
//! has `BH·SM²` elements while the matmul inputs have `2·BH·SM·P`; with
//! `SM = 8·P` the min input-flow cut reduces the input configuration by
//! exactly 75 % (Fig. 5).

use crate::helpers::{at, dim, scalar, In, Out};
use fuzzyflow_ir::{
    sym, DType, LibraryOp, Memlet, ScalarExpr, Schedule, Sdfg, SdfgBuilder, Subset,
};

/// Builds the MHA encoder block. Symbols: `BH` (batch × heads), `SM`
/// (sequence length), `P` (projection size).
pub fn mha_encoder() -> Sdfg {
    let mut b = SdfgBuilder::new("mha_encoder");
    b.symbol("BH");
    b.symbol("SM");
    b.symbol("P");
    b.array("A", DType::F64, &["BH", "SM", "P"]);
    b.array("Bt", DType::F64, &["BH", "P", "SM"]);
    b.array("Vv", DType::F64, &["BH", "SM", "P"]);
    b.scalar("scale", DType::F64);
    b.transient("tmp", DType::F64, &["BH", "SM", "SM"]);
    b.transient("scaled", DType::F64, &["BH", "SM", "SM"]);
    b.transient("attn", DType::F64, &["BH", "SM", "SM"]);
    b.array("out", DType::F64, &["BH", "SM", "P"]);

    let st = b.start();
    b.in_state(st, |df| {
        let a = df.access("A");
        let bt = df.access("Bt");
        let tmp = df.access("tmp");

        // 1. Batched matmul: tmp = A @ Bt.
        let mm = df.library("scores", LibraryOp::MatMul);
        df.read(
            a,
            mm,
            Memlet::new("A", Subset::full(&[sym("BH"), sym("SM"), sym("P")])).to_conn("A"),
        );
        df.read(
            bt,
            mm,
            Memlet::new("Bt", Subset::full(&[sym("BH"), sym("P"), sym("SM")])).to_conn("B"),
        );
        df.write(
            mm,
            tmp,
            Memlet::new("tmp", Subset::full(&[sym("BH"), sym("SM"), sym("SM")])).from_conn("C"),
        );

        // 2. The Fig. 5 scaling loop nest (vectorization target).
        let sc = df.access("scale");
        let scaled = df.access("scaled");
        crate::helpers::map_stage(
            df,
            "scale_tmp",
            &[
                dim("t", sym("BH")),
                dim("i", sym("SM")),
                dim("j", sym("SM")),
            ],
            Schedule::Parallel,
            &[
                In::new(tmp, "tmp", at(&["t", "i", "j"]), "x"),
                In::new(sc, "scale", scalar(), "f"),
            ],
            Out::new(scaled, "scaled", at(&["t", "i", "j"])),
            ScalarExpr::r("x").mul(ScalarExpr::r("f")),
        );

        // 3. Softmax over the last axis.
        let attn = df.access("attn");
        let sm = df.library("softmax", LibraryOp::Softmax);
        df.read(
            scaled,
            sm,
            Memlet::new("scaled", Subset::full(&[sym("BH"), sym("SM"), sym("SM")])).to_conn("in"),
        );
        df.write(
            sm,
            attn,
            Memlet::new("attn", Subset::full(&[sym("BH"), sym("SM"), sym("SM")])).from_conn("out"),
        );

        // 4. Value contraction: out = attn @ Vv.
        let v = df.access("Vv");
        let out = df.access("out");
        let mm2 = df.library("context", LibraryOp::MatMul);
        df.read(
            attn,
            mm2,
            Memlet::new("attn", Subset::full(&[sym("BH"), sym("SM"), sym("SM")])).to_conn("A"),
        );
        df.read(
            v,
            mm2,
            Memlet::new("Vv", Subset::full(&[sym("BH"), sym("SM"), sym("P")])).to_conn("B"),
        );
        df.write(
            mm2,
            out,
            Memlet::new("out", Subset::full(&[sym("BH"), sym("SM"), sym("P")])).from_conn("C"),
        );
    });
    b.build()
}

/// Workstation-sized defaults preserving the paper's `SM = 8·P` ratio
/// (BERT-large: SM=512, P=64 — here SM=32, P=4).
pub fn default_bindings() -> fuzzyflow_ir::Bindings {
    fuzzyflow_ir::Bindings::from_pairs([("BH", 2), ("SM", 32), ("P", 4)])
}

/// A stack of `layers` encoder blocks — the "whole application" context
/// for throughput comparisons (the paper runs all of BERT-large, 12.1 s;
/// a single block would understate the application/cutout size ratio).
/// Each layer runs the block and feeds its context output back as the
/// next layer's query tensor via an explicit copy.
pub fn mha_encoder_stack(layers: usize) -> Sdfg {
    assert!(layers >= 1);
    let single = mha_encoder();
    let mut b = SdfgBuilder::new("mha_encoder_stack");
    b.symbol("BH");
    b.symbol("SM");
    b.symbol("P");
    for (name, desc) in &single.arrays {
        b.array_desc(name, desc.clone());
    }
    let mut prev = b.start();
    for layer in 0..layers {
        let st = b.add_state_after(prev, &format!("layer{layer}"));
        // Clone the single block's dataflow into this state.
        let block = single.state(single.start).df.clone();
        b.sdfg_mut().state_mut(st).df = block;
        // Feed the output back into A for the next layer.
        if layer + 1 < layers {
            let fb = b.add_state_after(st, &format!("feedback{layer}"));
            b.in_state(fb, |df| {
                let out = df.access("out");
                let a = df.access("A");
                let cp = df.library("feedback", LibraryOp::Copy);
                let full = Subset::full(&[sym("BH"), sym("SM"), sym("P")]);
                df.read(out, cp, Memlet::new("out", full.clone()).to_conn("in"));
                df.write(cp, a, Memlet::new("A", full).from_conn("out"));
            });
            prev = fb;
        } else {
            prev = st;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzyflow_interp::{run, ArrayValue, ExecState};

    #[test]
    fn validates() {
        let p = mha_encoder();
        assert!(
            fuzzyflow_ir::validate(&p).is_ok(),
            "{:?}",
            fuzzyflow_ir::validate(&p)
        );
    }

    #[test]
    fn attention_rows_are_distributions() {
        let p = mha_encoder();
        let (bh, smn, pp) = (1i64, 4i64, 2i64);
        let mut st = ExecState::new();
        st.bind("BH", bh).bind("SM", smn).bind("P", pp);
        let fill =
            |n: usize, f: f64| -> Vec<f64> { (0..n).map(|i| (i as f64) * 0.1 * f).collect() };
        st.set_array("A", ArrayValue::from_f64(vec![bh, smn, pp], &fill(8, 1.0)));
        st.set_array(
            "Bt",
            ArrayValue::from_f64(vec![bh, pp, smn], &fill(8, -0.5)),
        );
        st.set_array("Vv", ArrayValue::from_f64(vec![bh, smn, pp], &fill(8, 2.0)));
        st.set_array("scale", ArrayValue::from_f64(vec![], &[0.5]));
        run(&p, &mut st).unwrap();
        // Each softmax row sums to 1.
        let attn = st.array("attn").unwrap().to_f64_vec();
        for row in attn.chunks(smn as usize) {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "row sums to {s}");
        }
        // Output exists with the right shape.
        assert_eq!(st.array("out").unwrap().shape(), &[bh, smn, pp]);
    }

    #[test]
    fn input_ratio_matches_fig5() {
        // tmp volume vs A+Bt volume: with SM = 8P the ratio is 4:1.
        let b = default_bindings();
        let tmp = b.get("BH").unwrap() * b.get("SM").unwrap() * b.get("SM").unwrap();
        let ab = 2 * b.get("BH").unwrap() * b.get("SM").unwrap() * b.get("P").unwrap();
        assert_eq!(tmp, 4 * ab / 2 * 2); // tmp == 4 * (A+Bt) volume
        assert!((1.0 - (ab as f64 / tmp as f64) - 0.75).abs() < 1e-12);
    }
}
