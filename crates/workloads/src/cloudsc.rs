//! A synthetic cloud-microphysics scheme shaped after ECMWF's CLOUDSC
//! (paper Sec. 6.4): a vertical-column physics kernel over `NLEV` levels
//! and `NPROMA` horizontal points, with
//!
//! * many parallel adjustment maps, most writing only *interior* level
//!   ranges (the GPU-kernel-extraction bug clobbers the untouched
//!   boundary rows with device garbage — Fig. 7; the paper found 48 of 62
//!   instances faulty, a ~77 % ratio this program reproduces),
//! * temporary-write/copy chains for the `WriteElimination` pass — all
//!   dead except one temporary that a later state re-reads (paper: 1 of
//!   136 instances faulty),
//! * constant-bound substep loops for `LoopUnrolling` — ascending loops
//!   plus one *negative-step* sedimentation loop, the paper's 1-of-19
//!   faulty instance.

use crate::helpers::{at, dim, dim_range, scalar, In, Out};
use fuzzyflow_ir::{
    sym, DType, Memlet, ScalarExpr, Schedule, Sdfg, SdfgBuilder, StateId, Subset, SymExpr, Tasklet,
    Wcr,
};

/// Builds the CLOUDSC-like scheme.
pub fn cloudsc_like() -> Sdfg {
    let mut b = SdfgBuilder::new("cloudsc_like");
    b.symbol("NLEV");
    b.symbol("NPROMA");
    // Prognostic fields.
    for f in ["T", "Q", "CLD", "RAIN", "SNOW", "QS"] {
        b.array(f, DType::F64, &["NLEV", "NPROMA"]);
    }
    b.array("PRECIP", DType::F64, &["NPROMA"]);
    b.array("FLUX", DType::F64, &["NPROMA"]);
    b.scalar("dt", DType::F64);
    // Temporaries for the write-elimination chains.
    for t in ["tmp_a", "tmp_b", "tmp_c", "tmp_d", "tmp_e", "tmp_live"] {
        b.transient_scalar(t, DType::F64);
    }
    b.transient("cond_rate", DType::F64, &["NLEV", "NPROMA"]);

    // --- Stage 1: saturation (full write — a correct GPU instance). ---
    let st_sat = b.start();
    b.in_state(st_sat, |df| {
        let t = df.access("T");
        let qs = df.access("QS");
        crate::helpers::map_stage(
            df,
            "saturation",
            &[dim("l", sym("NLEV")), dim("p", sym("NPROMA"))],
            Schedule::Parallel,
            &[In::new(t, "T", at(&["l", "p"]), "tv")],
            Out::new(qs, "QS", at(&["l", "p"])),
            // Clausius-Clapeyron-flavored saturation curve.
            ScalarExpr::f64(0.62).mul(ScalarExpr::r("tv").mul(ScalarExpr::f64(0.01)).exp()),
        );
    });

    // --- Stage 2: interior-level adjustment maps (partial writes —
    // faulty GPU instances). One state per field family. ---
    let interior = || dim_range("l", SymExpr::Int(1), sym("NLEV") - SymExpr::Int(1));
    let mut prev = st_sat;
    let adjust = |b: &mut SdfgBuilder,
                  prev: StateId,
                  label: &str,
                  src: &str,
                  aux: &str,
                  dst: &str,
                  coeff: f64|
     -> StateId {
        let st = b.add_state_after(prev, label);
        b.in_state(st, |df| {
            let s = df.access(src);
            let a = df.access(aux);
            let d = df.access(dst);
            crate::helpers::map_stage(
                df,
                label,
                &[interior(), dim("p", sym("NPROMA"))],
                Schedule::Parallel,
                &[
                    In::new(s, src, at(&["l", "p"]), "x"),
                    In::new(a, aux, at(&["l", "p"]), "y"),
                ],
                Out::new(d, dst, at(&["l", "p"])),
                ScalarExpr::r("x").add(ScalarExpr::r("y").mul(ScalarExpr::f64(coeff))),
            );
        });
        st
    };
    // Ten interior (partial-write) adjustments over various field pairs.
    // Nine of these write a container they do not read (the GPU bug
    // clobbers the untouched boundary rows); `latent_heat` reads and
    // writes `T`, so the copy-in covers the whole container and the
    // extraction is correct there — matching the paper's mix of faulty
    // and passing instances (48 of 62).
    let partial_stages: [(&str, &str, &str, &str, f64); 10] = [
        ("cond_adjust", "Q", "QS", "CLD", 0.5),
        ("evap_adjust", "CLD", "QS", "Q", -0.25),
        ("rain_autoconv", "CLD", "Q", "RAIN", 0.1),
        ("snow_autoconv", "CLD", "T", "SNOW", 0.05),
        ("rain_accretion", "RAIN", "CLD", "QS", 0.2),
        ("snow_riming", "SNOW", "CLD", "RAIN", 0.15),
        ("melt_adjust", "SNOW", "T", "RAIN", 0.12),
        ("freeze_adjust", "RAIN", "T", "SNOW", 0.08),
        ("subl_adjust", "SNOW", "QS", "Q", -0.02),
        ("latent_heat", "T", "CLD", "T", 0.3),
    ];
    for (label, src, aux, dst, coeff) in partial_stages
        .iter()
        .map(|&(l, s, a, d, c)| (l, s, a, d, c))
    {
        prev = adjust(&mut b, prev, label, src, aux, dst, coeff);
    }

    // --- Stage 3: two more full-write maps (correct GPU instances). ---
    let st_rate = b.add_state_after(prev, "condensation_rate");
    b.in_state(st_rate, |df| {
        let q = df.access("Q");
        let qs = df.access("QS");
        let cr = df.access("cond_rate");
        crate::helpers::map_stage(
            df,
            "condensation_rate",
            &[dim("l", sym("NLEV")), dim("p", sym("NPROMA"))],
            Schedule::Parallel,
            &[
                In::new(q, "Q", at(&["l", "p"]), "q"),
                In::new(qs, "QS", at(&["l", "p"]), "qs"),
            ],
            Out::new(cr, "cond_rate", at(&["l", "p"])),
            ScalarExpr::r("q")
                .sub(ScalarExpr::r("qs"))
                .max(ScalarExpr::f64(0.0)),
        );
    });
    let st_precip = b.add_state_after(st_rate, "column_precip");
    b.in_state(st_precip, |df| {
        let rain = df.access("RAIN");
        let snow = df.access("SNOW");
        let pr = df.access("PRECIP");
        crate::helpers::map_stage(
            df,
            "column_precip",
            &[dim("p", sym("NPROMA")), dim("l", sym("NLEV"))],
            Schedule::Parallel,
            &[
                In::new(rain, "RAIN", at(&["l", "p"]), "r"),
                In::new(snow, "SNOW", at(&["l", "p"]), "s"),
            ],
            Out::new(pr, "PRECIP", at(&["p"])).accumulate(Wcr::Sum),
            ScalarExpr::r("r").add(ScalarExpr::r("s")),
        );
    });

    // --- Stage 4: temporary-write chains (WriteElimination sites). ---
    // Five dead temporaries and one (tmp_live) read again later.
    let st_tmp = b.add_state_after(st_precip, "diagnostics");
    b.in_state(st_tmp, |df| {
        let dt = df.access("dt");
        for (tmp, factor) in [
            ("tmp_a", 1.5),
            ("tmp_b", 2.5),
            ("tmp_c", 3.5),
            ("tmp_d", 4.5),
            ("tmp_e", 5.5),
            ("tmp_live", 6.5),
        ] {
            let tacc = df.access(tmp);
            let f = df.access("FLUX");
            let producer = df.tasklet(Tasklet::simple(
                format!("diag_{tmp}"),
                vec!["d"],
                "r",
                ScalarExpr::r("d").mul(ScalarExpr::f64(factor)),
            ));
            df.read(dt, producer, Memlet::new("dt", scalar()).to_conn("d"));
            df.write(producer, tacc, Memlet::new(tmp, scalar()).from_conn("r"));
            // Copy tasklet into FLUX[k] for distinct k per chain.
            let k = match tmp {
                "tmp_a" => 0,
                "tmp_b" => 1,
                "tmp_c" => 2,
                "tmp_d" => 3,
                "tmp_e" => 4,
                _ => 5,
            };
            let copy = df.tasklet(Tasklet::simple(
                format!("store_{tmp}"),
                vec!["v"],
                "o",
                ScalarExpr::r("v"),
            ));
            df.read(tacc, copy, Memlet::new(tmp, scalar()).to_conn("v"));
            df.write(
                copy,
                f,
                Memlet::new("FLUX", Subset::at(vec![SymExpr::Int(k)])).from_conn("o"),
            );
        }
    });
    // tmp_live is re-read here — eliminating its write is the 1-in-136 bug.
    let st_live = b.add_state_after(st_tmp, "flux_correction");
    b.in_state(st_live, |df| {
        let live = df.access("tmp_live");
        let f = df.access("FLUX");
        let t = df.tasklet(Tasklet::simple(
            "flux_corr",
            vec!["v"],
            "o",
            ScalarExpr::r("v").mul(ScalarExpr::f64(0.5)),
        ));
        df.read(live, t, Memlet::new("tmp_live", scalar()).to_conn("v"));
        df.write(
            t,
            f,
            Memlet::new("FLUX", Subset::at(vec![SymExpr::Int(6)])).from_conn("o"),
        );
    });

    // --- Stage 4b: more diagnostics chains writing PRECIP slots
    // (additional WriteElimination sites, all dead temporaries). ---
    let st_tmp2 = b.add_state_after(st_live, "diagnostics2");
    for t in ["tmp_f", "tmp_g", "tmp_h"] {
        b.transient_scalar(t, DType::F64);
    }
    b.in_state(st_tmp2, |df| {
        let dt = df.access("dt");
        for (k, (tmp, factor)) in [("tmp_f", 0.5), ("tmp_g", 0.7), ("tmp_h", 0.9)]
            .iter()
            .enumerate()
        {
            let tacc = df.access(tmp);
            let p = df.access("PRECIP");
            let producer = df.tasklet(Tasklet::simple(
                format!("diag_{tmp}"),
                vec!["d"],
                "r",
                ScalarExpr::r("d").mul(ScalarExpr::f64(*factor)),
            ));
            df.read(dt, producer, Memlet::new("dt", scalar()).to_conn("d"));
            df.write(producer, tacc, Memlet::new(*tmp, scalar()).from_conn("r"));
            let copy = df.tasklet(Tasklet::simple(
                format!("store_{tmp}"),
                vec!["v"],
                "o",
                ScalarExpr::r("v"),
            ));
            df.read(tacc, copy, Memlet::new(*tmp, scalar()).to_conn("v"));
            df.write(
                copy,
                p,
                Memlet::new("PRECIP", Subset::at(vec![SymExpr::Int(k as i64 + 1)])).from_conn("o"),
            );
        }
    });

    // --- Stage 5: substep loops (LoopUnrolling sites). ---
    // Six ascending constant loops...
    let mut prev = st_tmp2;
    for (idx, trips) in [(0i64, 2i64), (1, 3), (2, 4), (3, 2), (4, 5), (5, 3)] {
        let lh = b.for_loop(
            prev,
            &format!("s{idx}"),
            SymExpr::Int(0),
            SymExpr::Int(trips - 1),
            1,
            &format!("substep{idx}"),
        );
        let var = format!("s{idx}");
        b.in_state(lh.body, |df| {
            let f_in = df.access("PRECIP");
            let f_out = df.access("PRECIP");
            let t = df.tasklet(Tasklet::simple(
                format!("substep_upd{idx}"),
                vec!["v"],
                "o",
                ScalarExpr::r("v").add(
                    ScalarExpr::r(&var)
                        .add(ScalarExpr::i64(1))
                        .mul(ScalarExpr::f64(0.001)),
                ),
            ));
            df.read(
                f_in,
                t,
                Memlet::new("PRECIP", Subset::at(vec![SymExpr::Int(0)])).to_conn("v"),
            );
            df.write(
                t,
                f_out,
                Memlet::new("PRECIP", Subset::at(vec![SymExpr::Int(0)])).from_conn("o"),
            );
        });
        prev = lh.exit;
    }
    // ...and the paper's negative-step sedimentation loop: i = 4 down to 1.
    let lh = b.for_loop(
        prev,
        "sed",
        SymExpr::Int(4),
        SymExpr::Int(1),
        -1,
        "sediment",
    );
    b.in_state(lh.body, |df| {
        let f_in = df.access("FLUX");
        let f_out = df.access("FLUX");
        let t = df.tasklet(Tasklet::simple(
            "sediment_step",
            vec!["v"],
            "o",
            ScalarExpr::r("v").add(ScalarExpr::r("sed")),
        ));
        df.read(
            f_in,
            t,
            Memlet::new("FLUX", Subset::at(vec![SymExpr::Int(7)])).to_conn("v"),
        );
        df.write(
            t,
            f_out,
            Memlet::new("FLUX", Subset::at(vec![SymExpr::Int(7)])).from_conn("o"),
        );
    });

    b.build()
}

/// Default column sizes (NLEV vertical levels × NPROMA points).
pub fn default_bindings() -> fuzzyflow_ir::Bindings {
    fuzzyflow_ir::Bindings::from_pairs([("NLEV", 10), ("NPROMA", 8)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzyflow_interp::{run, ArrayValue, ExecState};

    fn seeded_state() -> ExecState {
        let b = default_bindings();
        let (nlev, nproma) = (b.get("NLEV").unwrap(), b.get("NPROMA").unwrap());
        let mut st = ExecState::new();
        st.bind("NLEV", nlev).bind("NPROMA", nproma);
        let n = (nlev * nproma) as usize;
        for (f, base) in [
            ("T", 270.0),
            ("Q", 0.5),
            ("CLD", 0.1),
            ("RAIN", 0.0),
            ("SNOW", 0.0),
            ("QS", 0.0),
        ] {
            let vals: Vec<f64> = (0..n).map(|i| base + (i as f64) * 0.01).collect();
            st.set_array(f, ArrayValue::from_f64(vec![nlev, nproma], &vals));
        }
        st.set_array("dt", ArrayValue::from_f64(vec![], &[0.25]));
        st
    }

    #[test]
    fn validates() {
        let p = cloudsc_like();
        assert!(
            fuzzyflow_ir::validate(&p).is_ok(),
            "{:?}",
            fuzzyflow_ir::validate(&p)
        );
    }

    #[test]
    fn runs_end_to_end() {
        let p = cloudsc_like();
        let mut st = seeded_state();
        run(&p, &mut st).unwrap();
        // FLUX[5] = dt*6.5; FLUX[6] = tmp_live*0.5 = dt*6.5*0.5.
        let flux = st.array("FLUX").unwrap().to_f64_vec();
        assert!((flux[5] - 0.25 * 6.5).abs() < 1e-12);
        assert!((flux[6] - 0.25 * 6.5 * 0.5).abs() < 1e-12);
        // The sedimentation loop ran 4 times: FLUX[7] = 4+3+2+1 = 10.
        assert!((flux[7] - 10.0).abs() < 1e-12);
        // Substep loops: PRECIP[0] gained (1+2)*1e-3 + (1+2+3)*1e-3 + (1+..+4)*1e-3.
        let precip = st.array("PRECIP").unwrap().to_f64_vec();
        assert!(precip[0].is_finite());
    }

    #[test]
    fn boundary_levels_untouched_by_interior_maps() {
        let p = cloudsc_like();
        let mut st = seeded_state();
        let cld_before = st.array("CLD").unwrap().to_f64_vec();
        run(&p, &mut st).unwrap();
        let cld_after = st.array("CLD").unwrap().to_f64_vec();
        let nproma = 8usize;
        // Level 0 and NLEV-1 rows of CLD are never written.
        assert_eq!(cld_before[..nproma], cld_after[..nproma]);
        let last = cld_before.len() - nproma;
        assert_eq!(cld_before[last..], cld_after[last..]);
        // Interior rows did change.
        assert_ne!(
            cld_before[nproma..2 * nproma],
            cld_after[nproma..2 * nproma]
        );
    }
}
