//! Builder combinators shared by the workloads.

use fuzzyflow_graph::NodeId;
use fuzzyflow_ir::{DataflowBuilder, Memlet, ScalarExpr, Schedule, Subset, SymRange, Tasklet, Wcr};

/// One map-stage input: an outer access node, the container name, the
/// per-iteration element subset (may reference map parameters), and the
/// tasklet connector it feeds.
pub struct In<'a> {
    pub acc: NodeId,
    pub data: &'a str,
    pub subset: Subset,
    pub conn: &'a str,
}

impl<'a> In<'a> {
    pub fn new(acc: NodeId, data: &'a str, subset: Subset, conn: &'a str) -> Self {
        In {
            acc,
            data,
            subset,
            conn,
        }
    }
}

/// One map-stage output.
pub struct Out<'a> {
    pub acc: NodeId,
    pub data: &'a str,
    pub subset: Subset,
    pub wcr: Option<Wcr>,
}

impl<'a> Out<'a> {
    pub fn new(acc: NodeId, data: &'a str, subset: Subset) -> Self {
        Out {
            acc,
            data,
            subset,
            wcr: None,
        }
    }

    pub fn accumulate(mut self, wcr: Wcr) -> Self {
        self.wcr = Some(wcr);
        self
    }
}

/// Builds a map scope computing `out = expr(ins...)` over the given
/// iteration space and wires it to the provided outer access nodes. The
/// expression refers to inputs by their connector names. Returns the map
/// node.
pub fn map_stage(
    df: &mut DataflowBuilder,
    name: &str,
    params: &[(&str, SymRange)],
    schedule: Schedule,
    ins: &[In],
    out: Out,
    expr: ScalarExpr,
) -> NodeId {
    let param_names: Vec<&str> = params.iter().map(|(p, _)| *p).collect();
    let ranges: Vec<SymRange> = params.iter().map(|(_, r)| r.clone()).collect();
    let map = df.map(&param_names, ranges, schedule, |body| {
        let conns: Vec<&str> = ins.iter().map(|i| i.conn).collect();
        let t = body.tasklet(Tasklet::simple(name, conns, "o", expr.clone()));
        for i in ins {
            let a = body.access(i.data);
            body.read(a, t, Memlet::new(i.data, i.subset.clone()).to_conn(i.conn));
        }
        let oacc = body.access(out.data);
        let mut m = Memlet::new(out.data, out.subset.clone()).from_conn("o");
        if let Some(w) = out.wcr {
            m = m.with_wcr(w);
        }
        body.write(t, oacc, m);
    });
    let in_accs: Vec<NodeId> = {
        // Deduplicate outer access nodes while preserving order.
        let mut seen = Vec::new();
        for i in ins {
            if !seen.contains(&i.acc) {
                seen.push(i.acc);
            }
        }
        seen
    };
    df.auto_wire(map, &in_accs, &[out.acc]);
    map
}

/// Shorthand for a 1-D iteration space `[0, size)`.
pub fn dim(p: &str, size: fuzzyflow_ir::SymExpr) -> (&str, SymRange) {
    (p, SymRange::full(size))
}

/// Shorthand for an explicit range `[lo, hi)`.
pub fn dim_range(
    p: &str,
    lo: fuzzyflow_ir::SymExpr,
    hi: fuzzyflow_ir::SymExpr,
) -> (&str, SymRange) {
    (p, SymRange::span(lo, hi))
}

/// `Subset::at` over parsed index expressions — `at(&["i", "j+1"])`.
pub fn at(indices: &[&str]) -> Subset {
    Subset::at(indices.iter().map(|s| fuzzyflow_ir::sym(s)).collect())
}

/// Scalar (rank-0) subset.
pub fn scalar() -> Subset {
    Subset::new(vec![])
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzyflow_interp::{run, ArrayValue, ExecState};
    use fuzzyflow_ir::{sym, DType, SdfgBuilder};

    #[test]
    fn map_stage_builds_working_kernels() {
        // C[i] = A[i] + B[i]
        let mut b = SdfgBuilder::new("vadd");
        b.symbol("N");
        b.array("A", DType::F64, &["N"]);
        b.array("B", DType::F64, &["N"]);
        b.array("C", DType::F64, &["N"]);
        let st = b.start();
        b.in_state(st, |df| {
            let a = df.access("A");
            let bb = df.access("B");
            let c = df.access("C");
            map_stage(
                df,
                "add",
                &[dim("i", sym("N"))],
                Schedule::Parallel,
                &[
                    In::new(a, "A", at(&["i"]), "x"),
                    In::new(bb, "B", at(&["i"]), "y"),
                ],
                Out::new(c, "C", at(&["i"])),
                ScalarExpr::r("x").add(ScalarExpr::r("y")),
            );
        });
        let p = b.build();
        assert!(
            fuzzyflow_ir::validate(&p).is_ok(),
            "{:?}",
            fuzzyflow_ir::validate(&p)
        );
        let mut stx = ExecState::new();
        stx.bind("N", 3);
        stx.set_array("A", ArrayValue::from_f64(vec![3], &[1.0, 2.0, 3.0]));
        stx.set_array("B", ArrayValue::from_f64(vec![3], &[10.0, 20.0, 30.0]));
        run(&p, &mut stx).unwrap();
        assert_eq!(stx.array("C").unwrap().to_f64_vec(), vec![11.0, 22.0, 33.0]);
    }

    #[test]
    fn map_stage_wcr_reduction() {
        // s[0] += A[i]*A[i]
        let mut b = SdfgBuilder::new("dot");
        b.symbol("N");
        b.array("A", DType::F64, &["N"]);
        b.array("s", DType::F64, &["1"]);
        let st = b.start();
        b.in_state(st, |df| {
            let a = df.access("A");
            let s = df.access("s");
            map_stage(
                df,
                "sq",
                &[dim("i", sym("N"))],
                Schedule::Parallel,
                &[In::new(a, "A", at(&["i"]), "x")],
                Out::new(s, "s", at(&["0"])).accumulate(Wcr::Sum),
                ScalarExpr::r("x").mul(ScalarExpr::r("x")),
            );
        });
        let p = b.build();
        let mut stx = ExecState::new();
        stx.bind("N", 4);
        stx.set_array("A", ArrayValue::from_f64(vec![4], &[1.0, 2.0, 3.0, 4.0]));
        run(&p, &mut stx).unwrap();
        assert_eq!(stx.array("s").unwrap().get(0).as_f64(), 30.0);
    }
}
