//! Distributed Vanilla Attention with an SDDMM kernel (paper Sec. 6.2 /
//! Fig. 6).
//!
//! SPMD layout over `nranks` ranks: each rank owns a row block
//! `H[NLOC, F]` of the node-feature matrix. Forward propagation:
//!
//! 1. `AllGather` assembles the full feature matrix
//!    `Hfull[NLOC*nranks, F]` (communication),
//! 2. **SDDMM**: `S[i, j] = M[i, j] · Σ_k H[i, k] · Hfull[j, k]` — the
//!    sampled dense-dense matrix multiplication every optimization effort
//!    targets (poor data locality),
//! 3. a row-sum normalization writes the rank-local output.
//!
//! The SDDMM map touches no communication node, so a FuzzyFlow cutout of
//! it is testable on a single rank: the gathered features become a plain
//! input container ("any data received through collectives is subsequently
//! exposed as regular data parameters", Sec. 6.2).

use crate::helpers::{at, dim, In, Out};
use fuzzyflow_ir::{
    sym, CommOp, DType, LibraryOp, Memlet, ScalarExpr, Schedule, Sdfg, SdfgBuilder, Subset, Wcr,
};

/// Builds the per-rank vanilla-attention program. Symbols: `NLOC` (local
/// rows), `NTOT` (total rows = NLOC·nranks), `F` (features), plus the
/// runtime-bound `rank`/`nranks`.
pub fn vanilla_attention() -> Sdfg {
    let mut b = SdfgBuilder::new("vanilla_attention");
    b.symbol("NLOC");
    b.symbol("NTOT");
    b.symbol("F");
    b.symbol("nranks");
    b.symbol("rank");
    b.array("H", DType::F64, &["NLOC", "F"]);
    b.array("M", DType::F64, &["NLOC", "NTOT"]); // adjacency mask (dense-stored)
    b.transient("Hfull", DType::F64, &["NTOT", "F"]);
    b.transient("S", DType::F64, &["NLOC", "NTOT"]);
    b.array("out", DType::F64, &["NLOC"]);

    let st = b.start();
    b.in_state(st, |df| {
        // 1. Gather all feature blocks.
        let h = df.access("H");
        let hfull = df.access("Hfull");
        let ag = df.library("gather_features", LibraryOp::Comm(CommOp::AllGather));
        df.read(
            h,
            ag,
            Memlet::new("H", Subset::full(&[sym("NLOC"), sym("F")])).to_conn("in"),
        );
        df.write(
            ag,
            hfull,
            Memlet::new("Hfull", Subset::full(&[sym("NTOT"), sym("F")])).from_conn("out"),
        );

        // 2. SDDMM (the optimization target — no communication inside).
        let m = df.access("M");
        let s = df.access("S");
        crate::helpers::map_stage(
            df,
            "sddmm",
            &[
                dim("i", sym("NLOC")),
                dim("j", sym("NTOT")),
                dim("k", sym("F")),
            ],
            Schedule::Parallel,
            &[
                In::new(m, "M", at(&["i", "j"]), "mask"),
                In::new(h, "H", at(&["i", "k"]), "hi"),
                In::new(hfull, "Hfull", at(&["j", "k"]), "hj"),
            ],
            Out::new(s, "S", at(&["i", "j"])).accumulate(Wcr::Sum),
            ScalarExpr::r("mask").mul(ScalarExpr::r("hi").mul(ScalarExpr::r("hj"))),
        );

        // 3. Row-sum normalization into the local output.
        let out = df.access("out");
        crate::helpers::map_stage(
            df,
            "rowsum",
            &[dim("i", sym("NLOC")), dim("j", sym("NTOT"))],
            Schedule::Parallel,
            &[In::new(s, "S", at(&["i", "j"]), "v")],
            Out::new(out, "out", at(&["i"])).accumulate(Wcr::Sum),
            ScalarExpr::r("v"),
        );
    });
    b.build()
}

/// Defaults: 4 ranks × 8 local rows, 6 features.
pub fn default_bindings() -> fuzzyflow_ir::Bindings {
    fuzzyflow_ir::Bindings::from_pairs([("NLOC", 8), ("NTOT", 32), ("F", 6), ("nranks", 4)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzyflow_dist::{has_communication, run_distributed};
    use fuzzyflow_interp::{ArrayValue, ExecOptions, ExecState};

    #[test]
    fn validates_and_contains_comm() {
        let p = vanilla_attention();
        assert!(
            fuzzyflow_ir::validate(&p).is_ok(),
            "{:?}",
            fuzzyflow_ir::validate(&p)
        );
        assert!(has_communication(&p));
    }

    #[test]
    fn distributed_run_matches_manual_computation() {
        let p = vanilla_attention();
        let (nloc, nranks, f) = (2i64, 2i64, 2i64);
        let ntot = nloc * nranks;
        // Rank r has H rows filled with (r+1); mask all ones.
        let mk = |r: i64| {
            let mut st = ExecState::new();
            st.bind("NLOC", nloc).bind("NTOT", ntot).bind("F", f);
            st.set_array(
                "H",
                ArrayValue::from_f64(vec![nloc, f], &vec![(r + 1) as f64; (nloc * f) as usize]),
            );
            st.set_array(
                "M",
                ArrayValue::from_f64(vec![nloc, ntot], &vec![1.0; (nloc * ntot) as usize]),
            );
            st
        };
        let out = run_distributed(&p, vec![mk(0), mk(1)], &ExecOptions::default()).unwrap();
        // S[i,j] on rank r = sum_k H_r[i,k]*Hfull[j,k] = F * (r+1)*(owner(j)+1)
        // out[i] on rank r = sum_j S = F*(r+1) * sum_j (owner(j)+1)
        //                  = 2*(r+1) * (2*1 + 2*2) = 12*(r+1).
        assert_eq!(out[0].array("out").unwrap().to_f64_vec(), vec![12.0, 12.0]);
        assert_eq!(out[1].array("out").unwrap().to_f64_vec(), vec![24.0, 24.0]);
    }
}
