//! Compound kernels with temporaries, staged pipelines, nested maps and
//! symbol plumbing — the program shapes that exercise the fusion and
//! state-machine simplification passes of Table 2 (the pure array kernels
//! rarely contain them, just as most NPBench programs only exercise a
//! subset of DaCe's transformations).

use super::NamedWorkload;
use crate::helpers::{at, dim, scalar, In, Out};
use fuzzyflow_ir::{
    sym, Bindings, DType, InterstateEdge, LibraryOp, Memlet, ScalarExpr, Schedule, SdfgBuilder,
    Subset, SymExpr, SymRange, Tasklet, Wcr,
};

/// Scalar temporaries between tasklets: one dead (fusable) and one that a
/// later state re-reads (fusing it is the Table-2 TaskletFusion bug).
pub fn scalar_chain() -> NamedWorkload {
    let mut b = SdfgBuilder::new("scalar_chain");
    b.scalar("x", DType::F64);
    b.scalar("y", DType::F64);
    b.transient_scalar("t_dead", DType::F64);
    b.transient_scalar("t_live", DType::F64);
    b.scalar("out1", DType::F64);
    b.scalar("out2", DType::F64);
    b.scalar("out3", DType::F64);
    let st = b.start();
    b.in_state(st, |df| {
        // t_dead = x*2 ; out1 = t_dead + y   (safe to fuse)
        let x = df.access("x");
        let y = df.access("y");
        let td = df.access("t_dead");
        let o1 = df.access("out1");
        let p1 = df.tasklet(Tasklet::simple(
            "dbl",
            vec!["a"],
            "r",
            ScalarExpr::r("a").mul(ScalarExpr::f64(2.0)),
        ));
        df.read(x, p1, Memlet::new("x", scalar()).to_conn("a"));
        df.write(p1, td, Memlet::new("t_dead", scalar()).from_conn("r"));
        let c1 = df.tasklet(Tasklet::simple(
            "addy",
            vec!["b", "c"],
            "r",
            ScalarExpr::r("b").add(ScalarExpr::r("c")),
        ));
        df.read(td, c1, Memlet::new("t_dead", scalar()).to_conn("b"));
        df.read(y, c1, Memlet::new("y", scalar()).to_conn("c"));
        df.write(c1, o1, Memlet::new("out1", scalar()).from_conn("r"));
        // t_live = x+y ; out2 = t_live * 3   (t_live re-read later!)
        let tl = df.access("t_live");
        let o2 = df.access("out2");
        let p2 = df.tasklet(Tasklet::simple(
            "addxy",
            vec!["a", "b"],
            "r",
            ScalarExpr::r("a").add(ScalarExpr::r("b")),
        ));
        df.read(x, p2, Memlet::new("x", scalar()).to_conn("a"));
        df.read(y, p2, Memlet::new("y", scalar()).to_conn("b"));
        df.write(p2, tl, Memlet::new("t_live", scalar()).from_conn("r"));
        let c2 = df.tasklet(Tasklet::simple(
            "tri",
            vec!["v"],
            "r",
            ScalarExpr::r("v").mul(ScalarExpr::f64(3.0)),
        ));
        df.read(tl, c2, Memlet::new("t_live", scalar()).to_conn("v"));
        df.write(c2, o2, Memlet::new("out2", scalar()).from_conn("r"));
    });
    let st2 = b.add_state_after(st, "reuse");
    b.in_state(st2, |df| {
        let tl = df.access("t_live");
        let o3 = df.access("out3");
        let t = df.tasklet(Tasklet::simple(
            "sq",
            vec!["v"],
            "r",
            ScalarExpr::r("v").mul(ScalarExpr::r("v")),
        ));
        df.read(tl, t, Memlet::new("t_live", scalar()).to_conn("v"));
        df.write(t, o3, Memlet::new("out3", scalar()).from_conn("r"));
    });
    NamedWorkload::new("scalar_chain", b.build(), Bindings::new())
}

/// Two identical-range maps communicating through a transient
/// (MapFusion / BufferTiling site), followed by a consumer.
pub fn staged_pipeline() -> NamedWorkload {
    let mut b = SdfgBuilder::new("staged_pipeline");
    b.symbol("N");
    b.array("A", DType::F64, &["N"]);
    b.transient("stage", DType::F64, &["N"]);
    b.array("B", DType::F64, &["N"]);
    let st = b.start();
    b.in_state(st, |df| {
        let a = df.access("A");
        let s = df.access("stage");
        let out = df.access("B");
        crate::helpers::map_stage(
            df,
            "square",
            &[dim("i", sym("N"))],
            Schedule::Parallel,
            &[In::new(a, "A", at(&["i"]), "v")],
            Out::new(s, "stage", at(&["i"])),
            ScalarExpr::r("v").mul(ScalarExpr::r("v")),
        );
        crate::helpers::map_stage(
            df,
            "offset",
            &[dim("i", sym("N"))],
            Schedule::Parallel,
            &[In::new(s, "stage", at(&["i"]), "v")],
            Out::new(out, "B", at(&["i"])),
            ScalarExpr::r("v").add(ScalarExpr::f64(1.0)),
        );
    });
    NamedWorkload::new(
        "staged_pipeline",
        b.build(),
        Bindings::from_pairs([("N", 12)]),
    )
}

/// A directly nested map pair (MapCollapse site).
pub fn nested_scale() -> NamedWorkload {
    let mut b = SdfgBuilder::new("nested_scale");
    b.symbol("N");
    b.array("A", DType::F64, &["N", "N"]);
    b.array("B", DType::F64, &["N", "N"]);
    let st = b.start();
    b.in_state(st, |df| {
        let a = df.access("A");
        let out = df.access("B");
        let outer = df.map(
            &["i"],
            vec![SymRange::full(sym("N"))],
            Schedule::Parallel,
            |body| {
                body.map(
                    &["j"],
                    vec![SymRange::full(sym("N"))],
                    Schedule::Parallel,
                    |inner| {
                        let a = inner.access("A");
                        let o = inner.access("B");
                        let t = inner.tasklet(Tasklet::simple(
                            "scale",
                            vec!["v"],
                            "r",
                            ScalarExpr::r("v").mul(ScalarExpr::f64(0.5)),
                        ));
                        inner.read(a, t, Memlet::new("A", at(&["i", "j"])).to_conn("v"));
                        inner.write(t, o, Memlet::new("B", at(&["i", "j"])).from_conn("r"));
                    },
                );
            },
        );
        df.auto_wire(outer, &[a], &[out]);
    });
    NamedWorkload::new("nested_scale", b.build(), Bindings::from_pairs([("N", 8)]))
}

/// Element-wise map feeding a Reduce library node through a transient
/// buffer (MapReduceFusion site).
pub fn squared_sum() -> NamedWorkload {
    let mut b = SdfgBuilder::new("squared_sum");
    b.symbol("N");
    b.array("A", DType::F64, &["N"]);
    b.transient("buf", DType::F64, &["N"]);
    b.array("s", DType::F64, &["1"]);
    let st = b.start();
    b.in_state(st, |df| {
        let a = df.access("A");
        let buf = df.access("buf");
        let s = df.access("s");
        crate::helpers::map_stage(
            df,
            "sq",
            &[dim("i", sym("N"))],
            Schedule::Parallel,
            &[In::new(a, "A", at(&["i"]), "v")],
            Out::new(buf, "buf", at(&["i"])),
            ScalarExpr::r("v").mul(ScalarExpr::r("v")),
        );
        let red = df.library(
            "sum",
            LibraryOp::Reduce {
                op: Wcr::Sum,
                axis: 0,
            },
        );
        df.read(
            buf,
            red,
            Memlet::new("buf", Subset::full(&[sym("N")])).to_conn("in"),
        );
        df.write(
            red,
            s,
            Memlet::new("s", Subset::at(vec![SymExpr::Int(0)])).from_conn("out"),
        );
    });
    NamedWorkload::new("squared_sum", b.build(), Bindings::from_pairs([("N", 12)]))
}

/// Symbol plumbing on inter-state edges: a constant offset, an alias used
/// across *two* states (SymbolAliasPromotion's bug trigger), plus two
/// independent states (StateFusion site).
pub fn symbol_plumbing() -> NamedWorkload {
    let mut b = SdfgBuilder::new("symbol_plumbing");
    b.symbol("N");
    b.array("A", DType::F64, &["N"]);
    b.array("B", DType::F64, &["N"]);
    b.array("C", DType::F64, &["N"]);
    let st1 = b.add_state("first");
    // start --[k = 2, m = k? no: m aliases N]--> st1
    b.edge(
        b.start(),
        st1,
        InterstateEdge::always()
            .assign("off", SymExpr::Int(2))
            .assign("m", SymExpr::sym("N")),
    );
    let fill = |df: &mut fuzzyflow_ir::DataflowBuilder, src: &'static str, dst: &'static str| {
        let a = df.access(src);
        let o = df.access(dst);
        let t = df.tasklet(Tasklet::simple("cp", vec!["v"], "r", ScalarExpr::r("v")));
        df.read(
            a,
            t,
            Memlet::new(src, Subset::at(vec![sym("m") - sym("off")])).to_conn("v"),
        );
        df.write(
            t,
            o,
            Memlet::new(dst, Subset::at(vec![SymExpr::Int(0)])).from_conn("r"),
        );
    };
    b.in_state(st1, move |df| fill(df, "A", "B"));
    // A second state also using the alias `m` (rename-only-next-state bug).
    let st2 = b.add_state_after(st1, "second");
    b.in_state(st2, move |df| fill(df, "A", "C"));
    NamedWorkload::new(
        "symbol_plumbing",
        b.build(),
        Bindings::from_pairs([("N", 8)]),
    )
}

/// Two consecutive states with disjoint container footprints
/// (StateFusion site — fusable without interference).
pub fn independent_updates() -> NamedWorkload {
    let mut b = SdfgBuilder::new("independent_updates");
    b.symbol("N");
    b.array("A", DType::F64, &["N"]);
    b.array("B", DType::F64, &["N"]);
    b.array("outA", DType::F64, &["N"]);
    b.array("outB", DType::F64, &["N"]);
    let st2 = b.add_state_after(b.start(), "second");
    b.in_state(b.start(), |df| {
        let a = df.access("A");
        let o = df.access("outA");
        crate::helpers::map_stage(
            df,
            "scaleA",
            &[dim("i", sym("N"))],
            Schedule::Parallel,
            &[In::new(a, "A", at(&["i"]), "v")],
            Out::new(o, "outA", at(&["i"])),
            ScalarExpr::r("v").mul(ScalarExpr::f64(2.0)),
        );
    });
    b.in_state(st2, |df| {
        let a = df.access("B");
        let o = df.access("outB");
        crate::helpers::map_stage(
            df,
            "scaleB",
            &[dim("i", sym("N"))],
            Schedule::Parallel,
            &[In::new(a, "B", at(&["i"]), "v")],
            Out::new(o, "outB", at(&["i"])),
            ScalarExpr::r("v").mul(ScalarExpr::f64(3.0)),
        );
    });
    NamedWorkload::new(
        "independent_updates",
        b.build(),
        Bindings::from_pairs([("N", 10)]),
    )
}

/// All compound kernels.
pub fn all() -> Vec<NamedWorkload> {
    vec![
        scalar_chain(),
        staged_pipeline(),
        nested_scale(),
        squared_sum(),
        symbol_plumbing(),
        independent_updates(),
    ]
}
