//! An NPBench-like benchmark suite (paper Sec. 6.3).
//!
//! NPBench (Ziogas et al., ICS'21) collects 52 NumPy kernels from
//! scientific computing domains; the paper sweeps every DaCe built-in
//! transformation over all of them (3,280 instances, Table 2). This module
//! provides 32 kernels re-implemented against the FuzzyFlow IR, spanning
//! the same domains: dense linear algebra, stencils, deep-learning
//! primitives, and statistics/graph kernels. Each kernel is a parametric
//! program plus laptop-sized default bindings.
//!
//! Kernels whose core construct our IR does not model (bit manipulation
//! in `crc16`, complex numbers in the FFTs, data-dependent `while` loops
//! in `mandelbrot`) are substituted by structurally similar kernels from
//! the same domain — see DESIGN.md §2.

pub mod compound;
pub mod deep_learning;
pub mod linalg;
pub mod misc;
pub mod stencils;

use fuzzyflow_ir::{Bindings, Sdfg};

/// One suite entry: a program plus default symbol bindings.
pub struct NamedWorkload {
    pub name: &'static str,
    pub sdfg: Sdfg,
    pub bindings: Bindings,
}

impl NamedWorkload {
    pub fn new(name: &'static str, sdfg: Sdfg, bindings: Bindings) -> Self {
        NamedWorkload {
            name,
            sdfg,
            bindings,
        }
    }
}

/// The full suite.
pub fn suite() -> Vec<NamedWorkload> {
    let mut v = Vec::new();
    v.extend(linalg::all());
    v.extend(stencils::all());
    v.extend(deep_learning::all());
    v.extend(misc::all());
    v.extend(compound::all());
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzyflow_interp::{run, ExecState};

    #[test]
    fn all_kernels_validate() {
        for w in suite() {
            let res = fuzzyflow_ir::validate(&w.sdfg);
            assert!(res.is_ok(), "{} fails validation: {:?}", w.name, res);
        }
    }

    #[test]
    fn all_kernels_execute_with_defaults() {
        for w in suite() {
            let mut st = ExecState::new();
            for (k, val) in w.bindings.iter() {
                st.bind(k, val);
            }
            // Missing inputs are zero-allocated by the interpreter; every
            // kernel must terminate without crashing on the zero input.
            let res = run(&w.sdfg, &mut st);
            assert!(res.is_ok(), "{} fails to execute: {:?}", w.name, res);
        }
    }

    #[test]
    fn suite_has_expected_size_and_unique_names() {
        let s = suite();
        assert!(s.len() >= 32, "suite has {} kernels", s.len());
        let mut names: Vec<&str> = s.iter().map(|w| w.name).collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total);
    }
}
