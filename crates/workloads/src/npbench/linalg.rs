//! Dense linear-algebra kernels (polybench heritage, as in NPBench).

use super::NamedWorkload;
use crate::helpers::{at, dim, dim_range, scalar, In, Out};
use fuzzyflow_ir::{
    sym, Bindings, DType, Memlet, ScalarExpr, Schedule, SdfgBuilder, Subset, SymExpr, Tasklet, Wcr,
};

fn n(v: i64) -> Bindings {
    Bindings::from_pairs([("N", v)])
}

fn nm(nv: i64, mv: i64) -> Bindings {
    Bindings::from_pairs([("N", nv), ("M", mv)])
}

/// `C = alpha·A@B + beta·C`.
pub fn gemm() -> NamedWorkload {
    let mut b = SdfgBuilder::new("gemm");
    b.symbol("N");
    b.array("A", DType::F64, &["N", "N"]);
    b.array("B", DType::F64, &["N", "N"]);
    b.array("C", DType::F64, &["N", "N"]);
    b.scalar("alpha", DType::F64);
    b.scalar("beta", DType::F64);
    let st = b.start();
    b.in_state(st, |df| {
        let c_in = df.access("C");
        let beta = df.access("beta");
        let c_scaled = df.access("C");
        crate::helpers::map_stage(
            df,
            "scale_c",
            &[dim("i", sym("N")), dim("j", sym("N"))],
            Schedule::Parallel,
            &[
                In::new(c_in, "C", at(&["i", "j"]), "c"),
                In::new(beta, "beta", scalar(), "b"),
            ],
            Out::new(c_scaled, "C", at(&["i", "j"])),
            ScalarExpr::r("c").mul(ScalarExpr::r("b")),
        );
        let a = df.access("A");
        let bb = df.access("B");
        let alpha = df.access("alpha");
        let c_out = df.access("C");
        let m = df.map(
            &["i", "j", "k"],
            vec![
                fuzzyflow_ir::SymRange::full(sym("N")),
                fuzzyflow_ir::SymRange::full(sym("N")),
                fuzzyflow_ir::SymRange::full(sym("N")),
            ],
            Schedule::Parallel,
            |body| {
                let a = body.access("A");
                let bb = body.access("B");
                let al = body.access("alpha");
                let c = body.access("C");
                let t = body.tasklet(Tasklet::simple(
                    "fma",
                    vec!["x", "y", "al"],
                    "o",
                    ScalarExpr::r("al").mul(ScalarExpr::r("x").mul(ScalarExpr::r("y"))),
                ));
                body.read(a, t, Memlet::new("A", at(&["i", "k"])).to_conn("x"));
                body.read(bb, t, Memlet::new("B", at(&["k", "j"])).to_conn("y"));
                body.read(al, t, Memlet::new("alpha", scalar()).to_conn("al"));
                body.write(
                    t,
                    c,
                    Memlet::new("C", at(&["i", "j"]))
                        .from_conn("o")
                        .with_wcr(Wcr::Sum),
                );
            },
        );
        // Ordering: the accumulation reads nothing from the scaled C, but
        // must run after the scaling — connect through the access chain.
        df.connect(
            c_scaled,
            m,
            Memlet::new("C", Subset::full(&[sym("N"), sym("N")])),
        );
        df.auto_wire(m, &[a, bb, alpha], &[c_out]);
    });
    NamedWorkload::new("gemm", b.build(), n(10))
}

/// Helper: adds a `dst[i,j] += lhs[i,k]·rhs[k,j]` GEMM map (all `N×N`).
fn gemm_stage(
    df: &mut fuzzyflow_ir::DataflowBuilder,
    name: &str,
    lhs: (fuzzyflow_graph::NodeId, &str),
    rhs: (fuzzyflow_graph::NodeId, &str),
    dst: (fuzzyflow_graph::NodeId, &str),
) {
    crate::helpers::map_stage(
        df,
        name,
        &[dim("i", sym("N")), dim("j", sym("N")), dim("k", sym("N"))],
        Schedule::Parallel,
        &[
            In::new(lhs.0, lhs.1, at(&["i", "k"]), "x"),
            In::new(rhs.0, rhs.1, at(&["k", "j"]), "y"),
        ],
        Out::new(dst.0, dst.1, at(&["i", "j"])).accumulate(Wcr::Sum),
        ScalarExpr::r("x").mul(ScalarExpr::r("y")),
    );
}

/// `D = (alpha·A@B) @ C + beta·D` (2mm), flattened to two GEMM stages.
pub fn k2mm() -> NamedWorkload {
    let mut b = SdfgBuilder::new("k2mm");
    b.symbol("N");
    for x in ["A", "B", "C", "D"] {
        b.array(x, DType::F64, &["N", "N"]);
    }
    b.transient("tmp", DType::F64, &["N", "N"]);
    let st = b.start();
    b.in_state(st, |df| {
        let a = df.access("A");
        let bb = df.access("B");
        let c = df.access("C");
        let d = df.access("D");
        let tmp = df.access("tmp");
        gemm_stage(df, "mm1", (a, "A"), (bb, "B"), (tmp, "tmp"));
        gemm_stage(df, "mm2", (tmp, "tmp"), (c, "C"), (d, "D"));
    });
    NamedWorkload::new("k2mm", b.build(), n(10))
}

/// `G = (A@B) @ (C@D)` (3mm).
pub fn k3mm() -> NamedWorkload {
    let mut b = SdfgBuilder::new("k3mm");
    b.symbol("N");
    for x in ["A", "B", "C", "D", "G"] {
        b.array(x, DType::F64, &["N", "N"]);
    }
    b.transient("E", DType::F64, &["N", "N"]);
    b.transient("F", DType::F64, &["N", "N"]);
    let st = b.start();
    b.in_state(st, |df| {
        let a = df.access("A");
        let bb = df.access("B");
        let c = df.access("C");
        let d = df.access("D");
        let e = df.access("E");
        let f = df.access("F");
        let g = df.access("G");
        gemm_stage(df, "mm1", (a, "A"), (bb, "B"), (e, "E"));
        gemm_stage(df, "mm2", (c, "C"), (d, "D"), (f, "F"));
        gemm_stage(df, "mm3", (e, "E"), (f, "F"), (g, "G"));
    });
    NamedWorkload::new("k3mm", b.build(), n(8))
}

/// `y = A^T @ (A @ x)`.
pub fn atax() -> NamedWorkload {
    let mut b = SdfgBuilder::new("atax");
    b.symbol("N");
    b.symbol("M");
    b.array("A", DType::F64, &["N", "M"]);
    b.array("x", DType::F64, &["M"]);
    b.array("y", DType::F64, &["M"]);
    b.transient("tmp", DType::F64, &["N"]);
    let st = b.start();
    b.in_state(st, |df| {
        let a = df.access("A");
        let x = df.access("x");
        let tmp = df.access("tmp");
        let y = df.access("y");
        crate::helpers::map_stage(
            df,
            "ax",
            &[dim("i", sym("N")), dim("j", sym("M"))],
            Schedule::Parallel,
            &[
                In::new(a, "A", at(&["i", "j"]), "a"),
                In::new(x, "x", at(&["j"]), "v"),
            ],
            Out::new(tmp, "tmp", at(&["i"])).accumulate(Wcr::Sum),
            ScalarExpr::r("a").mul(ScalarExpr::r("v")),
        );
        crate::helpers::map_stage(
            df,
            "aty",
            &[dim("i", sym("N")), dim("j", sym("M"))],
            Schedule::Parallel,
            &[
                In::new(a, "A", at(&["i", "j"]), "a"),
                In::new(tmp, "tmp", at(&["i"]), "t"),
            ],
            Out::new(y, "y", at(&["j"])).accumulate(Wcr::Sum),
            ScalarExpr::r("a").mul(ScalarExpr::r("t")),
        );
    });
    NamedWorkload::new("atax", b.build(), nm(10, 12))
}

/// `s = r @ A`, `q = A @ p`.
pub fn bicg() -> NamedWorkload {
    let mut b = SdfgBuilder::new("bicg");
    b.symbol("N");
    b.symbol("M");
    b.array("A", DType::F64, &["N", "M"]);
    b.array("r", DType::F64, &["N"]);
    b.array("p", DType::F64, &["M"]);
    b.array("s", DType::F64, &["M"]);
    b.array("q", DType::F64, &["N"]);
    let st = b.start();
    b.in_state(st, |df| {
        let a = df.access("A");
        let r = df.access("r");
        let p = df.access("p");
        let s = df.access("s");
        let q = df.access("q");
        crate::helpers::map_stage(
            df,
            "s_ra",
            &[dim("i", sym("N")), dim("j", sym("M"))],
            Schedule::Parallel,
            &[
                In::new(a, "A", at(&["i", "j"]), "a"),
                In::new(r, "r", at(&["i"]), "v"),
            ],
            Out::new(s, "s", at(&["j"])).accumulate(Wcr::Sum),
            ScalarExpr::r("a").mul(ScalarExpr::r("v")),
        );
        crate::helpers::map_stage(
            df,
            "q_ap",
            &[dim("i", sym("N")), dim("j", sym("M"))],
            Schedule::Parallel,
            &[
                In::new(a, "A", at(&["i", "j"]), "a"),
                In::new(p, "p", at(&["j"]), "v"),
            ],
            Out::new(q, "q", at(&["i"])).accumulate(Wcr::Sum),
            ScalarExpr::r("a").mul(ScalarExpr::r("v")),
        );
    });
    NamedWorkload::new("bicg", b.build(), nm(10, 12))
}

/// `x1 += A @ y1`, `x2 += A^T @ y2`.
pub fn mvt() -> NamedWorkload {
    let mut b = SdfgBuilder::new("mvt");
    b.symbol("N");
    b.array("A", DType::F64, &["N", "N"]);
    for x in ["x1", "x2", "y1", "y2"] {
        b.array(x, DType::F64, &["N"]);
    }
    let st = b.start();
    b.in_state(st, |df| {
        let a = df.access("A");
        let y1 = df.access("y1");
        let y2 = df.access("y2");
        let x1 = df.access("x1");
        let x2 = df.access("x2");
        crate::helpers::map_stage(
            df,
            "x1_acc",
            &[dim("i", sym("N")), dim("j", sym("N"))],
            Schedule::Parallel,
            &[
                In::new(a, "A", at(&["i", "j"]), "a"),
                In::new(y1, "y1", at(&["j"]), "v"),
            ],
            Out::new(x1, "x1", at(&["i"])).accumulate(Wcr::Sum),
            ScalarExpr::r("a").mul(ScalarExpr::r("v")),
        );
        crate::helpers::map_stage(
            df,
            "x2_acc",
            &[dim("i", sym("N")), dim("j", sym("N"))],
            Schedule::Parallel,
            &[
                In::new(a, "A", at(&["j", "i"]), "a"),
                In::new(y2, "y2", at(&["j"]), "v"),
            ],
            Out::new(x2, "x2", at(&["i"])).accumulate(Wcr::Sum),
            ScalarExpr::r("a").mul(ScalarExpr::r("v")),
        );
    });
    NamedWorkload::new("mvt", b.build(), n(12))
}

/// gemver: rank-2 update plus two matrix-vector products.
pub fn gemver() -> NamedWorkload {
    let mut b = SdfgBuilder::new("gemver");
    b.symbol("N");
    b.array("A", DType::F64, &["N", "N"]);
    for x in ["u1", "v1", "u2", "v2", "y", "z", "x", "w"] {
        b.array(x, DType::F64, &["N"]);
    }
    b.scalar("alpha", DType::F64);
    b.scalar("beta", DType::F64);
    let st = b.start();
    b.in_state(st, |df| {
        let a_in = df.access("A");
        let u1 = df.access("u1");
        let v1 = df.access("v1");
        let u2 = df.access("u2");
        let v2 = df.access("v2");
        let a_up = df.access("A");
        // A += u1 v1^T + u2 v2^T
        crate::helpers::map_stage(
            df,
            "rank2",
            &[dim("i", sym("N")), dim("j", sym("N"))],
            Schedule::Parallel,
            &[
                In::new(a_in, "A", at(&["i", "j"]), "a"),
                In::new(u1, "u1", at(&["i"]), "p"),
                In::new(v1, "v1", at(&["j"]), "q"),
                In::new(u2, "u2", at(&["i"]), "r"),
                In::new(v2, "v2", at(&["j"]), "s"),
            ],
            Out::new(a_up, "A", at(&["i", "j"])),
            ScalarExpr::r("a")
                .add(ScalarExpr::r("p").mul(ScalarExpr::r("q")))
                .add(ScalarExpr::r("r").mul(ScalarExpr::r("s"))),
        );
        // x += beta * A^T y, then x += z
        let beta = df.access("beta");
        let y = df.access("y");
        let x1 = df.access("x");
        crate::helpers::map_stage(
            df,
            "xacc",
            &[dim("i", sym("N")), dim("j", sym("N"))],
            Schedule::Parallel,
            &[
                In::new(a_up, "A", at(&["j", "i"]), "a"),
                In::new(y, "y", at(&["j"]), "v"),
                In::new(beta, "beta", scalar(), "b"),
            ],
            Out::new(x1, "x", at(&["i"])).accumulate(Wcr::Sum),
            ScalarExpr::r("b").mul(ScalarExpr::r("a").mul(ScalarExpr::r("v"))),
        );
        let z = df.access("z");
        let x2 = df.access("x");
        crate::helpers::map_stage(
            df,
            "xz",
            &[dim("i", sym("N"))],
            Schedule::Parallel,
            &[
                In::new(x1, "x", at(&["i"]), "xv"),
                In::new(z, "z", at(&["i"]), "zv"),
            ],
            Out::new(x2, "x", at(&["i"])),
            ScalarExpr::r("xv").add(ScalarExpr::r("zv")),
        );
        // w += alpha * A x
        let alpha = df.access("alpha");
        let w = df.access("w");
        crate::helpers::map_stage(
            df,
            "wacc",
            &[dim("i", sym("N")), dim("j", sym("N"))],
            Schedule::Parallel,
            &[
                In::new(a_up, "A", at(&["i", "j"]), "a"),
                In::new(x2, "x", at(&["j"]), "v"),
                In::new(alpha, "alpha", scalar(), "al"),
            ],
            Out::new(w, "w", at(&["i"])).accumulate(Wcr::Sum),
            ScalarExpr::r("al").mul(ScalarExpr::r("a").mul(ScalarExpr::r("v"))),
        );
    });
    NamedWorkload::new("gemver", b.build(), n(10))
}

/// `y = alpha·A@x + beta·B@x`.
pub fn gesummv() -> NamedWorkload {
    let mut b = SdfgBuilder::new("gesummv");
    b.symbol("N");
    b.array("A", DType::F64, &["N", "N"]);
    b.array("B", DType::F64, &["N", "N"]);
    b.array("x", DType::F64, &["N"]);
    b.array("y", DType::F64, &["N"]);
    b.transient("tmp", DType::F64, &["N"]);
    b.scalar("alpha", DType::F64);
    b.scalar("beta", DType::F64);
    let st = b.start();
    b.in_state(st, |df| {
        let a = df.access("A");
        let bb = df.access("B");
        let x = df.access("x");
        let tmp = df.access("tmp");
        let y = df.access("y");
        crate::helpers::map_stage(
            df,
            "ax",
            &[dim("i", sym("N")), dim("j", sym("N"))],
            Schedule::Parallel,
            &[
                In::new(a, "A", at(&["i", "j"]), "a"),
                In::new(x, "x", at(&["j"]), "v"),
            ],
            Out::new(tmp, "tmp", at(&["i"])).accumulate(Wcr::Sum),
            ScalarExpr::r("a").mul(ScalarExpr::r("v")),
        );
        crate::helpers::map_stage(
            df,
            "bx",
            &[dim("i", sym("N")), dim("j", sym("N"))],
            Schedule::Parallel,
            &[
                In::new(bb, "B", at(&["i", "j"]), "a"),
                In::new(x, "x", at(&["j"]), "v"),
            ],
            Out::new(y, "y", at(&["i"])).accumulate(Wcr::Sum),
            ScalarExpr::r("a").mul(ScalarExpr::r("v")),
        );
        let alpha = df.access("alpha");
        let beta = df.access("beta");
        let y2 = df.access("y");
        crate::helpers::map_stage(
            df,
            "combine",
            &[dim("i", sym("N"))],
            Schedule::Parallel,
            &[
                In::new(tmp, "tmp", at(&["i"]), "t"),
                In::new(y, "y", at(&["i"]), "yb"),
                In::new(alpha, "alpha", scalar(), "al"),
                In::new(beta, "beta", scalar(), "be"),
            ],
            Out::new(y2, "y", at(&["i"])),
            ScalarExpr::r("al")
                .mul(ScalarExpr::r("t"))
                .add(ScalarExpr::r("be").mul(ScalarExpr::r("yb"))),
        );
    });
    NamedWorkload::new("gesummv", b.build(), n(12))
}

/// `C = alpha·A@A^T + beta·C` (syrk).
pub fn syrk() -> NamedWorkload {
    let mut b = SdfgBuilder::new("syrk");
    b.symbol("N");
    b.symbol("M");
    b.array("A", DType::F64, &["N", "M"]);
    b.array("C", DType::F64, &["N", "N"]);
    b.scalar("alpha", DType::F64);
    let st = b.start();
    b.in_state(st, |df| {
        let a = df.access("A");
        let alpha = df.access("alpha");
        let c = df.access("C");
        crate::helpers::map_stage(
            df,
            "syrk",
            &[dim("i", sym("N")), dim("j", sym("N")), dim("k", sym("M"))],
            Schedule::Parallel,
            &[
                In::new(a, "A", at(&["i", "k"]), "x"),
                In::new(a, "A", at(&["j", "k"]), "y"),
                In::new(alpha, "alpha", scalar(), "al"),
            ],
            Out::new(c, "C", at(&["i", "j"])).accumulate(Wcr::Sum),
            ScalarExpr::r("al").mul(ScalarExpr::r("x").mul(ScalarExpr::r("y"))),
        );
    });
    NamedWorkload::new("syrk", b.build(), nm(10, 8))
}

/// `C += alpha·(A@B^T + B@A^T)` (syr2k).
pub fn syr2k() -> NamedWorkload {
    let mut b = SdfgBuilder::new("syr2k");
    b.symbol("N");
    b.symbol("M");
    b.array("A", DType::F64, &["N", "M"]);
    b.array("B", DType::F64, &["N", "M"]);
    b.array("C", DType::F64, &["N", "N"]);
    let st = b.start();
    b.in_state(st, |df| {
        let a = df.access("A");
        let bb = df.access("B");
        let c = df.access("C");
        crate::helpers::map_stage(
            df,
            "syr2k",
            &[dim("i", sym("N")), dim("j", sym("N")), dim("k", sym("M"))],
            Schedule::Parallel,
            &[
                In::new(a, "A", at(&["i", "k"]), "aik"),
                In::new(bb, "B", at(&["j", "k"]), "bjk"),
                In::new(bb, "B", at(&["i", "k"]), "bik"),
                In::new(a, "A", at(&["j", "k"]), "ajk"),
            ],
            Out::new(c, "C", at(&["i", "j"])).accumulate(Wcr::Sum),
            ScalarExpr::r("aik")
                .mul(ScalarExpr::r("bjk"))
                .add(ScalarExpr::r("bik").mul(ScalarExpr::r("ajk"))),
        );
    });
    NamedWorkload::new("syr2k", b.build(), nm(8, 8))
}

/// `C = A@B + beta·C` with symmetric `A` (symm, simplified dense form).
pub fn symm() -> NamedWorkload {
    let mut b = SdfgBuilder::new("symm");
    b.symbol("N");
    b.array("A", DType::F64, &["N", "N"]);
    b.array("B", DType::F64, &["N", "N"]);
    b.array("C", DType::F64, &["N", "N"]);
    let st = b.start();
    b.in_state(st, |df| {
        let a = df.access("A");
        let bb = df.access("B");
        let c = df.access("C");
        gemm_stage(df, "symm_mm", (a, "A"), (bb, "B"), (c, "C"));
    });
    NamedWorkload::new("symm", b.build(), n(10))
}

/// Triangular matrix multiplication: `B[i,j] += Σ_{k>i} A[k,i]·B[k,j]`.
pub fn trmm() -> NamedWorkload {
    let mut b = SdfgBuilder::new("trmm");
    b.symbol("N");
    b.array("A", DType::F64, &["N", "N"]);
    b.array("B", DType::F64, &["N", "N"]);
    let st = b.start();
    b.in_state(st, |df| {
        let a = df.access("A");
        let b_in = df.access("B");
        let b_out = df.access("B");
        crate::helpers::map_stage(
            df,
            "trmm",
            &[
                dim("i", sym("N")),
                dim("j", sym("N")),
                dim_range("k", sym("i") + SymExpr::Int(1), sym("N")),
            ],
            Schedule::Sequential,
            &[
                In::new(a, "A", at(&["k", "i"]), "a"),
                In::new(b_in, "B", at(&["k", "j"]), "b"),
            ],
            Out::new(b_out, "B", at(&["i", "j"])).accumulate(Wcr::Sum),
            ScalarExpr::r("a").mul(ScalarExpr::r("b")),
        );
    });
    NamedWorkload::new("trmm", b.build(), n(8))
}

/// doitgen: `A[r,q,p] = Σ_s A[r,q,s]·C4[s,p]`.
pub fn doitgen() -> NamedWorkload {
    let mut b = SdfgBuilder::new("doitgen");
    b.symbol("R");
    b.symbol("Q");
    b.symbol("P");
    b.array("A", DType::F64, &["R", "Q", "P"]);
    b.array("C4", DType::F64, &["P", "P"]);
    b.transient("sum", DType::F64, &["R", "Q", "P"]);
    let st = b.start();
    b.in_state(st, |df| {
        let a_in = df.access("A");
        let c4 = df.access("C4");
        let s = df.access("sum");
        let a_out = df.access("A");
        crate::helpers::map_stage(
            df,
            "contract",
            &[
                dim("r", sym("R")),
                dim("q", sym("Q")),
                dim("p", sym("P")),
                dim("s", sym("P")),
            ],
            Schedule::Parallel,
            &[
                In::new(a_in, "A", at(&["r", "q", "s"]), "a"),
                In::new(c4, "C4", at(&["s", "p"]), "c"),
            ],
            Out::new(s, "sum", at(&["r", "q", "p"])).accumulate(Wcr::Sum),
            ScalarExpr::r("a").mul(ScalarExpr::r("c")),
        );
        crate::helpers::map_stage(
            df,
            "writeback",
            &[dim("r", sym("R")), dim("q", sym("Q")), dim("p", sym("P"))],
            Schedule::Parallel,
            &[In::new(s, "sum", at(&["r", "q", "p"]), "v")],
            Out::new(a_out, "A", at(&["r", "q", "p"])),
            ScalarExpr::r("v"),
        );
    });
    NamedWorkload::new(
        "doitgen",
        b.build(),
        Bindings::from_pairs([("R", 4), ("Q", 4), ("P", 6)]),
    )
}

/// Forward substitution `L x = b` (trisolv), loop over rows.
pub fn trisolv() -> NamedWorkload {
    let mut b = SdfgBuilder::new("trisolv");
    b.symbol("N");
    b.array("L", DType::F64, &["N", "N"]);
    b.array("bvec", DType::F64, &["N"]);
    b.array("x", DType::F64, &["N"]);
    let lh = b.for_loop(
        b.start(),
        "i",
        SymExpr::Int(0),
        sym("N") - SymExpr::Int(1),
        1,
        "rows",
    );
    b.in_state(lh.body, |df| {
        // x[i] = b[i]
        let bv = df.access("bvec");
        let x0 = df.access("x");
        let seed = df.tasklet(Tasklet::simple("seed", vec!["v"], "o", ScalarExpr::r("v")));
        df.read(bv, seed, Memlet::new("bvec", at(&["i"])).to_conn("v"));
        df.write(seed, x0, Memlet::new("x", at(&["i"])).from_conn("o"));
        // x[i] -= L[i,j]*x[j] for j < i  (reads the chained x access).
        let l = df.access("L");
        let x1 = df.access("x");
        let m = df.map(
            &["j"],
            vec![fuzzyflow_ir::SymRange::span(SymExpr::Int(0), sym("i"))],
            Schedule::Sequential,
            |body| {
                let l = body.access("L");
                let x = body.access("x");
                let xw = body.access("x");
                let t = body.tasklet(Tasklet::simple(
                    "elim",
                    vec!["lv", "xv"],
                    "o",
                    ScalarExpr::r("lv").mul(ScalarExpr::r("xv")).neg(),
                ));
                body.read(l, t, Memlet::new("L", at(&["i", "j"])).to_conn("lv"));
                body.read(x, t, Memlet::new("x", at(&["j"])).to_conn("xv"));
                body.write(
                    t,
                    xw,
                    Memlet::new("x", at(&["i"]))
                        .from_conn("o")
                        .with_wcr(Wcr::Sum),
                );
            },
        );
        df.connect(x0, m, Memlet::new("x", Subset::full(&[sym("N")])));
        df.auto_wire(m, &[l], &[x1]);
        // x[i] /= L[i,i]
        let x2 = df.access("x");
        let div = df.tasklet(Tasklet::simple(
            "norm",
            vec!["xv", "lv"],
            "o",
            ScalarExpr::r("xv").div(ScalarExpr::r("lv")),
        ));
        df.read(x1, div, Memlet::new("x", at(&["i"])).to_conn("xv"));
        df.read(l, div, Memlet::new("L", at(&["i", "i"])).to_conn("lv"));
        df.write(div, x2, Memlet::new("x", at(&["i"])).from_conn("o"));
    });
    NamedWorkload::new("trisolv", b.build(), n(8))
}

/// Masked sparse matrix-vector product, dense storage (spmv).
pub fn spmv() -> NamedWorkload {
    let mut b = SdfgBuilder::new("spmv");
    b.symbol("N");
    b.array("A", DType::F64, &["N", "N"]);
    b.array("mask", DType::F64, &["N", "N"]);
    b.array("x", DType::F64, &["N"]);
    b.array("y", DType::F64, &["N"]);
    let st = b.start();
    b.in_state(st, |df| {
        let a = df.access("A");
        let m = df.access("mask");
        let x = df.access("x");
        let y = df.access("y");
        crate::helpers::map_stage(
            df,
            "spmv",
            &[dim("i", sym("N")), dim("j", sym("N"))],
            Schedule::Parallel,
            &[
                In::new(a, "A", at(&["i", "j"]), "a"),
                In::new(m, "mask", at(&["i", "j"]), "mk"),
                In::new(x, "x", at(&["j"]), "v"),
            ],
            Out::new(y, "y", at(&["i"])).accumulate(Wcr::Sum),
            ScalarExpr::r("mk").mul(ScalarExpr::r("a").mul(ScalarExpr::r("v"))),
        );
    });
    NamedWorkload::new("spmv", b.build(), n(12))
}

/// All linear-algebra kernels.
pub fn all() -> Vec<NamedWorkload> {
    vec![
        gemm(),
        k2mm(),
        k3mm(),
        atax(),
        bicg(),
        mvt(),
        gemver(),
        gesummv(),
        syrk(),
        syr2k(),
        symm(),
        trmm(),
        doitgen(),
        trisolv(),
        spmv(),
    ]
}
