//! Statistics, graph and N-body kernels.

use super::NamedWorkload;
use crate::helpers::{at, dim, scalar, In, Out};
use fuzzyflow_ir::{
    sym, Bindings, DType, Memlet, ScalarExpr, Schedule, SdfgBuilder, Subset, SymExpr, Tasklet, Wcr,
};

/// covariance: column means, centering, and the covariance matrix.
pub fn covariance() -> NamedWorkload {
    let mut b = SdfgBuilder::new("covariance");
    b.symbol("N"); // observations
    b.symbol("M"); // variables
    b.array("data", DType::F64, &["N", "M"]);
    b.array("cov", DType::F64, &["M", "M"]);
    b.transient("mean", DType::F64, &["M"]);
    b.transient("centered", DType::F64, &["N", "M"]);
    b.scalar("invn", DType::F64); // 1/N provided as input scalar
    let st = b.start();
    b.in_state(st, |df| {
        let data = df.access("data");
        let invn = df.access("invn");
        let mean = df.access("mean");
        crate::helpers::map_stage(
            df,
            "col_mean",
            &[dim("i", sym("N")), dim("j", sym("M"))],
            Schedule::Parallel,
            &[
                In::new(data, "data", at(&["i", "j"]), "v"),
                In::new(invn, "invn", scalar(), "w"),
            ],
            Out::new(mean, "mean", at(&["j"])).accumulate(Wcr::Sum),
            ScalarExpr::r("v").mul(ScalarExpr::r("w")),
        );
        let centered = df.access("centered");
        crate::helpers::map_stage(
            df,
            "center",
            &[dim("i", sym("N")), dim("j", sym("M"))],
            Schedule::Parallel,
            &[
                In::new(data, "data", at(&["i", "j"]), "v"),
                In::new(mean, "mean", at(&["j"]), "m"),
            ],
            Out::new(centered, "centered", at(&["i", "j"])),
            ScalarExpr::r("v").sub(ScalarExpr::r("m")),
        );
        let cov = df.access("cov");
        crate::helpers::map_stage(
            df,
            "outer",
            &[dim("i", sym("M")), dim("j", sym("M")), dim("k", sym("N"))],
            Schedule::Parallel,
            &[
                In::new(centered, "centered", at(&["k", "i"]), "a"),
                In::new(centered, "centered", at(&["k", "j"]), "bb"),
                In::new(invn, "invn", scalar(), "w"),
            ],
            Out::new(cov, "cov", at(&["i", "j"])).accumulate(Wcr::Sum),
            ScalarExpr::r("a")
                .mul(ScalarExpr::r("bb"))
                .mul(ScalarExpr::r("w")),
        );
    });
    NamedWorkload::new(
        "covariance",
        b.build(),
        Bindings::from_pairs([("N", 10), ("M", 6)]),
    )
}

/// correlation: covariance normalized by the diagonal.
pub fn correlation() -> NamedWorkload {
    let cov = covariance();
    let mut b = SdfgBuilder::new("correlation");
    b.symbol("N");
    b.symbol("M");
    b.array("data", DType::F64, &["N", "M"]);
    b.array("corr", DType::F64, &["M", "M"]);
    b.transient("mean", DType::F64, &["M"]);
    b.transient("centered", DType::F64, &["N", "M"]);
    b.transient("cov", DType::F64, &["M", "M"]);
    b.scalar("invn", DType::F64);
    let _ = cov;
    let st = b.start();
    b.in_state(st, |df| {
        let data = df.access("data");
        let invn = df.access("invn");
        let mean = df.access("mean");
        crate::helpers::map_stage(
            df,
            "col_mean",
            &[dim("i", sym("N")), dim("j", sym("M"))],
            Schedule::Parallel,
            &[
                In::new(data, "data", at(&["i", "j"]), "v"),
                In::new(invn, "invn", scalar(), "w"),
            ],
            Out::new(mean, "mean", at(&["j"])).accumulate(Wcr::Sum),
            ScalarExpr::r("v").mul(ScalarExpr::r("w")),
        );
        let centered = df.access("centered");
        crate::helpers::map_stage(
            df,
            "center",
            &[dim("i", sym("N")), dim("j", sym("M"))],
            Schedule::Parallel,
            &[
                In::new(data, "data", at(&["i", "j"]), "v"),
                In::new(mean, "mean", at(&["j"]), "m"),
            ],
            Out::new(centered, "centered", at(&["i", "j"])),
            ScalarExpr::r("v").sub(ScalarExpr::r("m")),
        );
        let covm = df.access("cov");
        crate::helpers::map_stage(
            df,
            "outer",
            &[dim("i", sym("M")), dim("j", sym("M")), dim("k", sym("N"))],
            Schedule::Parallel,
            &[
                In::new(centered, "centered", at(&["k", "i"]), "a"),
                In::new(centered, "centered", at(&["k", "j"]), "bb"),
            ],
            Out::new(covm, "cov", at(&["i", "j"])).accumulate(Wcr::Sum),
            ScalarExpr::r("a").mul(ScalarExpr::r("bb")),
        );
        let corr = df.access("corr");
        crate::helpers::map_stage(
            df,
            "normalize",
            &[dim("i", sym("M")), dim("j", sym("M"))],
            Schedule::Parallel,
            &[
                In::new(covm, "cov", at(&["i", "j"]), "c"),
                In::new(covm, "cov", at(&["i", "i"]), "dii"),
                In::new(covm, "cov", at(&["j", "j"]), "djj"),
            ],
            Out::new(corr, "corr", at(&["i", "j"])),
            ScalarExpr::r("c").div(
                ScalarExpr::r("dii")
                    .mul(ScalarExpr::r("djj"))
                    .sqrt()
                    .add(ScalarExpr::f64(1e-12)),
            ),
        );
    });
    NamedWorkload::new(
        "correlation",
        b.build(),
        Bindings::from_pairs([("N", 10), ("M", 6)]),
    )
}

/// Floyd-Warshall all-pairs shortest paths: sequential `k` loop with an
/// in-place relaxation map.
pub fn floyd_warshall() -> NamedWorkload {
    let mut b = SdfgBuilder::new("floyd_warshall");
    b.symbol("N");
    b.array("path", DType::F64, &["N", "N"]);
    let lh = b.for_loop(
        b.start(),
        "k",
        SymExpr::Int(0),
        sym("N") - SymExpr::Int(1),
        1,
        "pivot",
    );
    b.in_state(lh.body, |df| {
        let p_in = df.access("path");
        let p_out = df.access("path");
        crate::helpers::map_stage(
            df,
            "relax",
            &[dim("i", sym("N")), dim("j", sym("N"))],
            Schedule::Sequential,
            &[
                In::new(p_in, "path", at(&["i", "j"]), "d"),
                In::new(p_in, "path", at(&["i", "k"]), "dik"),
                In::new(p_in, "path", at(&["k", "j"]), "dkj"),
            ],
            Out::new(p_out, "path", at(&["i", "j"])),
            ScalarExpr::r("d").min(ScalarExpr::r("dik").add(ScalarExpr::r("dkj"))),
        );
    });
    NamedWorkload::new(
        "floyd_warshall",
        b.build(),
        Bindings::from_pairs([("N", 8)]),
    )
}

/// One leapfrog N-body step: pairwise forces, velocity and position update.
pub fn nbody_step() -> NamedWorkload {
    let mut b = SdfgBuilder::new("nbody_step");
    b.symbol("N");
    b.array("pos", DType::F64, &["N"]);
    b.array("vel", DType::F64, &["N"]);
    b.array("mass", DType::F64, &["N"]);
    b.transient("force", DType::F64, &["N"]);
    b.scalar("dt", DType::F64);
    let st = b.start();
    b.in_state(st, |df| {
        let pos = df.access("pos");
        let mass = df.access("mass");
        let force = df.access("force");
        // Softened pairwise attraction along one dimension.
        crate::helpers::map_stage(
            df,
            "forces",
            &[dim("i", sym("N")), dim("j", sym("N"))],
            Schedule::Parallel,
            &[
                In::new(pos, "pos", at(&["i"]), "xi"),
                In::new(pos, "pos", at(&["j"]), "xj"),
                In::new(mass, "mass", at(&["j"]), "mj"),
            ],
            Out::new(force, "force", at(&["i"])).accumulate(Wcr::Sum),
            {
                let dx = ScalarExpr::r("xj").sub(ScalarExpr::r("xi"));
                let soft = dx.clone().mul(dx.clone()).add(ScalarExpr::f64(0.01));
                ScalarExpr::r("mj").mul(dx).div(soft)
            },
        );
        let vel_in = df.access("vel");
        let vel_out = df.access("vel");
        let dt = df.access("dt");
        crate::helpers::map_stage(
            df,
            "kick",
            &[dim("i", sym("N"))],
            Schedule::Parallel,
            &[
                In::new(vel_in, "vel", at(&["i"]), "v"),
                In::new(force, "force", at(&["i"]), "f"),
                In::new(dt, "dt", scalar(), "h"),
            ],
            Out::new(vel_out, "vel", at(&["i"])),
            ScalarExpr::r("v").add(ScalarExpr::r("f").mul(ScalarExpr::r("h"))),
        );
        let pos_out = df.access("pos");
        crate::helpers::map_stage(
            df,
            "drift",
            &[dim("i", sym("N"))],
            Schedule::Parallel,
            &[
                In::new(pos, "pos", at(&["i"]), "x"),
                In::new(vel_out, "vel", at(&["i"]), "v"),
                In::new(dt, "dt", scalar(), "h"),
            ],
            Out::new(pos_out, "pos", at(&["i"])),
            ScalarExpr::r("x").add(ScalarExpr::r("v").mul(ScalarExpr::r("h"))),
        );
    });
    NamedWorkload::new("nbody_step", b.build(), Bindings::from_pairs([("N", 10)]))
}

/// A convergence-style `while` loop expressed in the state machine:
/// `x = 0.5*(x + a/x)` Newton iterations for sqrt, fixed trip count.
pub fn newton_sqrt_loop() -> NamedWorkload {
    let mut b = SdfgBuilder::new("newton_sqrt_loop");
    b.symbol("T");
    b.scalar("a", DType::F64);
    b.scalar("x", DType::F64);
    let lh = b.for_loop(
        b.start(),
        "it",
        SymExpr::Int(0),
        sym("T") - SymExpr::Int(1),
        1,
        "newton",
    );
    b.in_state(lh.body, |df| {
        let a = df.access("a");
        let x_in = df.access("x");
        let x_out = df.access("x");
        let t = df.tasklet(Tasklet::simple(
            "newton_step",
            vec!["xv", "av"],
            "o",
            ScalarExpr::f64(0.5).mul(
                ScalarExpr::r("xv")
                    .add(ScalarExpr::r("av").div(ScalarExpr::r("xv").add(ScalarExpr::f64(1e-12)))),
            ),
        ));
        df.read(x_in, t, Memlet::new("x", Subset::new(vec![])).to_conn("xv"));
        df.read(a, t, Memlet::new("a", Subset::new(vec![])).to_conn("av"));
        df.write(
            t,
            x_out,
            Memlet::new("x", Subset::new(vec![])).from_conn("o"),
        );
    });
    NamedWorkload::new(
        "newton_sqrt_loop",
        b.build(),
        Bindings::from_pairs([("T", 6)]),
    )
}

/// All misc kernels.
pub fn all() -> Vec<NamedWorkload> {
    vec![
        covariance(),
        correlation(),
        floyd_warshall(),
        nbody_step(),
        newton_sqrt_loop(),
    ]
}
