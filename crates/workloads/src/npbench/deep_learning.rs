//! Deep-learning primitive kernels (as in NPBench's ML category).

use super::NamedWorkload;
use crate::helpers::{at, dim, In, Out};
use fuzzyflow_ir::{
    sym, Bindings, DType, LibraryOp, Memlet, ScalarExpr, Schedule, SdfgBuilder, Subset, Wcr,
};

/// Row-wise numerically stable softmax via the library node.
pub fn softmax() -> NamedWorkload {
    let mut b = SdfgBuilder::new("softmax");
    b.symbol("N");
    b.symbol("M");
    b.array("x", DType::F64, &["N", "M"]);
    b.array("y", DType::F64, &["N", "M"]);
    let st = b.start();
    b.in_state(st, |df| {
        let x = df.access("x");
        let y = df.access("y");
        let sm = df.library("softmax", LibraryOp::Softmax);
        df.read(
            x,
            sm,
            Memlet::new("x", Subset::full(&[sym("N"), sym("M")])).to_conn("in"),
        );
        df.write(
            sm,
            y,
            Memlet::new("y", Subset::full(&[sym("N"), sym("M")])).from_conn("out"),
        );
    });
    NamedWorkload::new(
        "softmax",
        b.build(),
        Bindings::from_pairs([("N", 8), ("M", 10)]),
    )
}

/// Two-layer perceptron with ReLU activations:
/// `h = relu(x@W1)`, `out = relu(h@W2)`.
pub fn mlp() -> NamedWorkload {
    let mut b = SdfgBuilder::new("mlp");
    b.symbol("B");
    b.symbol("I");
    b.symbol("H");
    b.symbol("O");
    b.array("x", DType::F64, &["B", "I"]);
    b.array("W1", DType::F64, &["I", "H"]);
    b.array("W2", DType::F64, &["H", "O"]);
    b.array("out", DType::F64, &["B", "O"]);
    b.transient("h_pre", DType::F64, &["B", "H"]);
    b.transient("h", DType::F64, &["B", "H"]);
    b.transient("o_pre", DType::F64, &["B", "O"]);
    let st = b.start();
    b.in_state(st, |df| {
        let x = df.access("x");
        let w1 = df.access("W1");
        let hpre = df.access("h_pre");
        crate::helpers::map_stage(
            df,
            "fc1",
            &[dim("b", sym("B")), dim("j", sym("H")), dim("k", sym("I"))],
            Schedule::Parallel,
            &[
                In::new(x, "x", at(&["b", "k"]), "xv"),
                In::new(w1, "W1", at(&["k", "j"]), "w"),
            ],
            Out::new(hpre, "h_pre", at(&["b", "j"])).accumulate(Wcr::Sum),
            ScalarExpr::r("xv").mul(ScalarExpr::r("w")),
        );
        let h = df.access("h");
        crate::helpers::map_stage(
            df,
            "relu1",
            &[dim("b", sym("B")), dim("j", sym("H"))],
            Schedule::Parallel,
            &[In::new(hpre, "h_pre", at(&["b", "j"]), "v")],
            Out::new(h, "h", at(&["b", "j"])),
            ScalarExpr::r("v").max(ScalarExpr::f64(0.0)),
        );
        let w2 = df.access("W2");
        let opre = df.access("o_pre");
        crate::helpers::map_stage(
            df,
            "fc2",
            &[dim("b", sym("B")), dim("j", sym("O")), dim("k", sym("H"))],
            Schedule::Parallel,
            &[
                In::new(h, "h", at(&["b", "k"]), "xv"),
                In::new(w2, "W2", at(&["k", "j"]), "w"),
            ],
            Out::new(opre, "o_pre", at(&["b", "j"])).accumulate(Wcr::Sum),
            ScalarExpr::r("xv").mul(ScalarExpr::r("w")),
        );
        let out = df.access("out");
        crate::helpers::map_stage(
            df,
            "relu2",
            &[dim("b", sym("B")), dim("j", sym("O"))],
            Schedule::Parallel,
            &[In::new(opre, "o_pre", at(&["b", "j"]), "v")],
            Out::new(out, "out", at(&["b", "j"])),
            ScalarExpr::r("v").max(ScalarExpr::f64(0.0)),
        );
    });
    NamedWorkload::new(
        "mlp",
        b.build(),
        Bindings::from_pairs([("B", 4), ("I", 6), ("H", 8), ("O", 5)]),
    )
}

/// Direct 2-D convolution (valid padding).
pub fn conv2d() -> NamedWorkload {
    let mut b = SdfgBuilder::new("conv2d");
    b.symbol("H");
    b.symbol("W");
    b.symbol("K");
    b.array("img", DType::F64, &["H", "W"]);
    b.array("kernel", DType::F64, &["K", "K"]);
    b.array("out", DType::F64, &["H - K + 1", "W - K + 1"]);
    let st = b.start();
    b.in_state(st, |df| {
        let img = df.access("img");
        let ker = df.access("kernel");
        let out = df.access("out");
        crate::helpers::map_stage(
            df,
            "conv",
            &[
                dim("i", sym("H - K + 1")),
                dim("j", sym("W - K + 1")),
                dim("ki", sym("K")),
                dim("kj", sym("K")),
            ],
            Schedule::Parallel,
            &[
                In::new(img, "img", at(&["i + ki", "j + kj"]), "p"),
                In::new(ker, "kernel", at(&["ki", "kj"]), "w"),
            ],
            Out::new(out, "out", at(&["i", "j"])).accumulate(Wcr::Sum),
            ScalarExpr::r("p").mul(ScalarExpr::r("w")),
        );
    });
    NamedWorkload::new(
        "conv2d",
        b.build(),
        Bindings::from_pairs([("H", 10), ("W", 10), ("K", 3)]),
    )
}

/// Residual block: `out = relu(conv(x) + x)` (1-D, same padding interior).
pub fn resnet_block() -> NamedWorkload {
    let mut b = SdfgBuilder::new("resnet_block");
    b.symbol("N");
    b.symbol("K");
    b.array("x", DType::F64, &["N"]);
    b.array("w", DType::F64, &["K"]);
    b.array("out", DType::F64, &["N"]);
    b.transient("conv", DType::F64, &["N"]);
    let st = b.start();
    b.in_state(st, |df| {
        let x = df.access("x");
        let w = df.access("w");
        let conv = df.access("conv");
        crate::helpers::map_stage(
            df,
            "conv1d",
            &[dim("i", sym("N - K + 1")), dim("k", sym("K"))],
            Schedule::Parallel,
            &[
                In::new(x, "x", at(&["i + k"]), "p"),
                In::new(w, "w", at(&["k"]), "wv"),
            ],
            Out::new(conv, "conv", at(&["i"])).accumulate(Wcr::Sum),
            ScalarExpr::r("p").mul(ScalarExpr::r("wv")),
        );
        let out = df.access("out");
        crate::helpers::map_stage(
            df,
            "residual_relu",
            &[dim("i", sym("N"))],
            Schedule::Parallel,
            &[
                In::new(conv, "conv", at(&["i"]), "c"),
                In::new(x, "x", at(&["i"]), "xv"),
            ],
            Out::new(out, "out", at(&["i"])),
            ScalarExpr::r("c")
                .add(ScalarExpr::r("xv"))
                .max(ScalarExpr::f64(0.0)),
        );
    });
    NamedWorkload::new(
        "resnet_block",
        b.build(),
        Bindings::from_pairs([("N", 12), ("K", 3)]),
    )
}

/// go_fast (numba demo): `out = a + trace(tanh(diag(a)))`.
pub fn go_fast() -> NamedWorkload {
    let mut b = SdfgBuilder::new("go_fast");
    b.symbol("N");
    b.array("a", DType::F64, &["N", "N"]);
    b.array("out", DType::F64, &["N", "N"]);
    b.transient("trace", DType::F64, &["1"]);
    let st = b.start();
    b.in_state(st, |df| {
        let a = df.access("a");
        let tr = df.access("trace");
        crate::helpers::map_stage(
            df,
            "tanh_trace",
            &[dim("i", sym("N"))],
            Schedule::Parallel,
            &[In::new(a, "a", at(&["i", "i"]), "d")],
            Out::new(tr, "trace", at(&["0"])).accumulate(Wcr::Sum),
            ScalarExpr::Un(fuzzyflow_ir::UnOp::Tanh, Box::new(ScalarExpr::r("d"))),
        );
        let out = df.access("out");
        crate::helpers::map_stage(
            df,
            "broadcast_add",
            &[dim("i", sym("N")), dim("j", sym("N"))],
            Schedule::Parallel,
            &[
                In::new(a, "a", at(&["i", "j"]), "v"),
                In::new(tr, "trace", at(&["0"]), "t"),
            ],
            Out::new(out, "out", at(&["i", "j"])),
            ScalarExpr::r("v").add(ScalarExpr::r("t")),
        );
    });
    NamedWorkload::new("go_fast", b.build(), Bindings::from_pairs([("N", 10)]))
}

/// All deep-learning kernels.
pub fn all() -> Vec<NamedWorkload> {
    vec![softmax(), mlp(), conv2d(), resnet_block(), go_fast()]
}
