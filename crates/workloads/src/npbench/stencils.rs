//! Stencil kernels (weather/CFD heritage, as in NPBench).

use super::NamedWorkload;
use crate::helpers::{at, dim_range, In, Out};
use fuzzyflow_ir::{sym, Bindings, DType, ScalarExpr, Schedule, SdfgBuilder, SymExpr};

fn nt(nv: i64, tv: i64) -> Bindings {
    Bindings::from_pairs([("N", nv), ("T", tv)])
}

/// One ping-pong sweep `dst[i] = (src[i-1]+src[i]+src[i+1])/3`.
fn sweep_1d(df: &mut fuzzyflow_ir::DataflowBuilder, name: &str, src: &str, dst: &str) {
    let s = df.access(src);
    let d = df.access(dst);
    crate::helpers::map_stage(
        df,
        name,
        &[dim_range("i", SymExpr::Int(1), sym("N") - SymExpr::Int(1))],
        Schedule::Parallel,
        &[
            In::new(s, src, at(&["i-1"]), "l"),
            In::new(s, src, at(&["i"]), "c"),
            In::new(s, src, at(&["i+1"]), "r"),
        ],
        Out::new(d, dst, at(&["i"])),
        ScalarExpr::r("l")
            .add(ScalarExpr::r("c"))
            .add(ScalarExpr::r("r"))
            .mul(ScalarExpr::f64(1.0 / 3.0)),
    );
}

/// jacobi_1d: `T` ping-pong relaxation sweeps over two arrays.
pub fn jacobi_1d() -> NamedWorkload {
    let mut b = SdfgBuilder::new("jacobi_1d");
    b.symbol("N");
    b.symbol("T");
    b.array("A", DType::F64, &["N"]);
    b.array("B", DType::F64, &["N"]);
    let lh = b.for_loop(
        b.start(),
        "t",
        SymExpr::Int(0),
        sym("T") - SymExpr::Int(1),
        1,
        "time",
    );
    b.in_state(lh.body, |df| {
        sweep_1d(df, "ab", "A", "B");
        sweep_1d(df, "ba", "B", "A");
    });
    NamedWorkload::new("jacobi_1d", b.build(), nt(16, 3))
}

/// One 2-D five-point sweep.
fn sweep_2d(df: &mut fuzzyflow_ir::DataflowBuilder, name: &str, src: &str, dst: &str) {
    let s = df.access(src);
    let d = df.access(dst);
    crate::helpers::map_stage(
        df,
        name,
        &[
            dim_range("i", SymExpr::Int(1), sym("N") - SymExpr::Int(1)),
            dim_range("j", SymExpr::Int(1), sym("N") - SymExpr::Int(1)),
        ],
        Schedule::Parallel,
        &[
            In::new(s, src, at(&["i", "j"]), "c"),
            In::new(s, src, at(&["i-1", "j"]), "n"),
            In::new(s, src, at(&["i+1", "j"]), "s"),
            In::new(s, src, at(&["i", "j-1"]), "w"),
            In::new(s, src, at(&["i", "j+1"]), "e"),
        ],
        Out::new(d, dst, at(&["i", "j"])),
        ScalarExpr::r("c")
            .add(ScalarExpr::r("n"))
            .add(ScalarExpr::r("s"))
            .add(ScalarExpr::r("w"))
            .add(ScalarExpr::r("e"))
            .mul(ScalarExpr::f64(0.2)),
    );
}

/// jacobi_2d: ping-pong 5-point relaxation.
pub fn jacobi_2d() -> NamedWorkload {
    let mut b = SdfgBuilder::new("jacobi_2d");
    b.symbol("N");
    b.symbol("T");
    b.array("A", DType::F64, &["N", "N"]);
    b.array("B", DType::F64, &["N", "N"]);
    let lh = b.for_loop(
        b.start(),
        "t",
        SymExpr::Int(0),
        sym("T") - SymExpr::Int(1),
        1,
        "time",
    );
    b.in_state(lh.body, |df| {
        sweep_2d(df, "ab", "A", "B");
        sweep_2d(df, "ba", "B", "A");
    });
    NamedWorkload::new("jacobi_2d", b.build(), nt(10, 2))
}

/// seidel_2d: in-place Gauss-Seidel sweep (sequential map; later
/// iterations observe earlier updates).
pub fn seidel_2d() -> NamedWorkload {
    let mut b = SdfgBuilder::new("seidel_2d");
    b.symbol("N");
    b.symbol("T");
    b.array("A", DType::F64, &["N", "N"]);
    let lh = b.for_loop(
        b.start(),
        "t",
        SymExpr::Int(0),
        sym("T") - SymExpr::Int(1),
        1,
        "time",
    );
    b.in_state(lh.body, |df| {
        let a_in = df.access("A");
        let a_out = df.access("A");
        crate::helpers::map_stage(
            df,
            "seidel",
            &[
                dim_range("i", SymExpr::Int(1), sym("N") - SymExpr::Int(1)),
                dim_range("j", SymExpr::Int(1), sym("N") - SymExpr::Int(1)),
            ],
            Schedule::Sequential,
            &[
                In::new(a_in, "A", at(&["i-1", "j"]), "n"),
                In::new(a_in, "A", at(&["i+1", "j"]), "s"),
                In::new(a_in, "A", at(&["i", "j-1"]), "w"),
                In::new(a_in, "A", at(&["i", "j+1"]), "e"),
                In::new(a_in, "A", at(&["i", "j"]), "c"),
            ],
            Out::new(a_out, "A", at(&["i", "j"])),
            ScalarExpr::r("c")
                .add(ScalarExpr::r("n"))
                .add(ScalarExpr::r("s"))
                .add(ScalarExpr::r("w"))
                .add(ScalarExpr::r("e"))
                .mul(ScalarExpr::f64(0.2)),
        );
    });
    NamedWorkload::new("seidel_2d", b.build(), nt(8, 2))
}

/// heat_3d: ping-pong 7-point stencil in three dimensions.
pub fn heat_3d() -> NamedWorkload {
    let mut b = SdfgBuilder::new("heat_3d");
    b.symbol("N");
    b.symbol("T");
    b.array("A", DType::F64, &["N", "N", "N"]);
    b.array("B", DType::F64, &["N", "N", "N"]);
    let lh = b.for_loop(
        b.start(),
        "t",
        SymExpr::Int(0),
        sym("T") - SymExpr::Int(1),
        1,
        "time",
    );
    fn interior(p: &str) -> (&str, fuzzyflow_ir::SymRange) {
        dim_range(p, SymExpr::Int(1), sym("N") - SymExpr::Int(1))
    }
    let sweep = |df: &mut fuzzyflow_ir::DataflowBuilder, name: &str, src: &str, dst: &str| {
        let s = df.access(src);
        let d = df.access(dst);
        crate::helpers::map_stage(
            df,
            name,
            &[interior("i"), interior("j"), interior("k")],
            Schedule::Parallel,
            &[
                In::new(s, src, at(&["i", "j", "k"]), "c"),
                In::new(s, src, at(&["i-1", "j", "k"]), "x0"),
                In::new(s, src, at(&["i+1", "j", "k"]), "x1"),
                In::new(s, src, at(&["i", "j-1", "k"]), "y0"),
                In::new(s, src, at(&["i", "j+1", "k"]), "y1"),
                In::new(s, src, at(&["i", "j", "k-1"]), "z0"),
                In::new(s, src, at(&["i", "j", "k+1"]), "z1"),
            ],
            Out::new(d, dst, at(&["i", "j", "k"])),
            ScalarExpr::r("c").add(
                ScalarExpr::r("x0")
                    .add(ScalarExpr::r("x1"))
                    .add(ScalarExpr::r("y0"))
                    .add(ScalarExpr::r("y1"))
                    .add(ScalarExpr::r("z0"))
                    .add(ScalarExpr::r("z1"))
                    .sub(ScalarExpr::f64(6.0).mul(ScalarExpr::r("c")))
                    .mul(ScalarExpr::f64(0.125)),
            ),
        );
    };
    b.in_state(lh.body, |df| {
        sweep(df, "ab", "A", "B");
        sweep(df, "ba", "B", "A");
    });
    NamedWorkload::new("heat_3d", b.build(), nt(6, 2))
}

/// fdtd_2d: one electromagnetic time step (ey, ex, hz updates).
pub fn fdtd_2d() -> NamedWorkload {
    let mut b = SdfgBuilder::new("fdtd_2d");
    b.symbol("N");
    b.symbol("T");
    b.array("ex", DType::F64, &["N", "N"]);
    b.array("ey", DType::F64, &["N", "N"]);
    b.array("hz", DType::F64, &["N", "N"]);
    let lh = b.for_loop(
        b.start(),
        "t",
        SymExpr::Int(0),
        sym("T") - SymExpr::Int(1),
        1,
        "time",
    );
    b.in_state(lh.body, |df| {
        let hz0 = df.access("hz");
        // ey[i,j] -= 0.5*(hz[i,j] - hz[i-1,j])
        let ey_in = df.access("ey");
        let ey_out = df.access("ey");
        crate::helpers::map_stage(
            df,
            "update_ey",
            &[
                dim_range("i", SymExpr::Int(1), sym("N")),
                dim_range("j", SymExpr::Int(0), sym("N")),
            ],
            Schedule::Parallel,
            &[
                In::new(ey_in, "ey", at(&["i", "j"]), "e"),
                In::new(hz0, "hz", at(&["i", "j"]), "h"),
                In::new(hz0, "hz", at(&["i-1", "j"]), "hm"),
            ],
            Out::new(ey_out, "ey", at(&["i", "j"])),
            ScalarExpr::r("e")
                .sub(ScalarExpr::f64(0.5).mul(ScalarExpr::r("h").sub(ScalarExpr::r("hm")))),
        );
        // ex[i,j] -= 0.5*(hz[i,j] - hz[i,j-1])
        let ex_in = df.access("ex");
        let ex_out = df.access("ex");
        crate::helpers::map_stage(
            df,
            "update_ex",
            &[
                dim_range("i", SymExpr::Int(0), sym("N")),
                dim_range("j", SymExpr::Int(1), sym("N")),
            ],
            Schedule::Parallel,
            &[
                In::new(ex_in, "ex", at(&["i", "j"]), "e"),
                In::new(hz0, "hz", at(&["i", "j"]), "h"),
                In::new(hz0, "hz", at(&["i", "j-1"]), "hm"),
            ],
            Out::new(ex_out, "ex", at(&["i", "j"])),
            ScalarExpr::r("e")
                .sub(ScalarExpr::f64(0.5).mul(ScalarExpr::r("h").sub(ScalarExpr::r("hm")))),
        );
        // hz[i,j] -= 0.7*(ex[i,j+1]-ex[i,j] + ey[i+1,j]-ey[i,j])
        let hz_out = df.access("hz");
        crate::helpers::map_stage(
            df,
            "update_hz",
            &[
                dim_range("i", SymExpr::Int(0), sym("N") - SymExpr::Int(1)),
                dim_range("j", SymExpr::Int(0), sym("N") - SymExpr::Int(1)),
            ],
            Schedule::Parallel,
            &[
                In::new(hz0, "hz", at(&["i", "j"]), "h"),
                In::new(ex_out, "ex", at(&["i", "j+1"]), "exp"),
                In::new(ex_out, "ex", at(&["i", "j"]), "exc"),
                In::new(ey_out, "ey", at(&["i+1", "j"]), "eyp"),
                In::new(ey_out, "ey", at(&["i", "j"]), "eyc"),
            ],
            Out::new(hz_out, "hz", at(&["i", "j"])),
            ScalarExpr::r("h").sub(
                ScalarExpr::f64(0.7).mul(
                    ScalarExpr::r("exp")
                        .sub(ScalarExpr::r("exc"))
                        .add(ScalarExpr::r("eyp"))
                        .sub(ScalarExpr::r("eyc")),
                ),
            ),
        );
    });
    NamedWorkload::new("fdtd_2d", b.build(), nt(8, 2))
}

/// hdiff: horizontal diffusion (Laplacian-of-Laplacian, single sweep).
pub fn hdiff() -> NamedWorkload {
    let mut b = SdfgBuilder::new("hdiff");
    b.symbol("N");
    b.array("inp", DType::F64, &["N", "N"]);
    b.array("coeff", DType::F64, &["N", "N"]);
    b.array("outp", DType::F64, &["N", "N"]);
    b.transient("lap", DType::F64, &["N", "N"]);
    let st = b.start();
    b.in_state(st, |df| {
        let i_acc = df.access("inp");
        let lap = df.access("lap");
        fn interior(p: &str) -> (&str, fuzzyflow_ir::SymRange) {
            dim_range(p, SymExpr::Int(1), sym("N") - SymExpr::Int(1))
        }
        crate::helpers::map_stage(
            df,
            "laplacian",
            &[interior("i"), interior("j")],
            Schedule::Parallel,
            &[
                In::new(i_acc, "inp", at(&["i", "j"]), "c"),
                In::new(i_acc, "inp", at(&["i-1", "j"]), "n"),
                In::new(i_acc, "inp", at(&["i+1", "j"]), "s"),
                In::new(i_acc, "inp", at(&["i", "j-1"]), "w"),
                In::new(i_acc, "inp", at(&["i", "j+1"]), "e"),
            ],
            Out::new(lap, "lap", at(&["i", "j"])),
            ScalarExpr::f64(4.0)
                .mul(ScalarExpr::r("c"))
                .sub(ScalarExpr::r("n"))
                .sub(ScalarExpr::r("s"))
                .sub(ScalarExpr::r("w"))
                .sub(ScalarExpr::r("e")),
        );
        let coeff = df.access("coeff");
        let outp = df.access("outp");
        fn inner(p: &str) -> (&str, fuzzyflow_ir::SymRange) {
            dim_range(p, SymExpr::Int(2), sym("N") - SymExpr::Int(2))
        }
        crate::helpers::map_stage(
            df,
            "flux",
            &[inner("i"), inner("j")],
            Schedule::Parallel,
            &[
                In::new(i_acc, "inp", at(&["i", "j"]), "c"),
                In::new(lap, "lap", at(&["i", "j"]), "lc"),
                In::new(lap, "lap", at(&["i-1", "j"]), "ln"),
                In::new(lap, "lap", at(&["i+1", "j"]), "ls"),
                In::new(coeff, "coeff", at(&["i", "j"]), "k"),
            ],
            Out::new(outp, "outp", at(&["i", "j"])),
            ScalarExpr::r("c").sub(
                ScalarExpr::r("k").mul(
                    ScalarExpr::f64(2.0)
                        .mul(ScalarExpr::r("lc"))
                        .sub(ScalarExpr::r("ln"))
                        .sub(ScalarExpr::r("ls")),
                ),
            ),
        );
    });
    NamedWorkload::new("hdiff", b.build(), Bindings::from_pairs([("N", 10)]))
}

/// adi (simplified): alternating x- and y-direction implicit sweeps.
pub fn adi() -> NamedWorkload {
    let mut b = SdfgBuilder::new("adi");
    b.symbol("N");
    b.symbol("T");
    b.array("u", DType::F64, &["N", "N"]);
    b.transient("v", DType::F64, &["N", "N"]);
    let lh = b.for_loop(
        b.start(),
        "t",
        SymExpr::Int(0),
        sym("T") - SymExpr::Int(1),
        1,
        "time",
    );
    b.in_state(lh.body, |df| {
        let u = df.access("u");
        let v = df.access("v");
        fn interior(p: &str) -> (&str, fuzzyflow_ir::SymRange) {
            dim_range(p, SymExpr::Int(1), sym("N") - SymExpr::Int(1))
        }
        // Column sweep u -> v.
        crate::helpers::map_stage(
            df,
            "col_sweep",
            &[interior("i"), dim_range("j", SymExpr::Int(0), sym("N"))],
            Schedule::Sequential,
            &[
                In::new(u, "u", at(&["i-1", "j"]), "a"),
                In::new(u, "u", at(&["i", "j"]), "c"),
                In::new(u, "u", at(&["i+1", "j"]), "d"),
            ],
            Out::new(v, "v", at(&["i", "j"])),
            ScalarExpr::r("a")
                .add(ScalarExpr::f64(2.0).mul(ScalarExpr::r("c")))
                .add(ScalarExpr::r("d"))
                .mul(ScalarExpr::f64(0.25)),
        );
        // Row sweep v -> u.
        let u2 = df.access("u");
        crate::helpers::map_stage(
            df,
            "row_sweep",
            &[dim_range("i", SymExpr::Int(0), sym("N")), interior("j")],
            Schedule::Sequential,
            &[
                In::new(v, "v", at(&["i", "j-1"]), "a"),
                In::new(v, "v", at(&["i", "j"]), "c"),
                In::new(v, "v", at(&["i", "j+1"]), "d"),
            ],
            Out::new(u2, "u", at(&["i", "j"])),
            ScalarExpr::r("a")
                .add(ScalarExpr::f64(2.0).mul(ScalarExpr::r("c")))
                .add(ScalarExpr::r("d"))
                .mul(ScalarExpr::f64(0.25)),
        );
    });
    NamedWorkload::new("adi", b.build(), nt(8, 2))
}

/// All stencil kernels.
pub fn all() -> Vec<NamedWorkload> {
    vec![
        jacobi_1d(),
        jacobi_2d(),
        seidel_2d(),
        heat_3d(),
        fdtd_2d(),
        hdiff(),
        adi(),
    ]
}
