//! Workload programs used by the FuzzyFlow evaluation (paper Sec. 6).
//!
//! Every workload is a parametric dataflow program built against the
//! public IR builder, paired with default symbol bindings that keep bench
//! runs laptop-sized while preserving the *shape* of the original
//! applications (loop nests feeding tensor contractions, stencil sweeps,
//! reductions, distributed collectives).

pub mod attention;
pub mod cloudsc;
pub mod helpers;
pub mod matmul_chain;
pub mod mha;
pub mod npbench;

pub use attention::vanilla_attention;
pub use cloudsc::cloudsc_like;
pub use matmul_chain::matmul_chain;
pub use mha::mha_encoder;
pub use npbench::{suite, NamedWorkload};
