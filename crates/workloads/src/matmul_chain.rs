//! The running example of the paper (Fig. 2): a matrix chain
//! multiplication `R = ((A · B) · C) · D` of four `N × N` matrices,
//! written as three map-based GEMM loop nests over transient temporaries
//! `U = A·B` and `V = U·C`.
//!
//! Tiling the *second* multiplication (`V = U·C`) is the transformation
//! under test; the middle GEMM accumulates with WCR, which is exactly what
//! makes the Fig. 2 off-by-one tiling bug observable (overlapped tiles
//! double-accumulate).

use crate::helpers::{at, dim, In, Out};
use fuzzyflow_ir::{sym, DType, ScalarExpr, Schedule, Sdfg, SdfgBuilder, Wcr};

/// Builds the matmul-chain program. Containers:
/// inputs `A, B, C, D` (non-transient, `N×N`), temporaries `U, V`
/// (transient), output `R` (non-transient).
pub fn matmul_chain() -> Sdfg {
    let mut b = SdfgBuilder::new("matmul_chain");
    b.symbol("N");
    for name in ["A", "B", "C", "D", "R"] {
        b.array(name, DType::F64, &["N", "N"]);
    }
    b.transient("U", DType::F64, &["N", "N"]);
    b.transient("V", DType::F64, &["N", "N"]);

    let st = b.start();
    b.in_state(st, |df| {
        let a = df.access("A");
        let bm = df.access("B");
        let c = df.access("C");
        let d = df.access("D");
        let u = df.access("U");
        let v = df.access("V");
        let r = df.access("R");

        let gemm = |df: &mut fuzzyflow_ir::DataflowBuilder,
                    name: &str,
                    lhs: (fuzzyflow_graph::NodeId, &str),
                    rhs: (fuzzyflow_graph::NodeId, &str),
                    out: (fuzzyflow_graph::NodeId, &str)| {
            crate::helpers::map_stage(
                df,
                name,
                &[dim("i", sym("N")), dim("j", sym("N")), dim("k", sym("N"))],
                Schedule::Parallel,
                &[
                    In::new(lhs.0, lhs.1, at(&["i", "k"]), "x"),
                    In::new(rhs.0, rhs.1, at(&["k", "j"]), "y"),
                ],
                Out::new(out.0, out.1, at(&["i", "j"])).accumulate(Wcr::Sum),
                ScalarExpr::r("x").mul(ScalarExpr::r("y")),
            )
        };

        gemm(df, "mm1", (a, "A"), (bm, "B"), (u, "U"));
        gemm(df, "mm2", (u, "U"), (c, "C"), (v, "V"));
        gemm(df, "mm3", (v, "V"), (d, "D"), (r, "R"));
    });
    b.build()
}

/// Default problem size (kept tiny; symbolic sizes generalize it).
pub fn default_bindings() -> fuzzyflow_ir::Bindings {
    fuzzyflow_ir::Bindings::from_pairs([("N", 12)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzyflow_interp::{run, ArrayValue, ExecState};

    #[test]
    fn validates_and_computes_chain() {
        let p = matmul_chain();
        assert!(
            fuzzyflow_ir::validate(&p).is_ok(),
            "{:?}",
            fuzzyflow_ir::validate(&p)
        );
        let n = 3i64;
        let mut st = ExecState::new();
        st.bind("N", n);
        // A = B = C = D = I  =>  R = I.
        let mut eye = vec![0.0; (n * n) as usize];
        for i in 0..n {
            eye[(i * n + i) as usize] = 1.0;
        }
        for m in ["A", "B", "C", "D"] {
            st.set_array(m, ArrayValue::from_f64(vec![n, n], &eye));
        }
        run(&p, &mut st).unwrap();
        assert_eq!(st.array("R").unwrap().to_f64_vec(), eye);
    }

    #[test]
    fn chain_is_associative_sanity() {
        // With A=2I, B=3I, C=5I, D=7I: R = 210·I.
        let p = matmul_chain();
        let n = 2i64;
        let mut st = ExecState::new();
        st.bind("N", n);
        let scaled_eye = |s: f64| {
            let mut m = vec![0.0; (n * n) as usize];
            for i in 0..n {
                m[(i * n + i) as usize] = s;
            }
            m
        };
        for (m, s) in [("A", 2.0), ("B", 3.0), ("C", 5.0), ("D", 7.0)] {
            st.set_array(m, ArrayValue::from_f64(vec![n, n], &scaled_eye(s)));
        }
        run(&p, &mut st).unwrap();
        assert_eq!(st.array("R").unwrap().to_f64_vec(), scaled_eye(210.0));
    }
}
