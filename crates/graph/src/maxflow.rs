//! Edmonds-Karp maximum flow / minimum s-t cut.
//!
//! This is the algorithmic core of FuzzyFlow's input-configuration
//! minimization (paper Sec. 4.2): after the preparation phase rewires the
//! dataflow graph with a virtual source `S` and sink `T` and sets edge
//! capacities to data-movement volumes, the minimum s-t cut identifies the
//! cutout expansion with the smallest input volume. By the max-flow min-cut
//! theorem the cut value equals the maximum flow, which Edmonds-Karp finds
//! in `O(|E|^2 |V|)`.

use crate::digraph::{DiGraph, EdgeId, NodeId};
use std::collections::VecDeque;

/// Edge capacity. Volumes are concretized integers, but `f64` (with
/// `f64::INFINITY` for uncuttable edges) keeps the implementation simple and
/// is exact for volumes below 2^53 elements.
pub type Capacity = f64;

/// Result of a minimum s-t cut computation.
#[derive(Clone, Debug)]
pub struct MinCutResult {
    /// Value of the maximum flow == capacity of the minimum cut.
    pub max_flow: Capacity,
    /// Nodes on the source side of the cut (always contains `s`).
    pub source_side: Vec<NodeId>,
    /// Nodes on the sink side of the cut (always contains `t`).
    pub sink_side: Vec<NodeId>,
    /// Original graph edges crossing from source side to sink side.
    pub cut_edges: Vec<EdgeId>,
}

struct Arc {
    to: usize,
    cap: f64,
    /// Index of the reverse arc in `arcs`.
    rev: usize,
}

/// Computes the maximum flow from `s` to `t` where each edge's capacity is
/// given by `capacity(edge)`. Returns the flow value and the min-cut
/// partition. Panics if any capacity is negative or NaN, or if `s == t`.
pub fn max_flow_min_cut<N, E>(
    g: &DiGraph<N, E>,
    s: NodeId,
    t: NodeId,
    mut capacity: impl FnMut(EdgeId, &E) -> Capacity,
) -> MinCutResult {
    assert!(s != t, "source and sink must differ");
    assert!(g.contains_node(s) && g.contains_node(t));

    let bound = g.upper_node_bound();
    let mut arcs: Vec<Arc> = Vec::with_capacity(g.edge_count() * 2);
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); bound];

    for e in g.edge_ids() {
        let (u, v) = g.endpoints(e);
        let cap = capacity(e, g.edge(e));
        assert!(
            cap >= 0.0 && !cap.is_nan(),
            "capacity of edge {e} must be non-negative, got {cap}"
        );
        let fwd = arcs.len();
        arcs.push(Arc {
            to: v.index(),
            cap,
            rev: fwd + 1,
        });
        arcs.push(Arc {
            to: u.index(),
            cap: 0.0,
            rev: fwd,
        });
        adj[u.index()].push(fwd);
        adj[v.index()].push(fwd + 1);
    }

    let (src, dst) = (s.index(), t.index());
    let mut total = 0.0f64;

    // Repeated BFS for shortest augmenting paths.
    loop {
        let mut parent_arc: Vec<Option<usize>> = vec![None; bound];
        let mut visited = vec![false; bound];
        visited[src] = true;
        let mut queue = VecDeque::new();
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            if u == dst {
                break;
            }
            for &ai in &adj[u] {
                let arc = &arcs[ai];
                if arc.cap > 0.0 && !visited[arc.to] {
                    visited[arc.to] = true;
                    parent_arc[arc.to] = Some(ai);
                    queue.push_back(arc.to);
                }
            }
        }
        if !visited[dst] {
            break;
        }
        // Find bottleneck.
        let mut bottleneck = f64::INFINITY;
        let mut v = dst;
        while v != src {
            let ai = parent_arc[v].expect("path reconstructed");
            bottleneck = bottleneck.min(arcs[ai].cap);
            v = arcs[arcs[ai].rev].to;
        }
        if bottleneck == f64::INFINITY {
            // An all-infinite augmenting path: flow is unbounded; the cut
            // value is infinite and no finite cut separates s from t along
            // this path. Mark and bail out — callers treat this as "cannot
            // reduce".
            total = f64::INFINITY;
            break;
        }
        if bottleneck <= 0.0 {
            break;
        }
        // Apply.
        let mut v = dst;
        while v != src {
            let ai = parent_arc[v].expect("path reconstructed");
            arcs[ai].cap -= bottleneck;
            let rev = arcs[ai].rev;
            arcs[rev].cap += bottleneck;
            v = arcs[rev].to;
        }
        total += bottleneck;
    }

    // The source side is everything reachable in the residual network.
    let mut visited = vec![false; bound];
    visited[src] = true;
    let mut queue = VecDeque::new();
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        for &ai in &adj[u] {
            let arc = &arcs[ai];
            if arc.cap > 0.0 && !visited[arc.to] {
                visited[arc.to] = true;
                queue.push_back(arc.to);
            }
        }
    }

    let source_side: Vec<NodeId> = g.node_ids().filter(|n| visited[n.index()]).collect();
    let sink_side: Vec<NodeId> = g.node_ids().filter(|n| !visited[n.index()]).collect();
    let cut_edges: Vec<EdgeId> = g
        .edge_ids()
        .filter(|&e| {
            let (u, v) = g.endpoints(e);
            visited[u.index()] && !visited[v.index()]
        })
        .collect();

    MinCutResult {
        max_flow: total,
        source_side,
        sink_side,
        cut_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic CLRS example network.
    #[test]
    fn clrs_network() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let s = g.add_node(());
        let v1 = g.add_node(());
        let v2 = g.add_node(());
        let v3 = g.add_node(());
        let v4 = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, v1, 16.0);
        g.add_edge(s, v2, 13.0);
        g.add_edge(v1, v3, 12.0);
        g.add_edge(v2, v1, 4.0);
        g.add_edge(v2, v4, 14.0);
        g.add_edge(v3, v2, 9.0);
        g.add_edge(v3, t, 20.0);
        g.add_edge(v4, v3, 7.0);
        g.add_edge(v4, t, 4.0);
        let r = max_flow_min_cut(&g, s, t, |_, &c| c);
        assert_eq!(r.max_flow, 23.0);
    }

    #[test]
    fn single_edge() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let s = g.add_node(());
        let t = g.add_node(());
        let e = g.add_edge(s, t, 5.0);
        let r = max_flow_min_cut(&g, s, t, |_, &c| c);
        assert_eq!(r.max_flow, 5.0);
        assert_eq!(r.cut_edges, vec![e]);
        assert_eq!(r.source_side, vec![s]);
        assert_eq!(r.sink_side, vec![t]);
    }

    #[test]
    fn disconnected_is_zero_flow() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let s = g.add_node(());
        let t = g.add_node(());
        let r = max_flow_min_cut(&g, s, t, |_, &c| c);
        assert_eq!(r.max_flow, 0.0);
        assert!(r.cut_edges.is_empty());
    }

    #[test]
    fn cut_prefers_cheap_edges() {
        // s -10-> a -1-> t : min cut is the middle edge with capacity 1.
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, a, 10.0);
        let cheap = g.add_edge(a, t, 1.0);
        let r = max_flow_min_cut(&g, s, t, |_, &c| c);
        assert_eq!(r.max_flow, 1.0);
        assert_eq!(r.cut_edges, vec![cheap]);
        assert!(r.source_side.contains(&a));
    }

    #[test]
    fn infinite_capacity_edge_not_cut() {
        // s -inf-> a -3-> t, s -2-> t: cut = {a->t, s->t} = 5.
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let t = g.add_node(());
        let inf = g.add_edge(s, a, f64::INFINITY);
        g.add_edge(a, t, 3.0);
        g.add_edge(s, t, 2.0);
        let r = max_flow_min_cut(&g, s, t, |_, &c| c);
        assert_eq!(r.max_flow, 5.0);
        assert!(!r.cut_edges.contains(&inf));
    }

    #[test]
    fn unbounded_flow_reported_infinite() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let s = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, t, f64::INFINITY);
        let r = max_flow_min_cut(&g, s, t, |_, &c| c);
        assert!(r.max_flow.is_infinite());
    }

    #[test]
    fn parallel_edges_sum() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let s = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, t, 2.0);
        g.add_edge(s, t, 3.0);
        let r = max_flow_min_cut(&g, s, t, |_, &c| c);
        assert_eq!(r.max_flow, 5.0);
        assert_eq!(r.cut_edges.len(), 2);
    }

    #[test]
    fn cut_separates_partition() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let b = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, a, 4.0);
        g.add_edge(s, b, 4.0);
        g.add_edge(a, t, 2.0);
        g.add_edge(b, t, 2.0);
        let r = max_flow_min_cut(&g, s, t, |_, &c| c);
        assert_eq!(r.max_flow, 4.0);
        // Every cut edge crosses from source side to sink side.
        for e in &r.cut_edges {
            let (u, v) = g.endpoints(*e);
            assert!(r.source_side.contains(&u));
            assert!(r.sink_side.contains(&v));
        }
        // Cut capacity equals flow.
        let cut_cap: f64 = r.cut_edges.iter().map(|&e| *g.edge(e)).sum();
        assert_eq!(cut_cap, r.max_flow);
    }

    #[test]
    fn zero_capacity_edges_block() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, a, 0.0);
        g.add_edge(a, t, 7.0);
        let r = max_flow_min_cut(&g, s, t, |_, &c| c);
        assert_eq!(r.max_flow, 0.0);
    }
}
