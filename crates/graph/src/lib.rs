//! Directed multigraph container and the graph algorithms FuzzyFlow needs:
//! breadth-first searches for the side-effect analyses (paper Sec. 3.1/3.2),
//! topological ordering for dataflow execution, and Edmonds-Karp maximum
//! flow / minimum s-t cut for input-configuration minimization (Sec. 4.2).

pub mod digraph;
pub mod maxflow;
pub mod traversal;

pub use digraph::{DiGraph, EdgeId, NodeId};
pub use maxflow::{max_flow_min_cut, Capacity, MinCutResult};
pub use traversal::{
    bfs_order, reachable_from, reverse_reachable_from, topological_sort, CycleError,
};
