//! A directed multigraph with stable node/edge identifiers.
//!
//! Nodes and edges are stored in slot vectors; removal leaves a hole so that
//! identifiers held elsewhere (e.g. a transformation's change set) remain
//! valid for the surviving elements. Parallel edges and self-loops are
//! allowed — dataflow graphs routinely have several memlets between the same
//! pair of nodes.

use std::fmt;

/// Identifier of a node within one [`DiGraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Identifier of an edge within one [`DiGraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[derive(Clone, Debug)]
struct EdgeSlot<E> {
    src: NodeId,
    dst: NodeId,
    weight: E,
}

/// A directed multigraph with node weights `N` and edge weights `E`.
#[derive(Clone, Debug)]
pub struct DiGraph<N, E> {
    nodes: Vec<Option<N>>,
    edges: Vec<Option<EdgeSlot<E>>>,
    out_edges: Vec<Vec<EdgeId>>,
    in_edges: Vec<Vec<EdgeId>>,
}

impl<N, E> Default for DiGraph<N, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N, E> DiGraph<N, E> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DiGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
            out_edges: Vec::new(),
            in_edges: Vec::new(),
        }
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self, weight: N) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Some(weight));
        self.out_edges.push(Vec::new());
        self.in_edges.push(Vec::new());
        id
    }

    /// Adds an edge `src -> dst`, returning its id. Panics if either
    /// endpoint does not exist.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, weight: E) -> EdgeId {
        assert!(self.contains_node(src), "source {src} not in graph");
        assert!(self.contains_node(dst), "destination {dst} not in graph");
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Some(EdgeSlot { src, dst, weight }));
        self.out_edges[src.index()].push(id);
        self.in_edges[dst.index()].push(id);
        id
    }

    /// True if `id` refers to a live node.
    pub fn contains_node(&self, id: NodeId) -> bool {
        self.nodes.get(id.index()).is_some_and(|n| n.is_some())
    }

    /// True if `id` refers to a live edge.
    pub fn contains_edge(&self, id: EdgeId) -> bool {
        self.edges.get(id.index()).is_some_and(|e| e.is_some())
    }

    /// Node weight accessor.
    pub fn node(&self, id: NodeId) -> &N {
        self.nodes[id.index()]
            .as_ref()
            .unwrap_or_else(|| panic!("node {id} was removed"))
    }

    /// Mutable node weight accessor.
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        self.nodes[id.index()]
            .as_mut()
            .unwrap_or_else(|| panic!("node {id} was removed"))
    }

    /// Node weight accessor that does not panic.
    pub fn try_node(&self, id: NodeId) -> Option<&N> {
        self.nodes.get(id.index()).and_then(|n| n.as_ref())
    }

    /// Mutable node weight accessor that does not panic.
    pub fn try_node_mut(&mut self, id: NodeId) -> Option<&mut N> {
        self.nodes.get_mut(id.index()).and_then(|n| n.as_mut())
    }

    /// Edge weight accessor.
    pub fn edge(&self, id: EdgeId) -> &E {
        &self.edge_slot(id).weight
    }

    /// Mutable edge weight accessor.
    pub fn edge_mut(&mut self, id: EdgeId) -> &mut E {
        &mut self.edges[id.index()]
            .as_mut()
            .unwrap_or_else(|| panic!("edge {id} was removed"))
            .weight
    }

    fn edge_slot(&self, id: EdgeId) -> &EdgeSlot<E> {
        self.edges[id.index()]
            .as_ref()
            .unwrap_or_else(|| panic!("edge {id} was removed"))
    }

    /// Endpoints `(src, dst)` of an edge.
    pub fn endpoints(&self, id: EdgeId) -> (NodeId, NodeId) {
        let s = self.edge_slot(id);
        (s.src, s.dst)
    }

    /// Source node of an edge.
    pub fn src(&self, id: EdgeId) -> NodeId {
        self.edge_slot(id).src
    }

    /// Destination node of an edge.
    pub fn dst(&self, id: EdgeId) -> NodeId {
        self.edge_slot(id).dst
    }

    /// Removes a node and all incident edges. Returns the node weight.
    pub fn remove_node(&mut self, id: NodeId) -> Option<N> {
        let weight = self.nodes.get_mut(id.index())?.take()?;
        let incident: Vec<EdgeId> = self.out_edges[id.index()]
            .iter()
            .chain(self.in_edges[id.index()].iter())
            .copied()
            .collect();
        for e in incident {
            self.remove_edge(e);
        }
        self.out_edges[id.index()].clear();
        self.in_edges[id.index()].clear();
        Some(weight)
    }

    /// Removes an edge, returning its weight.
    pub fn remove_edge(&mut self, id: EdgeId) -> Option<E> {
        let slot = self.edges.get_mut(id.index())?.take()?;
        self.out_edges[slot.src.index()].retain(|&e| e != id);
        self.in_edges[slot.dst.index()].retain(|&e| e != id);
        Some(slot.weight)
    }

    /// Redirects an edge to a new destination, keeping its weight and id.
    pub fn redirect_dst(&mut self, id: EdgeId, new_dst: NodeId) {
        assert!(
            self.contains_node(new_dst),
            "destination {new_dst} not in graph"
        );
        let old_dst = self.dst(id);
        self.in_edges[old_dst.index()].retain(|&e| e != id);
        self.edges[id.index()].as_mut().expect("live edge").dst = new_dst;
        self.in_edges[new_dst.index()].push(id);
    }

    /// Redirects an edge to a new source, keeping its weight and id.
    pub fn redirect_src(&mut self, id: EdgeId, new_src: NodeId) {
        assert!(self.contains_node(new_src), "source {new_src} not in graph");
        let old_src = self.src(id);
        self.out_edges[old_src.index()].retain(|&e| e != id);
        self.edges[id.index()].as_mut().expect("live edge").src = new_src;
        self.out_edges[new_src.index()].push(id);
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_some()).count()
    }

    /// Number of live edges.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().filter(|e| e.is_some()).count()
    }

    /// Iterates over live node ids in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|_| NodeId(i as u32)))
    }

    /// Iterates over live edge ids in insertion order.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|_| EdgeId(i as u32)))
    }

    /// Outgoing edges of a node.
    pub fn out_edge_ids(&self, id: NodeId) -> &[EdgeId] {
        &self.out_edges[id.index()]
    }

    /// Incoming edges of a node.
    pub fn in_edge_ids(&self, id: NodeId) -> &[EdgeId] {
        &self.in_edges[id.index()]
    }

    /// Successor nodes (may repeat under parallel edges).
    pub fn successors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_edges[id.index()].iter().map(|&e| self.dst(e))
    }

    /// Predecessor nodes (may repeat under parallel edges).
    pub fn predecessors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_edges[id.index()].iter().map(|&e| self.src(e))
    }

    /// In-degree (number of incoming edges).
    pub fn in_degree(&self, id: NodeId) -> usize {
        self.in_edges[id.index()].len()
    }

    /// Out-degree (number of outgoing edges).
    pub fn out_degree(&self, id: NodeId) -> usize {
        self.out_edges[id.index()].len()
    }

    /// Nodes without incoming edges.
    pub fn source_nodes(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&n| self.in_degree(n) == 0)
            .collect()
    }

    /// Nodes without outgoing edges.
    pub fn sink_nodes(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&n| self.out_degree(n) == 0)
            .collect()
    }

    /// Maps node weights to a new graph with identical topology and ids.
    pub fn map<N2, E2>(
        &self,
        mut node_f: impl FnMut(NodeId, &N) -> N2,
        mut edge_f: impl FnMut(EdgeId, &E) -> E2,
    ) -> DiGraph<N2, E2> {
        DiGraph {
            nodes: self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, n)| n.as_ref().map(|w| node_f(NodeId(i as u32), w)))
                .collect(),
            edges: self
                .edges
                .iter()
                .enumerate()
                .map(|(i, e)| {
                    e.as_ref().map(|s| EdgeSlot {
                        src: s.src,
                        dst: s.dst,
                        weight: edge_f(EdgeId(i as u32), &s.weight),
                    })
                })
                .collect(),
            out_edges: self.out_edges.clone(),
            in_edges: self.in_edges.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (DiGraph<&'static str, u32>, [NodeId; 4]) {
        let mut g = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, 1);
        g.add_edge(a, c, 2);
        g.add_edge(b, d, 3);
        g.add_edge(c, d, 4);
        (g, [a, b, c, d])
    }

    #[test]
    fn add_and_query() {
        let (g, [a, b, _, d]) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(*g.node(a), "a");
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(d), 2);
        assert_eq!(g.successors(a).collect::<Vec<_>>(), vec![b, NodeId(2)]);
    }

    #[test]
    fn parallel_edges_allowed() {
        let mut g: DiGraph<(), u32> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1);
        g.add_edge(a, b, 2);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.out_degree(a), 2);
    }

    #[test]
    fn remove_edge_updates_adjacency() {
        let (mut g, [a, b, _, _]) = diamond();
        let e = g.out_edge_ids(a)[0];
        assert_eq!(g.remove_edge(e), Some(1));
        assert_eq!(g.out_degree(a), 1);
        assert_eq!(g.in_degree(b), 0);
        assert!(!g.contains_edge(e));
    }

    #[test]
    fn remove_node_removes_incident_edges() {
        let (mut g, [_, b, _, d]) = diamond();
        g.remove_node(b);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.in_degree(d), 1);
    }

    #[test]
    fn ids_stable_after_removal() {
        let (mut g, [a, b, c, d]) = diamond();
        g.remove_node(b);
        assert_eq!(*g.node(a), "a");
        assert_eq!(*g.node(c), "c");
        assert_eq!(*g.node(d), "d");
        let e = g.add_node("e");
        assert_eq!(e, NodeId(4));
    }

    #[test]
    fn redirect_dst_moves_edge() {
        let (mut g, [a, b, c, _]) = diamond();
        let e = g.out_edge_ids(a)[0]; // a -> b
        g.redirect_dst(e, c);
        assert_eq!(g.dst(e), c);
        assert_eq!(g.in_degree(b), 0);
        assert_eq!(g.in_degree(c), 2);
    }

    #[test]
    fn redirect_src_moves_edge() {
        let (mut g, [a, _b, c, _]) = diamond();
        let e = g.out_edge_ids(a)[0]; // a -> b
        g.redirect_src(e, c);
        assert_eq!(g.src(e), c);
        assert_eq!(g.out_degree(a), 1);
        assert!(g.out_edge_ids(c).contains(&e));
    }

    #[test]
    fn sources_and_sinks() {
        let (g, [a, _, _, d]) = diamond();
        assert_eq!(g.source_nodes(), vec![a]);
        assert_eq!(g.sink_nodes(), vec![d]);
    }

    #[test]
    fn self_loop() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, a, ());
        assert_eq!(g.in_degree(a), 1);
        assert_eq!(g.out_degree(a), 1);
    }

    #[test]
    fn map_preserves_topology() {
        let (g, [a, _, _, d]) = diamond();
        let g2 = g.map(|_, w| w.len(), |_, e| *e as f64);
        assert_eq!(*g2.node(a), 1);
        assert_eq!(g2.in_degree(d), 2);
        assert_eq!(g2.edge_count(), 4);
    }
}
