//! Graph traversals: BFS orders, reachability and topological sorting.

use crate::digraph::{DiGraph, NodeId};
use std::collections::VecDeque;

/// Error returned by [`topological_sort`] when the graph has a cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleError {
    /// A node that participates in (or is reachable only through) a cycle.
    pub witness: NodeId,
}

impl std::fmt::Display for CycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "graph contains a cycle (witness node {})", self.witness)
    }
}

impl std::error::Error for CycleError {}

/// Breadth-first order over the nodes reachable from `starts`, following
/// edges forward. Start nodes appear first, in the given order; each node
/// appears exactly once. This is the search used by the paper's *program
/// flow analysis* (Sec. 3.1) when looking for later reads of written data.
pub fn bfs_order<N, E>(g: &DiGraph<N, E>, starts: &[NodeId]) -> Vec<NodeId> {
    walk(g, starts, false)
}

/// Set of nodes reachable from `starts` (inclusive) following edges forward.
pub fn reachable_from<N, E>(g: &DiGraph<N, E>, starts: &[NodeId]) -> Vec<NodeId> {
    walk(g, starts, false)
}

/// Set of nodes that can reach `starts` (inclusive): reverse BFS, as used by
/// the input-configuration analysis (paper Sec. 3.2).
pub fn reverse_reachable_from<N, E>(g: &DiGraph<N, E>, starts: &[NodeId]) -> Vec<NodeId> {
    walk(g, starts, true)
}

fn walk<N, E>(g: &DiGraph<N, E>, starts: &[NodeId], reverse: bool) -> Vec<NodeId> {
    let mut seen = vec![false; g.upper_node_bound()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    for &s in starts {
        if g.contains_node(s) && !seen[s.index()] {
            seen[s.index()] = true;
            queue.push_back(s);
        }
    }
    while let Some(n) = queue.pop_front() {
        order.push(n);
        let next: Vec<NodeId> = if reverse {
            g.predecessors(n).collect()
        } else {
            g.successors(n).collect()
        };
        for m in next {
            if !seen[m.index()] {
                seen[m.index()] = true;
                queue.push_back(m);
            }
        }
    }
    order
}

/// Kahn's algorithm. Returns nodes in a topological order, or a
/// [`CycleError`] naming a node on a cycle.
pub fn topological_sort<N, E>(g: &DiGraph<N, E>) -> Result<Vec<NodeId>, CycleError> {
    let bound = g.upper_node_bound();
    let mut in_deg = vec![0usize; bound];
    for n in g.node_ids() {
        in_deg[n.index()] = g.in_degree(n);
    }
    let mut queue: VecDeque<NodeId> = g.node_ids().filter(|n| in_deg[n.index()] == 0).collect();
    let mut order = Vec::with_capacity(g.node_count());
    while let Some(n) = queue.pop_front() {
        order.push(n);
        for m in g.successors(n) {
            in_deg[m.index()] -= 1;
            if in_deg[m.index()] == 0 {
                queue.push_back(m);
            }
        }
    }
    if order.len() != g.node_count() {
        let witness = g
            .node_ids()
            .find(|n| in_deg[n.index()] > 0)
            .expect("cycle implies a node with remaining in-degree");
        return Err(CycleError { witness });
    }
    Ok(order)
}

impl<N, E> DiGraph<N, E> {
    /// Upper bound (exclusive) on node indices, counting removed slots.
    /// Exposed for algorithms that index dense per-node arrays.
    pub fn upper_node_bound(&self) -> usize {
        self.node_ids().map(|n| n.index() + 1).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> (DiGraph<usize, ()>, Vec<NodeId>) {
        let mut g = DiGraph::new();
        let ids: Vec<NodeId> = (0..n).map(|i| g.add_node(i)).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], ());
        }
        (g, ids)
    }

    #[test]
    fn bfs_visits_each_once() {
        let (mut g, ids) = chain(4);
        // extra edge creating a diamond
        g.add_edge(ids[0], ids[2], ());
        let order = bfs_order(&g, &[ids[0]]);
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], ids[0]);
    }

    #[test]
    fn bfs_multiple_starts() {
        let (g, ids) = chain(4);
        let order = bfs_order(&g, &[ids[2], ids[0]]);
        assert_eq!(order[0], ids[2]);
        assert_eq!(order[1], ids[0]);
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn reverse_reachability() {
        let (g, ids) = chain(4);
        let r = reverse_reachable_from(&g, &[ids[2]]);
        assert_eq!(r.len(), 3); // 2, 1, 0
        assert!(r.contains(&ids[0]));
        assert!(!r.contains(&ids[3]));
    }

    #[test]
    fn topo_sort_chain() {
        let (g, ids) = chain(5);
        let order = topological_sort(&g).unwrap();
        assert_eq!(order, ids);
    }

    #[test]
    fn topo_sort_detects_cycle() {
        let (mut g, ids) = chain(3);
        g.add_edge(ids[2], ids[0], ());
        assert!(topological_sort(&g).is_err());
    }

    #[test]
    fn topo_sort_respects_edges() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(c, b, ());
        g.add_edge(b, a, ());
        let order = topological_sort(&g).unwrap();
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(c) < pos(b));
        assert!(pos(b) < pos(a));
    }

    #[test]
    fn traversal_skips_removed_nodes() {
        let (mut g, ids) = chain(4);
        g.remove_node(ids[1]);
        let order = bfs_order(&g, &[ids[0]]);
        assert_eq!(order, vec![ids[0]]);
        let topo = topological_sort(&g).unwrap();
        assert_eq!(topo.len(), 3);
    }

    #[test]
    fn empty_graph() {
        let g: DiGraph<(), ()> = DiGraph::new();
        assert!(topological_sort(&g).unwrap().is_empty());
        assert!(bfs_order(&g, &[]).is_empty());
    }
}
