//! Property-based tests for graph algorithms.

use fuzzyflow_graph::{max_flow_min_cut, topological_sort, DiGraph, NodeId};
use proptest::prelude::*;

/// Builds a random DAG with `n` nodes: edges only go from lower to higher
/// index, so the graph is acyclic by construction.
fn arb_dag() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..12).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..30)
            .prop_map(move |pairs| pairs.into_iter().filter(|(a, b)| a < b).collect::<Vec<_>>());
        (Just(n), edges)
    })
}

/// Random flow network: random edges with small positive capacities.
fn arb_network() -> impl Strategy<Value = (usize, Vec<(usize, usize, u8)>)> {
    (2usize..10).prop_flat_map(|n| {
        let edges =
            proptest::collection::vec((0..n, 0..n, 1u8..16), 1..40).prop_map(move |pairs| {
                pairs
                    .into_iter()
                    .filter(|(a, b, _)| a != b)
                    .collect::<Vec<_>>()
            });
        (Just(n), edges)
    })
}

proptest! {
    /// Topological sort of a DAG orders every edge source before its target.
    #[test]
    fn topo_order_respects_edges((n, edges) in arb_dag()) {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let ids: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
        for &(a, b) in &edges {
            g.add_edge(ids[a], ids[b], ());
        }
        let order = topological_sort(&g).unwrap();
        prop_assert_eq!(order.len(), n);
        let pos: Vec<usize> = {
            let mut p = vec![0; n];
            for (i, node) in order.iter().enumerate() {
                p[node.index()] = i;
            }
            p
        };
        for &(a, b) in &edges {
            prop_assert!(pos[a] < pos[b]);
        }
    }

    /// Max-flow equals the capacity of the returned cut, and the cut
    /// separates s from t (no residual path crosses back).
    #[test]
    fn maxflow_equals_cut_capacity((n, edges) in arb_network()) {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let ids: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
        for &(a, b, c) in &edges {
            g.add_edge(ids[a], ids[b], c as f64);
        }
        let s = ids[0];
        let t = ids[n - 1];
        let r = max_flow_min_cut(&g, s, t, |_, &c| c);
        // Cut capacity == flow value.
        let cut_cap: f64 = r.cut_edges.iter().map(|&e| *g.edge(e)).sum();
        prop_assert!((cut_cap - r.max_flow).abs() < 1e-9,
            "cut {} != flow {}", cut_cap, r.max_flow);
        // Partition covers all nodes exactly once.
        prop_assert_eq!(r.source_side.len() + r.sink_side.len(), n);
        prop_assert!(r.source_side.contains(&s));
        prop_assert!(r.sink_side.contains(&t));
        // Removing cut edges must disconnect s from t.
        let mut g2 = g.clone();
        for e in &r.cut_edges {
            g2.remove_edge(*e);
        }
        let reach = fuzzyflow_graph::reachable_from(&g2, &[s]);
        prop_assert!(!reach.contains(&t), "cut does not separate s from t");
    }

    /// Flow value is invariant under edge insertion order.
    #[test]
    fn maxflow_order_invariant((n, mut edges) in arb_network()) {
        let build = |edges: &[(usize, usize, u8)]| {
            let mut g: DiGraph<(), f64> = DiGraph::new();
            let ids: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
            for &(a, b, c) in edges {
                g.add_edge(ids[a], ids[b], c as f64);
            }
            max_flow_min_cut(&g, ids[0], ids[n - 1], |_, &c| c).max_flow
        };
        let f1 = build(&edges);
        edges.reverse();
        let f2 = build(&edges);
        prop_assert_eq!(f1, f2);
    }
}
