//! The top-level program container: a state machine over dataflow states.

use crate::data::DataDesc;
use crate::dataflow::Dataflow;
use crate::dtype::DType;
use crate::node::DfNode;
pub use crate::tasklet::CmpOp;
use fuzzyflow_graph::{DiGraph, NodeId};
use fuzzyflow_sym::{Bindings, SymError, SymExpr};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a state in the state machine (a node of `Sdfg::states`).
pub type StateId = NodeId;

/// One state: a label plus an acyclic dataflow graph.
#[derive(Clone, Debug, Default)]
pub struct State {
    pub label: String,
    pub df: Dataflow,
}

impl State {
    /// Creates an empty state with the given label.
    pub fn new(label: impl Into<String>) -> Self {
        State {
            label: label.into(),
            df: Dataflow::new(),
        }
    }
}

/// Boolean condition over integer symbols, used on inter-state edges.
#[derive(Clone, Debug, PartialEq)]
pub enum CondExpr {
    /// Always true (unconditional edge).
    True,
    Cmp(CmpOp, SymExpr, SymExpr),
    Not(Box<CondExpr>),
    And(Box<CondExpr>, Box<CondExpr>),
    Or(Box<CondExpr>, Box<CondExpr>),
}

impl CondExpr {
    /// `a < b` and friends.
    pub fn cmp(op: CmpOp, a: SymExpr, b: SymExpr) -> Self {
        CondExpr::Cmp(op, a, b)
    }

    /// Logical negation.
    pub fn negate(self) -> Self {
        match self {
            // Keep comparisons primitive so loop detection can match them.
            CondExpr::Cmp(CmpOp::Lt, a, b) => CondExpr::Cmp(CmpOp::Ge, a, b),
            CondExpr::Cmp(CmpOp::Le, a, b) => CondExpr::Cmp(CmpOp::Gt, a, b),
            CondExpr::Cmp(CmpOp::Gt, a, b) => CondExpr::Cmp(CmpOp::Le, a, b),
            CondExpr::Cmp(CmpOp::Ge, a, b) => CondExpr::Cmp(CmpOp::Lt, a, b),
            CondExpr::Cmp(CmpOp::Eq, a, b) => CondExpr::Cmp(CmpOp::Ne, a, b),
            CondExpr::Cmp(CmpOp::Ne, a, b) => CondExpr::Cmp(CmpOp::Eq, a, b),
            other => CondExpr::Not(Box::new(other)),
        }
    }

    /// Evaluates under concrete symbol bindings.
    pub fn eval(&self, b: &Bindings) -> Result<bool, SymError> {
        Ok(match self {
            CondExpr::True => true,
            CondExpr::Cmp(op, x, y) => {
                let (xv, yv) = (x.eval(b)?, y.eval(b)?);
                match op {
                    CmpOp::Lt => xv < yv,
                    CmpOp::Le => xv <= yv,
                    CmpOp::Gt => xv > yv,
                    CmpOp::Ge => xv >= yv,
                    CmpOp::Eq => xv == yv,
                    CmpOp::Ne => xv != yv,
                }
            }
            CondExpr::Not(c) => !c.eval(b)?,
            CondExpr::And(l, r) => l.eval(b)? && r.eval(b)?,
            CondExpr::Or(l, r) => l.eval(b)? || r.eval(b)?,
        })
    }

    /// Free symbols referenced by the condition.
    pub fn free_symbols(&self) -> Vec<String> {
        let mut v = Vec::new();
        self.collect_symbols(&mut v);
        v
    }

    fn collect_symbols(&self, out: &mut Vec<String>) {
        match self {
            CondExpr::True => {}
            CondExpr::Cmp(_, a, b) => {
                a.collect_symbols(out);
                b.collect_symbols(out);
            }
            CondExpr::Not(c) => c.collect_symbols(out),
            CondExpr::And(l, r) | CondExpr::Or(l, r) => {
                l.collect_symbols(out);
                r.collect_symbols(out);
            }
        }
    }
}

impl fmt::Display for CondExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CondExpr::True => write!(f, "true"),
            CondExpr::Cmp(op, a, b) => {
                let s = match op {
                    CmpOp::Lt => "<",
                    CmpOp::Le => "<=",
                    CmpOp::Gt => ">",
                    CmpOp::Ge => ">=",
                    CmpOp::Eq => "==",
                    CmpOp::Ne => "!=",
                };
                write!(f, "{a} {s} {b}")
            }
            CondExpr::Not(c) => write!(f, "!({c})"),
            CondExpr::And(l, r) => write!(f, "({l}) && ({r})"),
            CondExpr::Or(l, r) => write!(f, "({l}) || ({r})"),
        }
    }
}

/// An inter-state edge: taken when `condition` holds; applies symbol
/// `assignments` on traversal. Together these express arbitrary structured
/// and unstructured control flow (paper Sec. 2.3).
#[derive(Clone, Debug, PartialEq)]
pub struct InterstateEdge {
    pub condition: CondExpr,
    pub assignments: Vec<(String, SymExpr)>,
}

impl InterstateEdge {
    /// Unconditional edge without assignments.
    pub fn always() -> Self {
        InterstateEdge {
            condition: CondExpr::True,
            assignments: Vec::new(),
        }
    }

    /// Conditional edge.
    pub fn when(condition: CondExpr) -> Self {
        InterstateEdge {
            condition,
            assignments: Vec::new(),
        }
    }

    /// Adds a symbol assignment applied when the edge is taken.
    pub fn assign(mut self, sym: impl Into<String>, value: SymExpr) -> Self {
        self.assignments.push((sym.into(), value));
        self
    }
}

/// Reference to a dataflow node anywhere in an SDFG: the owning state plus
/// the path of node ids descending through nested map bodies. The last path
/// element is the referenced node itself.
///
/// Change sets ([`crate::sdfg`]-level ΔT in the paper, Sec. 3 step 2) are
/// sets of `NodeRef`s.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeRef {
    pub state: StateId,
    pub path: Vec<NodeId>,
}

impl NodeRef {
    /// A node directly inside a state (not nested in any map).
    pub fn top(state: StateId, node: NodeId) -> Self {
        NodeRef {
            state,
            path: vec![node],
        }
    }

    /// The node id at the top level of the state this reference descends
    /// through (for nested nodes: the enclosing outermost map).
    pub fn top_node(&self) -> NodeId {
        self.path[0]
    }

    /// The referenced node id (last path element).
    pub fn leaf(&self) -> NodeId {
        *self.path.last().expect("NodeRef path is never empty")
    }

    /// True if the referenced node is nested inside a map.
    pub fn is_nested(&self) -> bool {
        self.path.len() > 1
    }
}

impl fmt::Display for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:", self.state)?;
        for (i, n) in self.path.iter().enumerate() {
            if i > 0 {
                write!(f, "/")?;
            }
            write!(f, "{n}")?;
        }
        Ok(())
    }
}

/// A stateful dataflow program.
#[derive(Clone, Debug)]
pub struct Sdfg {
    /// Program name.
    pub name: String,
    /// Scalar program parameters (symbols) and their types. Symbol values
    /// are part of a test case's input configuration.
    pub symbols: BTreeMap<String, DType>,
    /// Data container descriptors.
    pub arrays: BTreeMap<String, DataDesc>,
    /// The state machine.
    pub states: DiGraph<State, InterstateEdge>,
    /// Entry state.
    pub start: StateId,
}

impl Sdfg {
    /// Creates an SDFG with a single empty start state.
    pub fn new(name: impl Into<String>) -> Self {
        let mut states = DiGraph::new();
        let start = states.add_node(State::new("start"));
        Sdfg {
            name: name.into(),
            symbols: BTreeMap::new(),
            arrays: BTreeMap::new(),
            states,
            start,
        }
    }

    /// Adds a state, returning its id.
    pub fn add_state(&mut self, label: impl Into<String>) -> StateId {
        self.states.add_node(State::new(label))
    }

    /// Adds an inter-state edge.
    pub fn add_interstate_edge(
        &mut self,
        from: StateId,
        to: StateId,
        edge: InterstateEdge,
    ) -> fuzzyflow_graph::EdgeId {
        self.states.add_edge(from, to, edge)
    }

    /// State accessor.
    pub fn state(&self, id: StateId) -> &State {
        self.states.node(id)
    }

    /// Mutable state accessor.
    pub fn state_mut(&mut self, id: StateId) -> &mut State {
        self.states.node_mut(id)
    }

    /// Container descriptor accessor.
    pub fn array(&self, name: &str) -> Option<&DataDesc> {
        self.arrays.get(name)
    }

    /// Resolves a [`NodeRef`] to the referenced node.
    pub fn resolve(&self, r: &NodeRef) -> Option<&DfNode> {
        let state = self.states.try_node(r.state)?;
        let mut df = &state.df;
        for (i, &nid) in r.path.iter().enumerate() {
            if !df.graph.contains_node(nid) {
                return None;
            }
            let node = df.graph.node(nid);
            if i + 1 == r.path.len() {
                return Some(node);
            }
            df = &node.as_map()?.body;
        }
        None
    }

    /// Non-transient containers: candidates for program inputs/outputs
    /// (paper Sec. 3.1 *external data analysis*).
    pub fn external_containers(&self) -> Vec<String> {
        self.arrays
            .iter()
            .filter(|(_, d)| !d.transient)
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// All symbols assigned by some inter-state edge (loop variables etc.).
    pub fn assigned_symbols(&self) -> Vec<String> {
        let mut out = Vec::new();
        for e in self.states.edge_ids() {
            for (s, _) in &self.states.edge(e).assignments {
                if !out.contains(s) {
                    out.push(s.clone());
                }
            }
        }
        out
    }

    /// Free symbols of the program: symbols referenced anywhere (shapes,
    /// memlets, map ranges, conditions) minus those assigned internally.
    /// These must be bound by the input configuration.
    pub fn free_symbols(&self) -> Vec<String> {
        let mut used = Vec::new();
        for desc in self.arrays.values() {
            for s in desc.shape_symbols() {
                if !used.contains(&s) {
                    used.push(s);
                }
            }
        }
        for st in self.states.node_ids() {
            collect_df_symbols(&self.states.node(st).df, &mut used, &mut Vec::new());
        }
        for e in self.states.edge_ids() {
            let edge = self.states.edge(e);
            for s in edge.condition.free_symbols() {
                if !used.contains(&s) {
                    used.push(s);
                }
            }
            for (_, v) in &edge.assignments {
                for s in v.free_symbols() {
                    if !used.contains(&s) {
                        used.push(s);
                    }
                }
            }
        }
        let assigned = self.assigned_symbols();
        used.retain(|s| !assigned.contains(s));
        used
    }
}

fn collect_df_symbols(df: &Dataflow, out: &mut Vec<String>, scope_params: &mut Vec<String>) {
    for e in df.graph.edge_ids() {
        for s in df.graph.edge(e).subset.free_symbols() {
            if !out.contains(&s) && !scope_params.contains(&s) {
                out.push(s);
            }
        }
    }
    for n in df.graph.node_ids() {
        if let DfNode::Map(m) = df.graph.node(n) {
            for r in &m.ranges {
                for s in r.free_symbols() {
                    if !out.contains(&s) && !scope_params.contains(&s) {
                        out.push(s);
                    }
                }
            }
            let added = m.params.len();
            scope_params.extend(m.params.iter().cloned());
            collect_df_symbols(&m.body, out, scope_params);
            scope_params.truncate(scope_params.len() - added);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzyflow_sym::sym;

    #[test]
    fn new_sdfg_has_start_state() {
        let s = Sdfg::new("p");
        assert_eq!(s.state(s.start).label, "start");
    }

    #[test]
    fn cond_eval() {
        let c = CondExpr::cmp(CmpOp::Lt, sym("i"), sym("N"));
        let mut b = Bindings::new();
        b.set("i", 3).set("N", 5);
        assert!(c.eval(&b).unwrap());
        b.set("i", 5);
        assert!(!c.eval(&b).unwrap());
    }

    #[test]
    fn negate_keeps_primitive_comparisons() {
        let c = CondExpr::cmp(CmpOp::Le, sym("i"), sym("N")).negate();
        assert_eq!(c, CondExpr::cmp(CmpOp::Gt, sym("i"), sym("N")));
    }

    #[test]
    fn free_symbols_exclude_assigned() {
        let mut s = Sdfg::new("p");
        s.symbols.insert("N".into(), DType::I64);
        s.arrays
            .insert("A".into(), DataDesc::array(DType::F64, vec![sym("N")]));
        let st2 = s.add_state("loop");
        s.add_interstate_edge(
            s.start,
            st2,
            InterstateEdge::always().assign("i", SymExpr::Int(0)),
        );
        let free = s.free_symbols();
        assert!(free.contains(&"N".to_string()));
        assert!(!free.contains(&"i".to_string()));
    }

    #[test]
    fn node_ref_resolution() {
        let mut s = Sdfg::new("p");
        let st = s.start;
        let a = s.state_mut(st).df.add_access("A");
        let r = NodeRef::top(st, a);
        assert!(matches!(s.resolve(&r), Some(DfNode::Access(name)) if name == "A"));
        assert_eq!(r.leaf(), a);
        assert!(!r.is_nested());
    }

    #[test]
    fn external_containers_filters_transients() {
        let mut s = Sdfg::new("p");
        s.arrays
            .insert("A".into(), DataDesc::array(DType::F64, vec![sym("N")]));
        s.arrays.insert(
            "tmp".into(),
            DataDesc::array(DType::F64, vec![sym("N")]).transient(),
        );
        assert_eq!(s.external_containers(), vec!["A".to_string()]);
    }
}
