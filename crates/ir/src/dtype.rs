//! Element data types and scalar values.

use std::fmt;

/// Element type of a data container or symbol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DType {
    F64,
    F32,
    I64,
    I32,
    Bool,
}

impl DType {
    /// Size of one element in bytes.
    pub fn size_bytes(self) -> usize {
        match self {
            DType::F64 | DType::I64 => 8,
            DType::F32 | DType::I32 => 4,
            DType::Bool => 1,
        }
    }

    /// True for floating-point types.
    pub fn is_float(self) -> bool {
        matches!(self, DType::F64 | DType::F32)
    }

    /// True for integer types (excluding Bool).
    pub fn is_int(self) -> bool {
        matches!(self, DType::I64 | DType::I32)
    }

    /// The zero value of this type.
    pub fn zero(self) -> Scalar {
        match self {
            DType::F64 => Scalar::F64(0.0),
            DType::F32 => Scalar::F32(0.0),
            DType::I64 => Scalar::I64(0),
            DType::I32 => Scalar::I32(0),
            DType::Bool => Scalar::Bool(false),
        }
    }

    /// The multiplicative identity of this type.
    pub fn one(self) -> Scalar {
        match self {
            DType::F64 => Scalar::F64(1.0),
            DType::F32 => Scalar::F32(1.0),
            DType::I64 => Scalar::I64(1),
            DType::I32 => Scalar::I32(1),
            DType::Bool => Scalar::Bool(true),
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::F64 => "f64",
            DType::F32 => "f32",
            DType::I64 => "i64",
            DType::I32 => "i32",
            DType::Bool => "bool",
        };
        write!(f, "{s}")
    }
}

/// A typed scalar value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Scalar {
    F64(f64),
    F32(f32),
    I64(i64),
    I32(i32),
    Bool(bool),
}

impl Scalar {
    /// The type of this value.
    pub fn dtype(self) -> DType {
        match self {
            Scalar::F64(_) => DType::F64,
            Scalar::F32(_) => DType::F32,
            Scalar::I64(_) => DType::I64,
            Scalar::I32(_) => DType::I32,
            Scalar::Bool(_) => DType::Bool,
        }
    }

    /// Value as `f64` (lossy for large i64).
    pub fn as_f64(self) -> f64 {
        match self {
            Scalar::F64(v) => v,
            Scalar::F32(v) => v as f64,
            Scalar::I64(v) => v as f64,
            Scalar::I32(v) => v as f64,
            Scalar::Bool(v) => v as i64 as f64,
        }
    }

    /// Value as `i64` (floats truncate toward zero).
    pub fn as_i64(self) -> i64 {
        match self {
            Scalar::F64(v) => v as i64,
            Scalar::F32(v) => v as i64,
            Scalar::I64(v) => v,
            Scalar::I32(v) => v as i64,
            Scalar::Bool(v) => v as i64,
        }
    }

    /// Value as boolean (numbers: non-zero is true).
    pub fn as_bool(self) -> bool {
        match self {
            Scalar::F64(v) => v != 0.0,
            Scalar::F32(v) => v != 0.0,
            Scalar::I64(v) => v != 0,
            Scalar::I32(v) => v != 0,
            Scalar::Bool(v) => v,
        }
    }

    /// Casts the value to another type, following standard numeric
    /// conversion rules.
    pub fn cast(self, to: DType) -> Scalar {
        match to {
            DType::F64 => Scalar::F64(self.as_f64()),
            DType::F32 => Scalar::F32(self.as_f64() as f32),
            DType::I64 => Scalar::I64(self.as_i64()),
            DType::I32 => Scalar::I32(self.as_i64() as i32),
            DType::Bool => Scalar::Bool(self.as_bool()),
        }
    }

    /// Bit-exact equality (distinguishes NaN payloads and -0.0 from 0.0) —
    /// the default comparison used by differential testing when no
    /// tolerance threshold is configured (paper Sec. 5.1).
    ///
    /// One deliberate exception: two NaNs compare equal when their bits
    /// agree *modulo the sign bit*. IEEE 754 (§6.3) leaves the sign of a
    /// NaN result unspecified, and compilers freely commute float
    /// operations — which NaN operand an `addsd` propagates (and hence
    /// the sign it carries) can differ between engine tiers or even
    /// between builds of the same source. Payloads still distinguish, so
    /// an optimization that swaps a NaN for a different NaN is flagged.
    pub fn bits_eq(self, other: Scalar) -> bool {
        match (self, other) {
            (Scalar::F64(a), Scalar::F64(b)) => {
                if a.is_nan() && b.is_nan() {
                    a.to_bits() | (1 << 63) == b.to_bits() | (1 << 63)
                } else {
                    a.to_bits() == b.to_bits()
                }
            }
            (Scalar::F32(a), Scalar::F32(b)) => {
                if a.is_nan() && b.is_nan() {
                    a.to_bits() | (1 << 31) == b.to_bits() | (1 << 31)
                } else {
                    a.to_bits() == b.to_bits()
                }
            }
            (Scalar::I64(a), Scalar::I64(b)) => a == b,
            (Scalar::I32(a), Scalar::I32(b)) => a == b,
            (Scalar::Bool(a), Scalar::Bool(b)) => a == b,
            _ => false,
        }
    }

    /// Approximate equality with an absolute/relative threshold `tol`
    /// (used as `|a-b| <= tol * max(1, |a|, |b|)`). NaNs compare equal to
    /// NaNs so that an optimization that preserves a NaN is not flagged.
    pub fn approx_eq(self, other: Scalar, tol: f64) -> bool {
        if self.dtype() != other.dtype() {
            return false;
        }
        if !self.dtype().is_float() {
            return self.bits_eq(other);
        }
        let (a, b) = (self.as_f64(), other.as_f64());
        if a.is_nan() && b.is_nan() {
            return true;
        }
        if a.is_infinite() || b.is_infinite() {
            return a == b;
        }
        (a - b).abs() <= tol * 1.0f64.max(a.abs()).max(b.abs())
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::F64(v) => write!(f, "{v}"),
            Scalar::F32(v) => write!(f, "{v}"),
            Scalar::I64(v) => write!(f, "{v}"),
            Scalar::I32(v) => write!(f, "{v}"),
            Scalar::Bool(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(DType::F64.size_bytes(), 8);
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::Bool.size_bytes(), 1);
    }

    #[test]
    fn casts() {
        assert_eq!(Scalar::F64(3.7).cast(DType::I64), Scalar::I64(3));
        assert_eq!(Scalar::I32(-2).cast(DType::F64), Scalar::F64(-2.0));
        assert_eq!(Scalar::I64(0).cast(DType::Bool), Scalar::Bool(false));
    }

    #[test]
    fn bits_eq_distinguishes_nan_and_zero_signs() {
        assert!(Scalar::F64(f64::NAN).bits_eq(Scalar::F64(f64::NAN)));
        assert!(!Scalar::F64(0.0).bits_eq(Scalar::F64(-0.0)));
        assert!(Scalar::F64(1.5).bits_eq(Scalar::F64(1.5)));
        // NaN *sign* is unspecified by IEEE 754 and unstable across
        // builds: it never distinguishes. NaN payloads still do.
        assert!(Scalar::F64(f64::NAN).bits_eq(Scalar::F64(-f64::NAN)));
        assert!(Scalar::F32(f32::NAN).bits_eq(Scalar::F32(-f32::NAN)));
        let payload = f64::from_bits(0x7ff8_0000_0000_beef);
        assert!(!Scalar::F64(f64::NAN).bits_eq(Scalar::F64(payload)));
        assert!(payload.is_nan());
    }

    #[test]
    fn approx_eq_with_tolerance() {
        assert!(Scalar::F64(1.0).approx_eq(Scalar::F64(1.0 + 1e-9), 1e-5));
        assert!(!Scalar::F64(1.0).approx_eq(Scalar::F64(1.1), 1e-5));
        // Relative for large magnitudes.
        assert!(Scalar::F64(1e12).approx_eq(Scalar::F64(1e12 + 1.0), 1e-5));
        // NaN == NaN under tolerance comparison.
        assert!(Scalar::F64(f64::NAN).approx_eq(Scalar::F64(f64::NAN), 1e-5));
        // Integers always bit-compare.
        assert!(!Scalar::I64(4).approx_eq(Scalar::I64(5), 1e5));
    }

    #[test]
    fn zero_one() {
        assert_eq!(DType::F32.zero(), Scalar::F32(0.0));
        assert_eq!(DType::I64.one(), Scalar::I64(1));
    }
}
