//! Ergonomic builders for SDFGs and dataflow graphs.
//!
//! The builders keep workload definitions (crate `fuzzyflow-workloads`)
//! compact: containers declared with textual symbolic shapes, map scopes
//! built with closures, and summary memlets to/from map nodes derived
//! automatically from the body's access sets.

use crate::analysis::node_access_sets;
use crate::data::DataDesc;
use crate::dataflow::Dataflow;
use crate::dtype::DType;
use crate::loops::LoopHandle;
use crate::memlet::Memlet;
use crate::node::{DfNode, LibraryNode, LibraryOp, MapScope, Schedule};
use crate::sdfg::{CmpOp, CondExpr, InterstateEdge, Sdfg, StateId};
use crate::tasklet::Tasklet;
use fuzzyflow_graph::NodeId;
use fuzzyflow_sym::{sym, SymExpr, SymRange};

/// Builder for a whole SDFG.
pub struct SdfgBuilder {
    sdfg: Sdfg,
}

impl SdfgBuilder {
    /// Starts a program with one (empty) start state.
    pub fn new(name: impl Into<String>) -> Self {
        SdfgBuilder {
            sdfg: Sdfg::new(name),
        }
    }

    /// Declares an integer program parameter.
    pub fn symbol(&mut self, name: &str) -> &mut Self {
        self.sdfg.symbols.insert(name.to_string(), DType::I64);
        self
    }

    /// Declares a non-transient array with a textual symbolic shape, e.g.
    /// `b.array("A", DType::F64, &["N", "N"])`.
    pub fn array(&mut self, name: &str, dtype: DType, shape: &[&str]) -> &mut Self {
        let shape = shape.iter().map(|s| sym(s)).collect();
        self.sdfg
            .arrays
            .insert(name.to_string(), DataDesc::array(dtype, shape));
        self
    }

    /// Declares a transient (program-managed) array.
    pub fn transient(&mut self, name: &str, dtype: DType, shape: &[&str]) -> &mut Self {
        let shape = shape.iter().map(|s| sym(s)).collect();
        self.sdfg
            .arrays
            .insert(name.to_string(), DataDesc::array(dtype, shape).transient());
        self
    }

    /// Declares a non-transient scalar container.
    pub fn scalar(&mut self, name: &str, dtype: DType) -> &mut Self {
        self.sdfg
            .arrays
            .insert(name.to_string(), DataDesc::scalar(dtype));
        self
    }

    /// Declares a transient scalar container.
    pub fn transient_scalar(&mut self, name: &str, dtype: DType) -> &mut Self {
        self.sdfg
            .arrays
            .insert(name.to_string(), DataDesc::scalar(dtype).transient());
        self
    }

    /// Declares an array with an explicit descriptor.
    pub fn array_desc(&mut self, name: &str, desc: DataDesc) -> &mut Self {
        self.sdfg.arrays.insert(name.to_string(), desc);
        self
    }

    /// The entry state.
    pub fn start(&self) -> StateId {
        self.sdfg.start
    }

    /// Adds a detached state.
    pub fn add_state(&mut self, label: &str) -> StateId {
        self.sdfg.add_state(label)
    }

    /// Adds a state connected after `prev` with an unconditional edge.
    pub fn add_state_after(&mut self, prev: StateId, label: &str) -> StateId {
        let st = self.sdfg.add_state(label);
        self.sdfg
            .add_interstate_edge(prev, st, InterstateEdge::always());
        st
    }

    /// Adds an inter-state edge.
    pub fn edge(&mut self, from: StateId, to: StateId, edge: InterstateEdge) -> &mut Self {
        self.sdfg.add_interstate_edge(from, to, edge);
        self
    }

    /// Builds dataflow inside a state via a closure.
    pub fn in_state(&mut self, st: StateId, f: impl FnOnce(&mut DataflowBuilder)) -> &mut Self {
        let mut b = DataflowBuilder {
            df: &mut self.sdfg.state_mut(st).df,
        };
        f(&mut b);
        self
    }

    /// Builds the canonical state-machine `for` loop used by the frontends
    /// and matched by the loop transformations (paper Sec. 6.4 loop
    /// unrolling operates on exactly this pattern):
    ///
    /// ```text
    /// prev --[var = start]--> guard --[cond]--> body ... --[var += step]--> guard
    ///                           '--[!cond]--> exit
    /// ```
    ///
    /// `end` is the *inclusive* bound; `step` may be negative (the guard
    /// condition flips to `var >= end`). Returns a [`LoopHandle`] with the
    /// body and exit states; callers fill the body state (or chain more
    /// states between body and the guard using the handle).
    pub fn for_loop(
        &mut self,
        prev: StateId,
        var: &str,
        start: SymExpr,
        end_inclusive: SymExpr,
        step: i64,
        label: &str,
    ) -> LoopHandle {
        assert!(step != 0, "loop step must be non-zero");
        let guard = self.sdfg.add_state(format!("{label}_guard"));
        let body = self.sdfg.add_state(format!("{label}_body"));
        let exit = self.sdfg.add_state(format!("{label}_exit"));
        let cond_op = if step > 0 { CmpOp::Le } else { CmpOp::Ge };
        let cond = CondExpr::cmp(cond_op, sym(var), end_inclusive.clone());
        let init_edge = self.sdfg.add_interstate_edge(
            prev,
            guard,
            InterstateEdge::always().assign(var, start.clone()),
        );
        let enter_edge =
            self.sdfg
                .add_interstate_edge(guard, body, InterstateEdge::when(cond.clone()));
        let back_edge = self.sdfg.add_interstate_edge(
            body,
            guard,
            InterstateEdge::always().assign(var, sym(var) + SymExpr::Int(step)),
        );
        let exit_edge =
            self.sdfg
                .add_interstate_edge(guard, exit, InterstateEdge::when(cond.negate()));
        LoopHandle {
            guard,
            body,
            exit,
            var: var.to_string(),
            init_edge,
            enter_edge,
            back_edge,
            exit_edge,
        }
    }

    /// Finalizes the program.
    pub fn build(self) -> Sdfg {
        self.sdfg
    }

    /// Access to the partially built SDFG.
    pub fn sdfg_mut(&mut self) -> &mut Sdfg {
        &mut self.sdfg
    }
}

/// Builder for one dataflow graph (a state body or a map body).
pub struct DataflowBuilder<'a> {
    df: &'a mut Dataflow,
}

impl<'a> DataflowBuilder<'a> {
    /// Wraps an existing dataflow graph.
    pub fn on(df: &'a mut Dataflow) -> Self {
        DataflowBuilder { df }
    }

    /// Adds an access node.
    pub fn access(&mut self, name: &str) -> NodeId {
        self.df.add_access(name)
    }

    /// Adds a tasklet node.
    pub fn tasklet(&mut self, t: Tasklet) -> NodeId {
        self.df.add_node(DfNode::Tasklet(t))
    }

    /// Adds a library node.
    pub fn library(&mut self, name: &str, op: LibraryOp) -> NodeId {
        self.df.add_node(DfNode::Library(LibraryNode {
            name: name.to_string(),
            op,
        }))
    }

    /// Adds a map scope whose body is built by the closure.
    pub fn map(
        &mut self,
        params: &[&str],
        ranges: Vec<SymRange>,
        schedule: Schedule,
        f: impl FnOnce(&mut DataflowBuilder),
    ) -> NodeId {
        let mut body = Dataflow::new();
        {
            let mut b = DataflowBuilder { df: &mut body };
            f(&mut b);
        }
        self.df.add_node(DfNode::Map(MapScope {
            params: params.iter().map(|s| s.to_string()).collect(),
            ranges,
            schedule,
            body,
        }))
    }

    /// Connects with an explicit memlet.
    pub fn connect(&mut self, src: NodeId, dst: NodeId, m: Memlet) -> fuzzyflow_graph::EdgeId {
        self.df.connect(src, dst, m)
    }

    /// Connects an access node into a computation node (a read).
    pub fn read(&mut self, access: NodeId, node: NodeId, m: Memlet) {
        self.df.connect(access, node, m);
    }

    /// Connects a computation node to an access node (a write).
    pub fn write(&mut self, node: NodeId, access: NodeId, m: Memlet) {
        self.df.connect(node, access, m);
    }

    /// Derives and adds summary memlets between the given access nodes and
    /// a computation node, using the node's (recursively computed) access
    /// sets. Each access node must name a container the node actually
    /// reads (for `inputs`) or writes (for `outputs`).
    pub fn auto_wire(&mut self, node: NodeId, inputs: &[NodeId], outputs: &[NodeId]) {
        let sets = node_access_sets(self.df, node);
        for &acc in inputs {
            let name = self
                .df
                .graph
                .node(acc)
                .as_access()
                .expect("auto_wire inputs must be access nodes")
                .to_string();
            let subset = sets
                .union_read_subset(&name)
                .unwrap_or_else(|| panic!("node does not read container '{name}'"));
            self.df.connect(acc, node, Memlet::new(name, subset));
        }
        for &acc in outputs {
            let name = self
                .df
                .graph
                .node(acc)
                .as_access()
                .expect("auto_wire outputs must be access nodes")
                .to_string();
            let subset = sets
                .union_write_subset(&name)
                .unwrap_or_else(|| panic!("node does not write container '{name}'"));
            self.df.connect(node, acc, Memlet::new(name, subset));
        }
    }

    /// The underlying graph (for assertions in tests).
    pub fn df(&mut self) -> &mut Dataflow {
        self.df
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasklet::ScalarExpr;
    use fuzzyflow_sym::{Bindings, Subset};

    #[test]
    fn build_simple_program() {
        let mut b = SdfgBuilder::new("p");
        b.symbol("N");
        b.array("A", DType::F64, &["N"]);
        b.array("B", DType::F64, &["N"]);
        let st = b.start();
        b.in_state(st, |df| {
            let a = df.access("A");
            let out = df.access("B");
            let m = df.map(
                &["i"],
                vec![SymRange::full(sym("N"))],
                Schedule::Parallel,
                |body| {
                    let a = body.access("A");
                    let o = body.access("B");
                    let t = body.tasklet(Tasklet::simple("id", vec!["x"], "y", ScalarExpr::r("x")));
                    body.read(
                        a,
                        t,
                        Memlet::new("A", Subset::at(vec![sym("i")])).to_conn("x"),
                    );
                    body.write(
                        t,
                        o,
                        Memlet::new("B", Subset::at(vec![sym("i")])).from_conn("y"),
                    );
                },
            );
            df.auto_wire(m, &[a], &[out]);
        });
        let s = b.build();
        assert_eq!(s.state(s.start).df.graph.node_count(), 3);
        assert_eq!(s.state(s.start).df.graph.edge_count(), 2);
        // Summary memlet covers the whole range.
        let st = s.state(s.start);
        let m = st.df.computation_nodes()[0];
        let (_, memlet) = st.df.in_memlets(m)[0];
        let bind = Bindings::from_pairs([("N", 6)]);
        assert_eq!(memlet.subset.concrete(&bind).unwrap().dims[0].end, 6);
    }

    #[test]
    fn for_loop_shape() {
        let mut b = SdfgBuilder::new("p");
        b.symbol("N");
        let lh = b.for_loop(
            b.start(),
            "i",
            SymExpr::Int(0),
            sym("N") - SymExpr::Int(1),
            1,
            "l0",
        );
        let s = b.build();
        // guard has 2 out-edges (enter, exit), body 1 (back edge).
        assert_eq!(s.states.out_degree(lh.guard), 2);
        assert_eq!(s.states.out_degree(lh.body), 1);
        assert_eq!(s.states.in_degree(lh.guard), 2);
        let enter = s.states.edge(lh.enter_edge);
        assert!(matches!(enter.condition, CondExpr::Cmp(CmpOp::Le, ..)));
    }

    #[test]
    fn negative_step_loop_uses_ge() {
        let mut b = SdfgBuilder::new("p");
        let lh = b.for_loop(b.start(), "i", SymExpr::Int(4), SymExpr::Int(1), -1, "down");
        let s = b.build();
        let enter = s.states.edge(lh.enter_edge);
        assert!(matches!(enter.condition, CondExpr::Cmp(CmpOp::Ge, ..)));
        let back = s.states.edge(lh.back_edge);
        assert_eq!(back.assignments.len(), 1);
    }

    #[test]
    #[should_panic(expected = "does not read")]
    fn auto_wire_rejects_wrong_container() {
        let mut b = SdfgBuilder::new("p");
        b.symbol("N");
        b.array("A", DType::F64, &["N"]);
        b.array("Z", DType::F64, &["N"]);
        let st = b.start();
        b.in_state(st, |df| {
            let z = df.access("Z");
            let m = df.map(
                &["i"],
                vec![SymRange::full(sym("N"))],
                Schedule::Parallel,
                |body| {
                    let a = body.access("A");
                    let o = body.access("A");
                    let t = body.tasklet(Tasklet::simple("id", vec!["x"], "y", ScalarExpr::r("x")));
                    body.read(
                        a,
                        t,
                        Memlet::new("A", Subset::at(vec![sym("i")])).to_conn("x"),
                    );
                    body.write(
                        t,
                        o,
                        Memlet::new("A", Subset::at(vec![sym("i")])).from_conn("y"),
                    );
                },
            );
            df.auto_wire(m, &[z], &[]);
        });
    }
}
