//! Tasklets: the finest-grained computation nodes.
//!
//! A tasklet is a pure function from its input connectors to its output
//! connectors: it cannot access memory directly, only values delivered by
//! memlets. This is what makes the true read/write set of every operation
//! a graph property (paper Sec. 2.2).

// Fluent expression builders intentionally mirror operator names
// (`a.add(b)`) without implementing the std operator traits for every one.
#![allow(clippy::should_implement_trait)]

use crate::dtype::Scalar;
use std::fmt;

/// Binary operators of the tasklet expression language.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Pow,
    Min,
    Max,
    And,
    Or,
}

/// Unary operators (including the math intrinsics the workloads need).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    Not,
    Abs,
    Sqrt,
    Exp,
    Log,
    Floor,
    Ceil,
    Tanh,
}

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

/// An expression over tasklet connectors, locals, symbols and constants.
#[derive(Clone, Debug, PartialEq)]
pub enum ScalarExpr {
    /// Literal value.
    Const(Scalar),
    /// Reference to an input connector, a local defined by an earlier
    /// statement, or (as a fallback) a program symbol in scope.
    Ref(String),
    Bin(BinOp, Box<ScalarExpr>, Box<ScalarExpr>),
    Un(UnOp, Box<ScalarExpr>),
    Cmp(CmpOp, Box<ScalarExpr>, Box<ScalarExpr>),
    /// `if cond { then } else { otherwise }`.
    Select(Box<ScalarExpr>, Box<ScalarExpr>, Box<ScalarExpr>),
}

impl ScalarExpr {
    /// A reference to a connector/local/symbol.
    pub fn r(name: impl Into<String>) -> Self {
        ScalarExpr::Ref(name.into())
    }

    /// An `f64` literal.
    pub fn f64(v: f64) -> Self {
        ScalarExpr::Const(Scalar::F64(v))
    }

    /// An `i64` literal.
    pub fn i64(v: i64) -> Self {
        ScalarExpr::Const(Scalar::I64(v))
    }

    pub fn add(self, o: ScalarExpr) -> Self {
        ScalarExpr::Bin(BinOp::Add, Box::new(self), Box::new(o))
    }
    pub fn sub(self, o: ScalarExpr) -> Self {
        ScalarExpr::Bin(BinOp::Sub, Box::new(self), Box::new(o))
    }
    pub fn mul(self, o: ScalarExpr) -> Self {
        ScalarExpr::Bin(BinOp::Mul, Box::new(self), Box::new(o))
    }
    pub fn div(self, o: ScalarExpr) -> Self {
        ScalarExpr::Bin(BinOp::Div, Box::new(self), Box::new(o))
    }
    pub fn min(self, o: ScalarExpr) -> Self {
        ScalarExpr::Bin(BinOp::Min, Box::new(self), Box::new(o))
    }
    pub fn max(self, o: ScalarExpr) -> Self {
        ScalarExpr::Bin(BinOp::Max, Box::new(self), Box::new(o))
    }
    pub fn neg(self) -> Self {
        ScalarExpr::Un(UnOp::Neg, Box::new(self))
    }
    pub fn sqrt(self) -> Self {
        ScalarExpr::Un(UnOp::Sqrt, Box::new(self))
    }
    pub fn exp(self) -> Self {
        ScalarExpr::Un(UnOp::Exp, Box::new(self))
    }
    pub fn lt(self, o: ScalarExpr) -> Self {
        ScalarExpr::Cmp(CmpOp::Lt, Box::new(self), Box::new(o))
    }
    pub fn select(self, then: ScalarExpr, otherwise: ScalarExpr) -> Self {
        ScalarExpr::Select(Box::new(self), Box::new(then), Box::new(otherwise))
    }

    /// Collects referenced names (connectors/locals/symbols).
    pub fn collect_refs(&self, out: &mut Vec<String>) {
        match self {
            ScalarExpr::Const(_) => {}
            ScalarExpr::Ref(n) => {
                if !out.iter().any(|x| x == n) {
                    out.push(n.clone());
                }
            }
            ScalarExpr::Bin(_, a, b) | ScalarExpr::Cmp(_, a, b) => {
                a.collect_refs(out);
                b.collect_refs(out);
            }
            ScalarExpr::Un(_, a) => a.collect_refs(out),
            ScalarExpr::Select(c, a, b) => {
                c.collect_refs(out);
                a.collect_refs(out);
                b.collect_refs(out);
            }
        }
    }

    /// Renames a referenced name everywhere.
    pub fn rename(&self, from: &str, to: &str) -> ScalarExpr {
        match self {
            ScalarExpr::Const(c) => ScalarExpr::Const(*c),
            ScalarExpr::Ref(n) => {
                ScalarExpr::Ref(if n == from { to.to_string() } else { n.clone() })
            }
            ScalarExpr::Bin(op, a, b) => ScalarExpr::Bin(
                *op,
                Box::new(a.rename(from, to)),
                Box::new(b.rename(from, to)),
            ),
            ScalarExpr::Cmp(op, a, b) => ScalarExpr::Cmp(
                *op,
                Box::new(a.rename(from, to)),
                Box::new(b.rename(from, to)),
            ),
            ScalarExpr::Un(op, a) => ScalarExpr::Un(*op, Box::new(a.rename(from, to))),
            ScalarExpr::Select(c, a, b) => ScalarExpr::Select(
                Box::new(c.rename(from, to)),
                Box::new(a.rename(from, to)),
                Box::new(b.rename(from, to)),
            ),
        }
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Const(c) => write!(f, "{c}"),
            ScalarExpr::Ref(n) => write!(f, "{n}"),
            ScalarExpr::Bin(op, a, b) => {
                let s = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Mod => "%",
                    BinOp::Pow => "**",
                    BinOp::Min => return write!(f, "min({a}, {b})"),
                    BinOp::Max => return write!(f, "max({a}, {b})"),
                    BinOp::And => "&&",
                    BinOp::Or => "||",
                };
                write!(f, "({a} {s} {b})")
            }
            ScalarExpr::Un(op, a) => {
                let s = match op {
                    UnOp::Neg => return write!(f, "(-{a})"),
                    UnOp::Not => return write!(f, "(!{a})"),
                    UnOp::Abs => "abs",
                    UnOp::Sqrt => "sqrt",
                    UnOp::Exp => "exp",
                    UnOp::Log => "log",
                    UnOp::Floor => "floor",
                    UnOp::Ceil => "ceil",
                    UnOp::Tanh => "tanh",
                };
                write!(f, "{s}({a})")
            }
            ScalarExpr::Cmp(op, a, b) => {
                let s = match op {
                    CmpOp::Lt => "<",
                    CmpOp::Le => "<=",
                    CmpOp::Gt => ">",
                    CmpOp::Ge => ">=",
                    CmpOp::Eq => "==",
                    CmpOp::Ne => "!=",
                };
                write!(f, "({a} {s} {b})")
            }
            ScalarExpr::Select(c, a, b) => write!(f, "({c} ? {a} : {b})"),
        }
    }
}

/// One statement of tasklet code: assign an expression to an output
/// connector or a local variable.
#[derive(Clone, Debug, PartialEq)]
pub struct TaskletStmt {
    pub dst: String,
    pub value: ScalarExpr,
}

/// A tasklet node: named ports plus straight-line code.
#[derive(Clone, Debug, PartialEq)]
pub struct Tasklet {
    /// Human-readable name (used in diagnostics and graph dumps).
    pub name: String,
    /// Input connector names; each must be fed by exactly one memlet.
    pub inputs: Vec<String>,
    /// Output connector names; each must feed at least one memlet.
    pub outputs: Vec<String>,
    /// Straight-line code, executed in order.
    pub code: Vec<TaskletStmt>,
    /// SIMD width: 1 for scalar tasklets. Vectorized tasklets (produced by
    /// the `Vectorization` transformation) evaluate their code lane-wise on
    /// `lanes` consecutive elements delivered by each memlet.
    pub lanes: u32,
}

impl Tasklet {
    /// A scalar tasklet computing `output = expr(inputs)`.
    pub fn simple(
        name: impl Into<String>,
        inputs: Vec<&str>,
        output: &str,
        expr: ScalarExpr,
    ) -> Self {
        Tasklet {
            name: name.into(),
            inputs: inputs.into_iter().map(String::from).collect(),
            outputs: vec![output.to_string()],
            code: vec![TaskletStmt {
                dst: output.to_string(),
                value: expr,
            }],
            lanes: 1,
        }
    }

    /// Multi-statement tasklet.
    pub fn with_code(
        name: impl Into<String>,
        inputs: Vec<&str>,
        outputs: Vec<&str>,
        code: Vec<TaskletStmt>,
    ) -> Self {
        Tasklet {
            name: name.into(),
            inputs: inputs.into_iter().map(String::from).collect(),
            outputs: outputs.into_iter().map(String::from).collect(),
            code,
            lanes: 1,
        }
    }

    /// Names referenced by the code that are neither inputs nor defined as
    /// locals by earlier statements — these resolve to program symbols at
    /// execution time (e.g. a map parameter used in arithmetic).
    pub fn symbol_refs(&self) -> Vec<String> {
        let mut defined: Vec<String> = self.inputs.clone();
        let mut syms = Vec::new();
        for stmt in &self.code {
            let mut refs = Vec::new();
            stmt.value.collect_refs(&mut refs);
            for r in refs {
                if !defined.contains(&r) && !syms.contains(&r) {
                    syms.push(r);
                }
            }
            if !defined.contains(&stmt.dst) {
                defined.push(stmt.dst.clone());
            }
        }
        syms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_tasklet_shape() {
        let t = Tasklet::simple(
            "scale",
            vec!["a"],
            "out",
            ScalarExpr::r("a").mul(ScalarExpr::f64(2.0)),
        );
        assert_eq!(t.inputs, vec!["a"]);
        assert_eq!(t.outputs, vec!["out"]);
        assert_eq!(t.code.len(), 1);
        assert_eq!(t.lanes, 1);
    }

    #[test]
    fn symbol_refs_excludes_inputs_and_locals() {
        let t = Tasklet::with_code(
            "t",
            vec!["a"],
            vec!["out"],
            vec![
                TaskletStmt {
                    dst: "tmp".into(),
                    value: ScalarExpr::r("a").add(ScalarExpr::r("N")),
                },
                TaskletStmt {
                    dst: "out".into(),
                    value: ScalarExpr::r("tmp").mul(ScalarExpr::r("tmp")),
                },
            ],
        );
        assert_eq!(t.symbol_refs(), vec!["N".to_string()]);
    }

    #[test]
    fn expr_display() {
        let e = ScalarExpr::r("x")
            .lt(ScalarExpr::f64(0.0))
            .select(ScalarExpr::r("x").neg(), ScalarExpr::r("x"));
        assert_eq!(e.to_string(), "((x < 0) ? (-x) : x)");
    }

    #[test]
    fn rename_refs() {
        let e = ScalarExpr::r("a").add(ScalarExpr::r("b"));
        assert_eq!(e.rename("a", "z").to_string(), "(z + b)");
    }

    #[test]
    fn collect_refs_dedup() {
        let e = ScalarExpr::r("a").add(ScalarExpr::r("a").mul(ScalarExpr::r("b")));
        let mut refs = Vec::new();
        e.collect_refs(&mut refs);
        assert_eq!(refs, vec!["a".to_string(), "b".to_string()]);
    }
}
