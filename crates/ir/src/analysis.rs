//! Read/write set analysis over dataflow graphs.
//!
//! This module computes, for any node, *which containers it touches and at
//! which symbolic subsets* — the information the cutout extraction and the
//! two side-effect analyses of paper Sec. 3.1/3.2 are built on. For map
//! scopes, body accesses are widened over the iteration ranges, preserving
//! the parametric sub-region information (e.g. a body access `A[i, j]`
//! inside `i in [0,M), j in [0,N)` widens to `A[0:M, 0:N]`).

use crate::dataflow::Dataflow;
use crate::memlet::Wcr;
use crate::node::DfNode;
use fuzzyflow_graph::NodeId;
use fuzzyflow_sym::{Subset, SymExpr, SymRange};

/// One access: a container and the accessed symbolic subset.
#[derive(Clone, Debug, PartialEq)]
pub struct Access {
    pub data: String,
    pub subset: Subset,
    /// Write-conflict resolution if this is an accumulating write.
    pub wcr: Option<Wcr>,
}

/// The read and write sets of a node or graph region.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AccessSets {
    pub reads: Vec<Access>,
    pub writes: Vec<Access>,
}

impl AccessSets {
    /// Merges another set into this one.
    pub fn merge(&mut self, other: AccessSets) {
        self.reads.extend(other.reads);
        self.writes.extend(other.writes);
    }

    /// All reads of a given container.
    pub fn reads_from<'a>(&'a self, data: &'a str) -> impl Iterator<Item = &'a Access> {
        self.reads.iter().filter(move |a| a.data == data)
    }

    /// All writes to a given container.
    pub fn writes_to<'a>(&'a self, data: &'a str) -> impl Iterator<Item = &'a Access> {
        self.writes.iter().filter(move |a| a.data == data)
    }

    /// Container names read (deduplicated).
    pub fn read_containers(&self) -> Vec<String> {
        dedup_names(self.reads.iter().map(|a| a.data.as_str()))
    }

    /// Container names written (deduplicated).
    pub fn written_containers(&self) -> Vec<String> {
        dedup_names(self.writes.iter().map(|a| a.data.as_str()))
    }

    /// Bounding-box union of all read subsets of `data`.
    pub fn union_read_subset(&self, data: &str) -> Option<Subset> {
        union_subsets(self.reads_from(data).map(|a| &a.subset))
    }

    /// Bounding-box union of all write subsets of `data`.
    pub fn union_write_subset(&self, data: &str) -> Option<Subset> {
        union_subsets(self.writes_to(data).map(|a| &a.subset))
    }
}

fn dedup_names<'a>(iter: impl Iterator<Item = &'a str>) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for n in iter {
        if !out.iter().any(|x| x == n) {
            out.push(n.to_string());
        }
    }
    out
}

fn union_subsets<'a>(mut iter: impl Iterator<Item = &'a Subset>) -> Option<Subset> {
    let first = iter.next()?.clone();
    Some(iter.fold(first, |acc, s| {
        if acc.rank() == s.rank() {
            acc.hull(s)
        } else {
            acc
        }
    }))
}

/// Widens a subset over one map parameter: substitutes the parameter with
/// both range extremes and takes the bounding hull. Sound for the affine
/// (monotone-in-parameter) index expressions this IR produces.
pub fn widen_over_param(subset: &Subset, param: &str, range: &SymRange) -> Subset {
    let last = (range.end.clone() - SymExpr::Int(1)).simplify();
    let lo = subset.substitute(param, &range.start);
    let hi = subset.substitute(param, &last);
    lo.hull(&hi)
}

/// Computes the read/write sets of a single node.
///
/// * Access nodes have empty sets (they are the *objects* of accesses).
/// * Tasklets and library nodes read via their incoming memlets and write
///   via their outgoing memlets.
/// * Map scopes recursively aggregate their body and widen every access
///   over the iteration parameters.
pub fn node_access_sets(df: &Dataflow, node: NodeId) -> AccessSets {
    let mut sets = AccessSets::default();
    match df.graph.node(node) {
        DfNode::Access(_) => {}
        DfNode::Tasklet(_) | DfNode::Library(_) => {
            for (_, m) in df.in_memlets(node) {
                sets.reads.push(Access {
                    data: m.data.clone(),
                    subset: m.subset.clone(),
                    wcr: None,
                });
            }
            for (_, m) in df.out_memlets(node) {
                sets.writes.push(Access {
                    data: m.data.clone(),
                    subset: m.subset.clone(),
                    wcr: m.wcr,
                });
                // Accumulating writes are read-modify-write: the prior
                // contents flow into the result, so WCR targets are part
                // of the read set too (and hence of input configurations).
                if m.wcr.is_some() {
                    sets.reads.push(Access {
                        data: m.data.clone(),
                        subset: m.subset.clone(),
                        wcr: m.wcr,
                    });
                }
            }
        }
        DfNode::Map(map) => {
            let mut body = graph_access_sets(&map.body);
            // Widen innermost-first: later ranges may reference earlier
            // parameters (triangular spaces), so substituting an inner
            // parameter can re-introduce an outer one, which the outer
            // widening pass then resolves.
            for (param, range) in map.params.iter().zip(&map.ranges).rev() {
                for a in body.reads.iter_mut().chain(body.writes.iter_mut()) {
                    a.subset = widen_over_param(&a.subset, param, range);
                }
            }
            sets.merge(body);
        }
    }
    sets
}

/// Union of the access sets of every computation node in a graph
/// (recursing into nested maps via [`node_access_sets`]).
pub fn graph_access_sets(df: &Dataflow) -> AccessSets {
    let mut sets = AccessSets::default();
    for n in df.computation_nodes() {
        sets.merge(node_access_sets(df, n));
    }
    sets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memlet::Memlet;
    use crate::node::{MapScope, Schedule};
    use crate::tasklet::{ScalarExpr, Tasklet};
    use fuzzyflow_sym::{sym, Bindings};

    /// Builds `map i in [0,N): out[i] = in[i] * 2`.
    fn scaled_map() -> Dataflow {
        let mut body = Dataflow::new();
        let a = body.add_access("A");
        let o = body.add_access("Out");
        let t = body.add_node(DfNode::Tasklet(Tasklet::simple(
            "scale",
            vec!["x"],
            "y",
            ScalarExpr::r("x").mul(ScalarExpr::f64(2.0)),
        )));
        body.connect(
            a,
            t,
            Memlet::new("A", Subset::at(vec![sym("i")])).to_conn("x"),
        );
        body.connect(
            t,
            o,
            Memlet::new("Out", Subset::at(vec![sym("i")])).from_conn("y"),
        );

        let mut outer = Dataflow::new();
        outer.add_node(DfNode::Map(MapScope {
            params: vec!["i".into()],
            ranges: vec![SymRange::full(sym("N"))],
            schedule: Schedule::Parallel,
            body,
        }));
        outer
    }

    #[test]
    fn tasklet_sets_from_memlets() {
        let mut df = Dataflow::new();
        let a = df.add_access("A");
        let b = df.add_access("B");
        let t = df.add_node(DfNode::Tasklet(Tasklet::simple(
            "t",
            vec!["x"],
            "y",
            ScalarExpr::r("x"),
        )));
        df.connect(
            a,
            t,
            Memlet::new("A", Subset::at(vec![sym("k")])).to_conn("x"),
        );
        df.connect(
            t,
            b,
            Memlet::new("B", Subset::at(vec![sym("k")])).from_conn("y"),
        );
        let sets = node_access_sets(&df, t);
        assert_eq!(sets.read_containers(), vec!["A".to_string()]);
        assert_eq!(sets.written_containers(), vec!["B".to_string()]);
    }

    #[test]
    fn map_widens_over_params() {
        let df = scaled_map();
        let m = df.computation_nodes()[0];
        let sets = node_access_sets(&df, m);
        let read = sets.union_read_subset("A").unwrap();
        let b = Bindings::from_pairs([("N", 10)]);
        let c = read.concrete(&b).unwrap();
        assert_eq!(c.dims[0].start, 0);
        assert_eq!(c.dims[0].end, 10);
        let write = sets.union_write_subset("Out").unwrap();
        assert_eq!(write.concrete(&b).unwrap().dims[0].end, 10);
    }

    #[test]
    fn widen_single_param_2d() {
        // A[i, 0:4] over i in [2, 8) -> A[2:8, 0:4]
        let s = Subset::new(vec![
            SymRange::index(sym("i")),
            SymRange::span(SymExpr::Int(0), SymExpr::Int(4)),
        ]);
        let w = widen_over_param(&s, "i", &SymRange::span(SymExpr::Int(2), SymExpr::Int(8)));
        let c = w.concrete(&Bindings::new()).unwrap();
        assert_eq!((c.dims[0].start, c.dims[0].end), (2, 8));
        assert_eq!((c.dims[1].start, c.dims[1].end), (0, 4));
    }

    #[test]
    fn access_nodes_have_empty_sets() {
        let mut df = Dataflow::new();
        let a = df.add_access("A");
        let sets = node_access_sets(&df, a);
        assert!(sets.reads.is_empty() && sets.writes.is_empty());
    }

    #[test]
    fn graph_sets_aggregate() {
        let df = scaled_map();
        let sets = graph_access_sets(&df);
        assert_eq!(sets.read_containers(), vec!["A".to_string()]);
        assert_eq!(sets.written_containers(), vec!["Out".to_string()]);
    }

    #[test]
    fn wcr_propagates_to_write_set() {
        let mut df = Dataflow::new();
        let a = df.add_access("A");
        let c = df.add_access("C");
        let t = df.add_node(DfNode::Tasklet(Tasklet::simple(
            "acc",
            vec!["x"],
            "y",
            ScalarExpr::r("x"),
        )));
        df.connect(
            a,
            t,
            Memlet::new("A", Subset::at(vec![sym("k")])).to_conn("x"),
        );
        df.connect(
            t,
            c,
            Memlet::new("C", Subset::at(vec![SymExpr::Int(0)]))
                .from_conn("y")
                .with_wcr(Wcr::Sum),
        );
        let sets = node_access_sets(&df, t);
        assert_eq!(sets.writes[0].wcr, Some(Wcr::Sum));
    }
}
