//! Structural validation of SDFGs.
//!
//! Validation failures correspond to the paper's "generates invalid code"
//! failure class (Table 2): a transformation that leaves the IR in a state
//! that cannot be lowered/executed. The differential tester runs validation
//! on the transformed cutout and reports `InvalidCode` when it fails.

use crate::dataflow::Dataflow;
use crate::node::{DfNode, LibraryOp, Schedule, Storage};
use crate::sdfg::{Sdfg, StateId};
use fuzzyflow_graph::NodeId;
use std::fmt;

/// A structural validation error.
#[derive(Clone, Debug, PartialEq)]
pub enum ValidationError {
    /// A memlet or access node references an undeclared container.
    UnknownContainer { state: StateId, data: String },
    /// Memlet subset rank differs from the container rank.
    RankMismatch {
        state: StateId,
        data: String,
        subset_rank: usize,
        container_rank: usize,
    },
    /// A tasklet/library input connector has no incoming memlet.
    DanglingInputConnector {
        state: StateId,
        node: String,
        connector: String,
    },
    /// An edge targets a connector the node does not declare.
    UnknownConnector {
        state: StateId,
        node: String,
        connector: String,
    },
    /// A tasklet/library output connector has no outgoing memlet.
    UnusedOutputConnector {
        state: StateId,
        node: String,
        connector: String,
    },
    /// The dataflow graph of a state contains a cycle.
    CyclicDataflow { state: StateId },
    /// An expression references a symbol that is neither declared nor
    /// assigned anywhere.
    UnknownSymbol { context: String, symbol: String },
    /// An edge connects two access nodes or two computation nodes.
    MalformedEdge { state: StateId, detail: String },
    /// A map scope has mismatched params/ranges.
    MalformedMap { state: StateId, detail: String },
    /// Device-storage container accessed outside a GPU kernel/copy, or
    /// host container accessed inside a GPU kernel.
    StorageViolation {
        state: StateId,
        data: String,
        detail: String,
    },
    /// The state machine start node was removed.
    MissingStartState,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::UnknownContainer { state, data } => {
                write!(f, "state {state}: unknown container '{data}'")
            }
            ValidationError::RankMismatch {
                state,
                data,
                subset_rank,
                container_rank,
            } => write!(
                f,
                "state {state}: memlet for '{data}' has rank {subset_rank}, container has rank {container_rank}"
            ),
            ValidationError::DanglingInputConnector {
                state,
                node,
                connector,
            } => write!(
                f,
                "state {state}: input connector '{connector}' of {node} has no incoming memlet"
            ),
            ValidationError::UnknownConnector {
                state,
                node,
                connector,
            } => write!(
                f,
                "state {state}: {node} has no connector '{connector}'"
            ),
            ValidationError::UnusedOutputConnector {
                state,
                node,
                connector,
            } => write!(
                f,
                "state {state}: output connector '{connector}' of {node} has no outgoing memlet"
            ),
            ValidationError::CyclicDataflow { state } => {
                write!(f, "state {state}: dataflow graph contains a cycle")
            }
            ValidationError::UnknownSymbol { context, symbol } => {
                write!(f, "{context}: unknown symbol '{symbol}'")
            }
            ValidationError::MalformedEdge { state, detail } => {
                write!(f, "state {state}: malformed edge: {detail}")
            }
            ValidationError::MalformedMap { state, detail } => {
                write!(f, "state {state}: malformed map: {detail}")
            }
            ValidationError::StorageViolation {
                state,
                data,
                detail,
            } => write!(f, "state {state}: storage violation on '{data}': {detail}"),
            ValidationError::MissingStartState => write!(f, "start state missing"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validates an SDFG, returning all errors found.
pub fn validate(sdfg: &Sdfg) -> Result<(), Vec<ValidationError>> {
    let mut errors = Vec::new();

    if !sdfg.states.contains_node(sdfg.start) {
        errors.push(ValidationError::MissingStartState);
    }

    // Symbols that may legally appear: declared parameters + symbols
    // assigned on inter-state edges.
    let mut known_syms: Vec<String> = sdfg.symbols.keys().cloned().collect();
    for s in sdfg.assigned_symbols() {
        if !known_syms.contains(&s) {
            known_syms.push(s);
        }
    }

    // Array shapes.
    for (name, desc) in &sdfg.arrays {
        for s in desc.shape_symbols() {
            if !known_syms.contains(&s) {
                errors.push(ValidationError::UnknownSymbol {
                    context: format!("shape of '{name}'"),
                    symbol: s,
                });
            }
        }
    }

    // Inter-state edges.
    for e in sdfg.states.edge_ids() {
        let edge = sdfg.states.edge(e);
        for s in edge.condition.free_symbols() {
            if !known_syms.contains(&s) {
                errors.push(ValidationError::UnknownSymbol {
                    context: format!("condition of inter-state edge {e}"),
                    symbol: s,
                });
            }
        }
        for (_, v) in &edge.assignments {
            for s in v.free_symbols() {
                if !known_syms.contains(&s) {
                    errors.push(ValidationError::UnknownSymbol {
                        context: format!("assignment on inter-state edge {e}"),
                        symbol: s,
                    });
                }
            }
        }
    }

    // Per-state dataflow.
    for st in sdfg.states.node_ids() {
        let df = &sdfg.states.node(st).df;
        validate_dataflow(sdfg, st, df, &known_syms, false, &mut errors);
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn validate_dataflow(
    sdfg: &Sdfg,
    state: StateId,
    df: &Dataflow,
    scope_syms: &[String],
    in_gpu_kernel: bool,
    errors: &mut Vec<ValidationError>,
) {
    // Acyclicity.
    if fuzzyflow_graph::topological_sort(&df.graph).is_err() {
        errors.push(ValidationError::CyclicDataflow { state });
    }

    // Edges.
    for e in df.graph.edge_ids() {
        let m = df.graph.edge(e);
        let (u, v) = df.graph.endpoints(e);
        let (un, vn) = (df.graph.node(u), df.graph.node(v));

        // Exactly one endpoint must be an access node matching the memlet.
        match (un.as_access(), vn.as_access()) {
            (Some(_), Some(_)) => errors.push(ValidationError::MalformedEdge {
                state,
                detail: format!("edge {e} connects two access nodes; use a Copy library node"),
            }),
            (None, None) => errors.push(ValidationError::MalformedEdge {
                state,
                detail: format!("edge {e} connects two computation nodes"),
            }),
            (Some(a), None) | (None, Some(a)) => {
                if a != m.data {
                    errors.push(ValidationError::MalformedEdge {
                        state,
                        detail: format!(
                            "edge {e} memlet names '{}' but access node is '{a}'",
                            m.data
                        ),
                    });
                }
            }
        }

        match sdfg.array(&m.data) {
            None => errors.push(ValidationError::UnknownContainer {
                state,
                data: m.data.clone(),
            }),
            Some(desc) => {
                if m.subset.rank() != desc.rank() {
                    errors.push(ValidationError::RankMismatch {
                        state,
                        data: m.data.clone(),
                        subset_rank: m.subset.rank(),
                        container_rank: desc.rank(),
                    });
                }
                // Storage discipline.
                let other_is_copy = matches!(
                    (un.as_library(), vn.as_library()),
                    (Some(l), _) | (_, Some(l)) if matches!(l.op, LibraryOp::Copy)
                );
                let other_is_gpu_map = matches!(
                    (un.as_map(), vn.as_map()),
                    (Some(m), _) | (_, Some(m)) if m.schedule == Schedule::GpuKernel
                );
                match desc.storage {
                    Storage::Device => {
                        if !in_gpu_kernel && !other_is_copy && !other_is_gpu_map {
                            errors.push(ValidationError::StorageViolation {
                                state,
                                data: m.data.clone(),
                                detail: "device container accessed outside a GPU kernel or copy"
                                    .into(),
                            });
                        }
                    }
                    Storage::Host => {
                        if in_gpu_kernel {
                            errors.push(ValidationError::StorageViolation {
                                state,
                                data: m.data.clone(),
                                detail: "host container accessed inside a GPU kernel".into(),
                            });
                        }
                    }
                }
            }
        }

        // Symbols in subsets.
        for s in m.subset.free_symbols() {
            if !scope_syms.contains(&s) {
                errors.push(ValidationError::UnknownSymbol {
                    context: format!("memlet {e} in state {state}"),
                    symbol: s,
                });
            }
        }
    }

    // Nodes.
    for n in df.graph.node_ids() {
        match df.graph.node(n) {
            DfNode::Access(name) => {
                if sdfg.array(name).is_none() {
                    errors.push(ValidationError::UnknownContainer {
                        state,
                        data: name.clone(),
                    });
                }
            }
            DfNode::Tasklet(t) => {
                check_connectors(
                    state,
                    df,
                    n,
                    &t.name,
                    &t.inputs.iter().map(String::as_str).collect::<Vec<_>>(),
                    &t.outputs.iter().map(String::as_str).collect::<Vec<_>>(),
                    errors,
                );
            }
            DfNode::Library(l) => {
                check_connectors(
                    state,
                    df,
                    n,
                    &l.name,
                    &l.op.input_conns(),
                    &l.op.output_conns(),
                    errors,
                );
            }
            DfNode::Map(map) => {
                if map.params.is_empty() || map.params.len() != map.ranges.len() {
                    errors.push(ValidationError::MalformedMap {
                        state,
                        detail: format!(
                            "{} params but {} ranges",
                            map.params.len(),
                            map.ranges.len()
                        ),
                    });
                }
                for (d, r) in map.ranges.iter().enumerate() {
                    // A range may reference the map's *earlier* parameters
                    // (triangular iteration spaces) plus enclosing scope.
                    let earlier = &map.params[..d.min(map.params.len())];
                    for s in r.free_symbols() {
                        if !scope_syms.contains(&s) && !earlier.contains(&s) {
                            errors.push(ValidationError::UnknownSymbol {
                                context: format!("map range in state {state}"),
                                symbol: s,
                            });
                        }
                    }
                }
                let mut inner_syms = scope_syms.to_vec();
                inner_syms.extend(map.params.iter().cloned());
                let gpu = in_gpu_kernel || map.schedule == Schedule::GpuKernel;
                validate_dataflow(sdfg, state, &map.body, &inner_syms, gpu, errors);
            }
        }
    }
}

fn check_connectors(
    state: StateId,
    df: &Dataflow,
    n: NodeId,
    name: &str,
    inputs: &[&str],
    outputs: &[&str],
    errors: &mut Vec<ValidationError>,
) {
    let in_conns: Vec<Option<&str>> = df
        .in_memlets(n)
        .iter()
        .map(|(_, m)| m.dst_conn.as_deref())
        .collect();
    for conn in inputs {
        if !in_conns.contains(&Some(conn)) {
            errors.push(ValidationError::DanglingInputConnector {
                state,
                node: name.to_string(),
                connector: conn.to_string(),
            });
        }
    }
    for c in in_conns.into_iter().flatten() {
        if !inputs.contains(&c) {
            errors.push(ValidationError::UnknownConnector {
                state,
                node: name.to_string(),
                connector: c.to_string(),
            });
        }
    }
    let out_conns: Vec<Option<&str>> = df
        .out_memlets(n)
        .iter()
        .map(|(_, m)| m.src_conn.as_deref())
        .collect();
    for conn in outputs {
        if !out_conns.contains(&Some(conn)) {
            errors.push(ValidationError::UnusedOutputConnector {
                state,
                node: name.to_string(),
                connector: conn.to_string(),
            });
        }
    }
    for c in out_conns.into_iter().flatten() {
        if !outputs.contains(&c) {
            errors.push(ValidationError::UnknownConnector {
                state,
                node: name.to_string(),
                connector: c.to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SdfgBuilder;
    use crate::dtype::DType;
    use crate::memlet::Memlet;
    use crate::tasklet::{ScalarExpr, Tasklet};
    use fuzzyflow_sym::{sym, Subset, SymRange};

    fn valid_program() -> Sdfg {
        let mut b = SdfgBuilder::new("p");
        b.symbol("N");
        b.array("A", DType::F64, &["N"]);
        b.array("B", DType::F64, &["N"]);
        let st = b.start();
        b.in_state(st, |df| {
            let a = df.access("A");
            let o = df.access("B");
            let m = df.map(
                &["i"],
                vec![SymRange::full(sym("N"))],
                crate::node::Schedule::Parallel,
                |body| {
                    let a = body.access("A");
                    let o = body.access("B");
                    let t = body.tasklet(Tasklet::simple("id", vec!["x"], "y", ScalarExpr::r("x")));
                    body.read(
                        a,
                        t,
                        Memlet::new("A", Subset::at(vec![sym("i")])).to_conn("x"),
                    );
                    body.write(
                        t,
                        o,
                        Memlet::new("B", Subset::at(vec![sym("i")])).from_conn("y"),
                    );
                },
            );
            df.auto_wire(m, &[a], &[o]);
        });
        b.build()
    }

    #[test]
    fn valid_program_passes() {
        assert!(validate(&valid_program()).is_ok());
    }

    #[test]
    fn unknown_container_detected() {
        let mut s = valid_program();
        let st = s.start;
        s.state_mut(st).df.add_access("NOPE");
        let errs = validate(&s).unwrap_err();
        assert!(errs.iter().any(
            |e| matches!(e, ValidationError::UnknownContainer { data, .. } if data == "NOPE")
        ));
    }

    #[test]
    fn dangling_connector_detected() {
        let mut b = SdfgBuilder::new("p");
        b.symbol("N");
        b.array("B", DType::F64, &["N"]);
        let st = b.start();
        b.in_state(st, |df| {
            let o = df.access("B");
            // Tasklet with input "x" but no incoming edge.
            let t = df.tasklet(Tasklet::simple("id", vec!["x"], "y", ScalarExpr::r("x")));
            df.write(
                t,
                o,
                Memlet::new("B", Subset::at(vec![SymExpr::Int(0)])).from_conn("y"),
            );
        });
        let errs = validate(&b.build()).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::DanglingInputConnector { connector, .. } if connector == "x")));
    }
    use fuzzyflow_sym::SymExpr;

    #[test]
    fn rank_mismatch_detected() {
        let mut b = SdfgBuilder::new("p");
        b.symbol("N");
        b.array("A", DType::F64, &["N", "N"]);
        b.array("B", DType::F64, &["N"]);
        let st = b.start();
        b.in_state(st, |df| {
            let a = df.access("A");
            let o = df.access("B");
            let t = df.tasklet(Tasklet::simple("id", vec!["x"], "y", ScalarExpr::r("x")));
            // 1-D subset into 2-D container.
            df.read(
                a,
                t,
                Memlet::new("A", Subset::at(vec![SymExpr::Int(0)])).to_conn("x"),
            );
            df.write(
                t,
                o,
                Memlet::new("B", Subset::at(vec![SymExpr::Int(0)])).from_conn("y"),
            );
        });
        let errs = validate(&b.build()).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::RankMismatch { data, .. } if data == "A")));
    }

    #[test]
    fn unknown_symbol_in_memlet_detected() {
        let mut b = SdfgBuilder::new("p");
        b.symbol("N");
        b.array("A", DType::F64, &["N"]);
        b.array("B", DType::F64, &["N"]);
        let st = b.start();
        b.in_state(st, |df| {
            let a = df.access("A");
            let o = df.access("B");
            let t = df.tasklet(Tasklet::simple("id", vec!["x"], "y", ScalarExpr::r("x")));
            df.read(
                a,
                t,
                Memlet::new("A", Subset::at(vec![sym("q")])).to_conn("x"),
            );
            df.write(
                t,
                o,
                Memlet::new("B", Subset::at(vec![SymExpr::Int(0)])).from_conn("y"),
            );
        });
        let errs = validate(&b.build()).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::UnknownSymbol { symbol, .. } if symbol == "q")));
    }

    #[test]
    fn access_to_access_edge_rejected() {
        let mut b = SdfgBuilder::new("p");
        b.symbol("N");
        b.array("A", DType::F64, &["N"]);
        b.array("B", DType::F64, &["N"]);
        let st = b.start();
        b.in_state(st, |df| {
            let a = df.access("A");
            let o = df.access("B");
            df.connect(a, o, Memlet::new("A", Subset::full(&[sym("N")])));
        });
        let errs = validate(&b.build()).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::MalformedEdge { .. })));
    }

    #[test]
    fn gpu_kernel_cannot_touch_host_memory() {
        let mut b = SdfgBuilder::new("p");
        b.symbol("N");
        b.array("A", DType::F64, &["N"]); // host
        b.array("B", DType::F64, &["N"]);
        let st = b.start();
        b.in_state(st, |df| {
            let a = df.access("A");
            let o = df.access("B");
            let m = df.map(
                &["i"],
                vec![SymRange::full(sym("N"))],
                crate::node::Schedule::GpuKernel,
                |body| {
                    let a = body.access("A");
                    let o = body.access("B");
                    let t = body.tasklet(Tasklet::simple("id", vec!["x"], "y", ScalarExpr::r("x")));
                    body.read(
                        a,
                        t,
                        Memlet::new("A", Subset::at(vec![sym("i")])).to_conn("x"),
                    );
                    body.write(
                        t,
                        o,
                        Memlet::new("B", Subset::at(vec![sym("i")])).from_conn("y"),
                    );
                },
            );
            df.auto_wire(m, &[a], &[o]);
        });
        let errs = validate(&b.build()).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::StorageViolation { .. })));
    }

    #[test]
    fn cyclic_dataflow_detected() {
        let mut b = SdfgBuilder::new("p");
        b.symbol("N");
        b.array("A", DType::F64, &["N"]);
        let st = b.start();
        b.in_state(st, |df| {
            let a = df.access("A");
            let t = df.tasklet(Tasklet::simple("id", vec!["x"], "y", ScalarExpr::r("x")));
            df.read(
                a,
                t,
                Memlet::new("A", Subset::at(vec![SymExpr::Int(0)])).to_conn("x"),
            );
            df.write(
                t,
                a,
                Memlet::new("A", Subset::at(vec![SymExpr::Int(0)])).from_conn("y"),
            );
        });
        let errs = validate(&b.build()).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::CyclicDataflow { .. })));
    }
}
