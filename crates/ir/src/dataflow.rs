//! The dataflow graph: an acyclic directed multigraph of [`DfNode`]s
//! connected by [`Memlet`] edges. Used both as the body of a [`State`](crate::State)
//! (crate::sdfg) and as the nested body of a [`MapScope`](crate::node).

use crate::memlet::Memlet;
use crate::node::DfNode;
use fuzzyflow_graph::{DiGraph, EdgeId, NodeId};

/// An acyclic dataflow graph.
#[derive(Clone, Debug, Default)]
pub struct Dataflow {
    pub graph: DiGraph<DfNode, Memlet>,
}

impl Dataflow {
    /// An empty dataflow graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an access node for container `name`.
    pub fn add_access(&mut self, name: impl Into<String>) -> NodeId {
        self.graph.add_node(DfNode::Access(name.into()))
    }

    /// Adds an arbitrary node.
    pub fn add_node(&mut self, node: DfNode) -> NodeId {
        self.graph.add_node(node)
    }

    /// Connects two nodes with a memlet.
    pub fn connect(&mut self, src: NodeId, dst: NodeId, memlet: Memlet) -> EdgeId {
        self.graph.add_edge(src, dst, memlet)
    }

    /// First access node of container `name`, if any.
    pub fn find_access(&self, name: &str) -> Option<NodeId> {
        self.graph
            .node_ids()
            .find(|&n| self.graph.node(n).as_access() == Some(name))
    }

    /// All access nodes of container `name`.
    pub fn accesses_of(&self, name: &str) -> Vec<NodeId> {
        self.graph
            .node_ids()
            .filter(|&n| self.graph.node(n).as_access() == Some(name))
            .collect()
    }

    /// All container names referenced by access nodes (deduplicated,
    /// first-occurrence order), including nested map bodies.
    pub fn referenced_containers(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_containers(&mut out);
        out
    }

    fn collect_containers(&self, out: &mut Vec<String>) {
        for n in self.graph.node_ids() {
            match self.graph.node(n) {
                DfNode::Access(d) if !out.contains(d) => {
                    out.push(d.clone());
                }
                DfNode::Map(m) => m.body.collect_containers(out),
                _ => {}
            }
        }
        for e in self.graph.edge_ids() {
            let d = &self.graph.edge(e).data;
            if !out.contains(d) {
                out.push(d.clone());
            }
        }
    }

    /// Incoming `(edge, memlet)` pairs of a node.
    pub fn in_memlets(&self, n: NodeId) -> Vec<(EdgeId, &Memlet)> {
        self.graph
            .in_edge_ids(n)
            .iter()
            .map(|&e| (e, self.graph.edge(e)))
            .collect()
    }

    /// Outgoing `(edge, memlet)` pairs of a node.
    pub fn out_memlets(&self, n: NodeId) -> Vec<(EdgeId, &Memlet)> {
        self.graph
            .out_edge_ids(n)
            .iter()
            .map(|&e| (e, self.graph.edge(e)))
            .collect()
    }

    /// Non-access computation nodes (tasklets, maps, library nodes).
    pub fn computation_nodes(&self) -> Vec<NodeId> {
        self.graph
            .node_ids()
            .filter(|&n| !self.graph.node(n).is_access())
            .collect()
    }

    /// Renames a symbol in every memlet subset (recursing into map bodies).
    /// Used when inlining cutouts and by transformations that rename
    /// iteration parameters.
    pub fn substitute_symbol(&mut self, name: &str, value: &fuzzyflow_sym::SymExpr) {
        let edge_ids: Vec<EdgeId> = self.graph.edge_ids().collect();
        for e in edge_ids {
            let m = self.graph.edge(e).substitute(name, value);
            *self.graph.edge_mut(e) = m;
        }
        let node_ids: Vec<NodeId> = self.graph.node_ids().collect();
        for n in node_ids {
            if let DfNode::Map(map) = self.graph.node_mut(n) {
                // Do not substitute shadowed parameters.
                if map.params.iter().any(|p| p == name) {
                    continue;
                }
                for r in &mut map.ranges {
                    *r = r.substitute(name, value);
                }
                map.body.substitute_symbol(name, value);
            }
        }
    }

    /// Deep node count, recursing into map bodies — a size measure used in
    /// reports ("cutout has K nodes").
    pub fn deep_node_count(&self) -> usize {
        let mut count = 0;
        for n in self.graph.node_ids() {
            count += 1;
            if let DfNode::Map(m) = self.graph.node(n) {
                count += m.body.deep_node_count();
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasklet::{ScalarExpr, Tasklet};
    use fuzzyflow_sym::{sym, Subset};

    fn simple_df() -> (Dataflow, NodeId, NodeId, NodeId) {
        // A --[A[i]]--> t --[B[i]]--> B
        let mut df = Dataflow::new();
        let a = df.add_access("A");
        let b = df.add_access("B");
        let t = df.add_node(DfNode::Tasklet(Tasklet::simple(
            "copy",
            vec!["x"],
            "y",
            ScalarExpr::r("x"),
        )));
        df.connect(
            a,
            t,
            Memlet::new("A", Subset::at(vec![sym("i")])).to_conn("x"),
        );
        df.connect(
            t,
            b,
            Memlet::new("B", Subset::at(vec![sym("i")])).from_conn("y"),
        );
        (df, a, t, b)
    }

    #[test]
    fn find_access_works() {
        let (df, a, _, _) = simple_df();
        assert_eq!(df.find_access("A"), Some(a));
        assert_eq!(df.find_access("Z"), None);
    }

    #[test]
    fn referenced_containers_includes_memlet_data() {
        let (df, _, _, _) = simple_df();
        assert_eq!(
            df.referenced_containers(),
            vec!["A".to_string(), "B".to_string()]
        );
    }

    #[test]
    fn computation_nodes_excludes_accesses() {
        let (df, _, t, _) = simple_df();
        assert_eq!(df.computation_nodes(), vec![t]);
    }

    #[test]
    fn substitute_symbol_in_memlets() {
        let (mut df, _, t, _) = simple_df();
        df.substitute_symbol("i", &fuzzyflow_sym::SymExpr::Int(3));
        let ins = df.in_memlets(t);
        let b = fuzzyflow_sym::Bindings::new();
        let c = ins[0].1.subset.concrete(&b).unwrap();
        assert_eq!(c.dims[0].start, 3);
    }

    #[test]
    fn deep_node_count_recurses() {
        let (inner, ..) = simple_df();
        let mut outer = Dataflow::new();
        outer.add_node(DfNode::Map(crate::node::MapScope {
            params: vec!["i".into()],
            ranges: vec![fuzzyflow_sym::SymRange::full(sym("N"))],
            schedule: crate::node::Schedule::Parallel,
            body: inner,
        }));
        assert_eq!(outer.deep_node_count(), 4);
    }
}
