//! A parametric stateful-dataflow program IR, modeled after DaCe's Stateful
//! Dataflow Multigraphs (SDFGs, Ben-Nun et al. SC'19), which the FuzzyFlow
//! paper uses as its reference representation (Sec. 2.3).
//!
//! The representation satisfies all requirements of paper Table 1:
//!
//! * **Scalar & memory side-effect visibility** — every data access flows
//!   through an explicit [`Memlet`] edge attached to an access node:
//!   there is no aliasing, the true read/write set of every operation is a
//!   graph property.
//! * **Sub-region analysis** — memlets carry the *exact* accessed
//!   [`Subset`] (per-dimension symbolic ranges).
//! * **Input & size generalization** — container shapes are symbolic
//!   expressions over program parameters ([`DataDesc::shape`]), so the
//!   relationship between a size parameter `N` and an `N*N` container is
//!   never lost.
//!
//! Structure (paper Fig. 3): a program ([`Sdfg`]) is a state machine whose
//! nodes are [`State`]s; each state holds an acyclic dataflow graph whose
//! nodes are data accesses, tasklets (pure scalar computations), *map
//! scopes* (parametric parallel loops whose body is a nested dataflow
//! graph) and library nodes (BLAS-like ops and communication collectives).

pub mod analysis;
pub mod builder;
pub mod data;
pub mod dataflow;
pub mod dtype;
pub mod loops;
pub mod memlet;
pub mod node;
pub mod sdfg;
pub mod tasklet;
pub mod validate;

pub use builder::{DataflowBuilder, SdfgBuilder};
pub use data::DataDesc;
pub use dataflow::Dataflow;
pub use dtype::{DType, Scalar};
pub use loops::{detect_loop, LoopInfo};
pub use memlet::{Memlet, Wcr};
pub use node::{CommOp, DfNode, LibraryNode, LibraryOp, MapScope, Schedule, Storage};
pub use sdfg::{CmpOp as SymCmpOp, CondExpr, InterstateEdge, NodeRef, Sdfg, State, StateId};
pub use tasklet::{BinOp, CmpOp, ScalarExpr, Tasklet, TaskletStmt, UnOp};
pub use validate::{validate, ValidationError};

pub use fuzzyflow_graph::{DiGraph, EdgeId, NodeId};
pub use fuzzyflow_sym::{sym, Bindings, Subset, SymBounds, SymExpr, SymRange};
