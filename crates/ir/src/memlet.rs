//! Memlets: data-movement edges annotated with exact access subsets.

use fuzzyflow_sym::{Subset, SymExpr};
use std::fmt;

/// Write-conflict resolution: how concurrent/accumulating writes combine.
/// Doubles as the reduction operator of `Reduce` library nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Wcr {
    Sum,
    Prod,
    Max,
    Min,
}

impl fmt::Display for Wcr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Wcr::Sum => "sum",
            Wcr::Prod => "prod",
            Wcr::Max => "max",
            Wcr::Min => "min",
        };
        write!(f, "{s}")
    }
}

/// A data-movement edge in a dataflow graph.
///
/// Every memlet names the container it moves data for and the *exact*
/// symbolic subset accessed (paper Sec. 2.3: "each data movement edge is
/// annotated with the exact data subset being accessed"). Connector names
/// bind the moved element(s) to tasklet/library-node ports.
#[derive(Clone, Debug, PartialEq)]
pub struct Memlet {
    /// Name of the data container being accessed.
    pub data: String,
    /// Exact accessed subset (may reference map parameters in scope).
    pub subset: Subset,
    /// Source connector on the producing node (for tasklet/library outputs).
    pub src_conn: Option<String>,
    /// Destination connector on the consuming node (for tasklet/library inputs).
    pub dst_conn: Option<String>,
    /// Write-conflict resolution for accumulating writes.
    pub wcr: Option<Wcr>,
}

impl Memlet {
    /// Memlet moving `subset` of `data` with no connectors.
    pub fn new(data: impl Into<String>, subset: Subset) -> Self {
        Memlet {
            data: data.into(),
            subset,
            src_conn: None,
            dst_conn: None,
            wcr: None,
        }
    }

    /// Sets the destination connector (input port of the consumer).
    pub fn to_conn(mut self, conn: impl Into<String>) -> Self {
        self.dst_conn = Some(conn.into());
        self
    }

    /// Sets the source connector (output port of the producer).
    pub fn from_conn(mut self, conn: impl Into<String>) -> Self {
        self.src_conn = Some(conn.into());
        self
    }

    /// Attaches a write-conflict resolution operator.
    pub fn with_wcr(mut self, wcr: Wcr) -> Self {
        self.wcr = Some(wcr);
        self
    }

    /// Data volume moved across this edge, in elements — the edge capacity
    /// used by the minimum input-flow cut (paper Sec. 4.1: "the edges in a
    /// dataflow graph ... have a certain data volume associated with them").
    pub fn volume(&self) -> SymExpr {
        self.subset.volume()
    }

    /// Renames a symbol (e.g. a map parameter) in the subset.
    pub fn substitute(&self, name: &str, value: &SymExpr) -> Memlet {
        Memlet {
            data: self.data.clone(),
            subset: self.subset.substitute(name, value),
            src_conn: self.src_conn.clone(),
            dst_conn: self.dst_conn.clone(),
            wcr: self.wcr,
        }
    }
}

impl fmt::Display for Memlet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.data, self.subset)?;
        if let Some(w) = self.wcr {
            write!(f, " (wcr: {w})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzyflow_sym::{sym, Bindings, SymRange};

    #[test]
    fn volume_of_subregion() {
        let m = Memlet::new(
            "A",
            Subset::new(vec![
                SymRange::span(SymExpr::Int(0), sym("N")),
                SymRange::index(sym("j")),
            ]),
        );
        let b = Bindings::from_pairs([("N", 10), ("j", 3)]);
        assert_eq!(m.volume().eval(&b).unwrap(), 10);
    }

    #[test]
    fn substitution_renames_params() {
        let m = Memlet::new("A", Subset::at(vec![sym("i")])).to_conn("a");
        let m2 = m.substitute("i", &SymExpr::Int(5));
        let b = Bindings::new();
        let c = m2.subset.concrete(&b).unwrap();
        assert_eq!(c.dims[0].start, 5);
        assert_eq!(m2.dst_conn.as_deref(), Some("a"));
    }

    #[test]
    fn display_includes_wcr() {
        let m = Memlet::new("C", Subset::at(vec![sym("i")])).with_wcr(Wcr::Sum);
        assert_eq!(m.to_string(), "C[i] (wcr: sum)");
    }
}
