//! Dataflow graph node kinds.

use crate::dataflow::Dataflow;
use crate::memlet::Wcr;
use crate::tasklet::Tasklet;
use fuzzyflow_sym::SymRange;
use std::fmt;

/// Memory space of a data container. `Device` models accelerator memory for
/// the GPU-kernel-extraction case study (paper Sec. 6.4): device containers
/// may only be touched by `GpuKernel`-scheduled maps and explicit copies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Storage {
    Host,
    Device,
}

/// Execution schedule of a map scope.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Schedule {
    /// Ordinary sequential loop nest.
    Sequential,
    /// Parallel loop (iterations independent up to WCR).
    Parallel,
    /// Simulated GPU kernel: body may only access `Storage::Device` data.
    GpuKernel,
}

/// A parametric map scope: a (possibly multi-dimensional) parallel loop
/// whose body is a nested dataflow graph (paper Sec. 2.3: "constructs like
/// for-loops are expressed with special scope nodes, where their loop body
/// forms a nested dataflow graph inside of them").
#[derive(Clone, Debug)]
pub struct MapScope {
    /// Iteration parameter names, one per dimension.
    pub params: Vec<String>,
    /// Iteration ranges, one per parameter.
    pub ranges: Vec<SymRange>,
    /// Execution schedule.
    pub schedule: Schedule,
    /// The loop body.
    pub body: Dataflow,
}

/// Simulated distributed-communication operations (paper Sec. 6.2): these
/// are the library nodes a cutout must *not* contain for single-node
/// testing to be possible.
#[derive(Clone, Debug, PartialEq)]
pub enum CommOp {
    /// Element-wise reduction across all ranks; result replicated.
    AllReduce(Wcr),
    /// Concatenation of each rank's buffer along axis 0 into the output.
    AllGather,
    /// Root rank's buffer replicated to all ranks.
    Broadcast { root: i64 },
}

impl fmt::Display for CommOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommOp::AllReduce(w) => write!(f, "allreduce({w})"),
            CommOp::AllGather => write!(f, "allgather"),
            CommOp::Broadcast { root } => write!(f, "broadcast(root={root})"),
        }
    }
}

/// Coarse-grained library operations (the stand-in for BLAS/MKL calls in
/// the paper's workloads).
#[derive(Clone, Debug, PartialEq)]
pub enum LibraryOp {
    /// `C = A @ B`. 2-D operands perform a plain GEMM; 3-D operands perform
    /// a batched GEMM over the leading dimension. Connectors: `A`, `B` in,
    /// `C` out.
    MatMul,
    /// `out = in^T` (2-D). Connectors: `in`, `out`.
    Transpose,
    /// Reduction of `in` over `axis` with operator `op`. Connectors:
    /// `in`, `out`.
    Reduce { op: Wcr, axis: usize },
    /// Subset-to-subset copy between two containers (used e.g. for
    /// host<->device transfers). Connectors: `in`, `out`.
    Copy,
    /// Numerically stable softmax over the last axis. Connectors:
    /// `in`, `out`.
    Softmax,
    /// Distributed collective. Connectors: `in`, `out`.
    Comm(CommOp),
}

impl LibraryOp {
    /// Input connector names this operation requires.
    pub fn input_conns(&self) -> Vec<&'static str> {
        match self {
            LibraryOp::MatMul => vec!["A", "B"],
            _ => vec!["in"],
        }
    }

    /// Output connector names this operation provides.
    pub fn output_conns(&self) -> Vec<&'static str> {
        match self {
            LibraryOp::MatMul => vec!["C"],
            _ => vec!["out"],
        }
    }

    /// True for communication collectives (paper Sec. 6.2).
    pub fn is_comm(&self) -> bool {
        matches!(self, LibraryOp::Comm(_))
    }
}

/// A library node: a named instance of a [`LibraryOp`].
#[derive(Clone, Debug, PartialEq)]
pub struct LibraryNode {
    pub name: String,
    pub op: LibraryOp,
}

/// A node of a dataflow graph.
#[derive(Clone, Debug)]
pub enum DfNode {
    /// An access point of a named data container. Edges out of it read the
    /// container; edges into it write the container.
    Access(String),
    /// A fine-grained computation.
    Tasklet(Tasklet),
    /// A parametric loop scope with a nested body.
    Map(MapScope),
    /// A coarse-grained library operation.
    Library(LibraryNode),
}

impl DfNode {
    /// Short human-readable label for diagnostics.
    pub fn label(&self) -> String {
        match self {
            DfNode::Access(d) => format!("access({d})"),
            DfNode::Tasklet(t) => format!("tasklet({})", t.name),
            DfNode::Map(m) => format!("map[{}]", m.params.join(",")),
            DfNode::Library(l) => format!("lib({})", l.name),
        }
    }

    /// Container name if this is an access node.
    pub fn as_access(&self) -> Option<&str> {
        match self {
            DfNode::Access(d) => Some(d),
            _ => None,
        }
    }

    /// True if this node is an access node.
    pub fn is_access(&self) -> bool {
        matches!(self, DfNode::Access(_))
    }

    /// Map scope accessor.
    pub fn as_map(&self) -> Option<&MapScope> {
        match self {
            DfNode::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable map scope accessor.
    pub fn as_map_mut(&mut self) -> Option<&mut MapScope> {
        match self {
            DfNode::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Tasklet accessor.
    pub fn as_tasklet(&self) -> Option<&Tasklet> {
        match self {
            DfNode::Tasklet(t) => Some(t),
            _ => None,
        }
    }

    /// Library accessor.
    pub fn as_library(&self) -> Option<&LibraryNode> {
        match self {
            DfNode::Library(l) => Some(l),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_connectors() {
        assert_eq!(LibraryOp::MatMul.input_conns(), vec!["A", "B"]);
        assert_eq!(LibraryOp::MatMul.output_conns(), vec!["C"]);
        assert_eq!(LibraryOp::Copy.input_conns(), vec!["in"]);
        assert!(LibraryOp::Comm(CommOp::AllGather).is_comm());
        assert!(!LibraryOp::Softmax.is_comm());
    }

    #[test]
    fn labels() {
        assert_eq!(DfNode::Access("A".into()).label(), "access(A)");
        let t = crate::tasklet::Tasklet::simple(
            "t0",
            vec![],
            "o",
            crate::tasklet::ScalarExpr::f64(1.0),
        );
        assert_eq!(DfNode::Tasklet(t).label(), "tasklet(t0)");
    }
}
