//! Data container descriptors.

use crate::dtype::DType;
use crate::node::Storage;
use fuzzyflow_sym::{Bindings, SymError, SymExpr};

/// Descriptor of a data container (array or scalar).
///
/// The *parametric* property central to the paper (Sec. 2.1): `shape` holds
/// symbolic expressions, so a container's size is always expressible in
/// terms of program parameters (e.g. `[N, N]`), never an opaque pointer.
#[derive(Clone, Debug, PartialEq)]
pub struct DataDesc {
    /// Element type.
    pub dtype: DType,
    /// Per-dimension symbolic sizes; empty shape denotes a scalar.
    pub shape: Vec<SymExpr>,
    /// Transient containers are managed by the program and cannot be
    /// observed from outside (paper Sec. 3.1 *external data analysis*:
    /// everything non-transient is potentially external/persistent state).
    pub transient: bool,
    /// Memory space the container lives in (host or simulated device).
    pub storage: Storage,
}

impl DataDesc {
    /// An array descriptor with the given element type and symbolic shape.
    pub fn array(dtype: DType, shape: Vec<SymExpr>) -> Self {
        DataDesc {
            dtype,
            shape,
            transient: false,
            storage: Storage::Host,
        }
    }

    /// A scalar descriptor.
    pub fn scalar(dtype: DType) -> Self {
        DataDesc {
            dtype,
            shape: Vec::new(),
            transient: false,
            storage: Storage::Host,
        }
    }

    /// Marks the container transient (program-managed).
    pub fn transient(mut self) -> Self {
        self.transient = true;
        self
    }

    /// Places the container in the given storage.
    pub fn in_storage(mut self, storage: Storage) -> Self {
        self.storage = storage;
        self
    }

    /// Number of dimensions (0 for scalars).
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// True if this is a scalar container.
    pub fn is_scalar(&self) -> bool {
        self.shape.is_empty()
    }

    /// Total element count as a symbolic expression.
    pub fn total_size(&self) -> SymExpr {
        let mut e = SymExpr::Int(1);
        for d in &self.shape {
            e = e * d.clone();
        }
        e.simplify()
    }

    /// Total size in bytes as a symbolic expression.
    pub fn total_bytes(&self) -> SymExpr {
        (self.total_size() * SymExpr::Int(self.dtype.size_bytes() as i64)).simplify()
    }

    /// Concrete per-dimension sizes under bindings.
    pub fn concrete_shape(&self, b: &Bindings) -> Result<Vec<i64>, SymError> {
        self.shape.iter().map(|d| d.eval(b)).collect()
    }

    /// Row-major strides for a concrete shape.
    pub fn strides_for(shape: &[i64]) -> Vec<i64> {
        let mut strides = vec![1i64; shape.len()];
        for i in (0..shape.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * shape[i + 1];
        }
        strides
    }

    /// Linearizes a concrete multi-index into a row-major element offset,
    /// checking bounds. Returns `None` when out of bounds — the interpreter
    /// turns this into a *crash* verdict, which is one of the system-state
    /// changes differential testing looks for (paper Sec. 5.1).
    pub fn linearize(shape: &[i64], point: &[i64]) -> Option<usize> {
        if shape.len() != point.len() {
            return None;
        }
        let mut off = 0i64;
        let mut stride = 1i64;
        for d in (0..shape.len()).rev() {
            let p = point[d];
            if p < 0 || p >= shape[d] {
                return None;
            }
            off += p * stride;
            stride *= shape[d];
        }
        Some(off as usize)
    }

    /// Free symbols referenced by the shape.
    pub fn shape_symbols(&self) -> Vec<String> {
        let mut v = Vec::new();
        for d in &self.shape {
            for s in d.free_symbols() {
                if !v.contains(&s) {
                    v.push(s);
                }
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzyflow_sym::sym;

    #[test]
    fn total_size_symbolic() {
        let d = DataDesc::array(DType::F64, vec![sym("N"), sym("M")]);
        let b = Bindings::from_pairs([("N", 3), ("M", 4)]);
        assert_eq!(d.total_size().eval(&b).unwrap(), 12);
        assert_eq!(d.total_bytes().eval(&b).unwrap(), 96);
    }

    #[test]
    fn scalar_properties() {
        let d = DataDesc::scalar(DType::I64);
        assert!(d.is_scalar());
        assert_eq!(d.rank(), 0);
        assert_eq!(d.total_size().as_int(), Some(1));
    }

    #[test]
    fn linearize_row_major() {
        let shape = [2i64, 3, 4];
        assert_eq!(DataDesc::linearize(&shape, &[0, 0, 0]), Some(0));
        assert_eq!(DataDesc::linearize(&shape, &[0, 0, 3]), Some(3));
        assert_eq!(DataDesc::linearize(&shape, &[0, 1, 0]), Some(4));
        assert_eq!(DataDesc::linearize(&shape, &[1, 2, 3]), Some(23));
    }

    #[test]
    fn linearize_detects_oob() {
        let shape = [2i64, 3];
        assert_eq!(DataDesc::linearize(&shape, &[2, 0]), None);
        assert_eq!(DataDesc::linearize(&shape, &[-1, 0]), None);
        assert_eq!(DataDesc::linearize(&shape, &[0, 3]), None);
        assert_eq!(DataDesc::linearize(&shape, &[0]), None);
    }

    #[test]
    fn strides() {
        assert_eq!(DataDesc::strides_for(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(DataDesc::strides_for(&[5]), vec![1]);
        assert!(DataDesc::strides_for(&[]).is_empty());
    }

    #[test]
    fn shape_symbols_dedup() {
        let d = DataDesc::array(DType::F32, vec![sym("N"), sym("N*M")]);
        assert_eq!(d.shape_symbols(), vec!["N".to_string(), "M".to_string()]);
    }
}
