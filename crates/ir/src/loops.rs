//! Canonical state-machine loop construction handles and detection.
//!
//! The builder emits loops in a canonical guard/body/exit pattern (see
//! [`crate::builder::SdfgBuilder::for_loop`]); transformations that operate
//! on loops (loop unrolling, Sec. 6.4) detect that pattern here.

use crate::sdfg::{CmpOp, CondExpr, InterstateEdge, Sdfg, StateId};
use fuzzyflow_graph::EdgeId;
use fuzzyflow_sym::{Bindings, SymExpr};

/// Handle returned when building a loop: the states and edges involved.
#[derive(Clone, Debug)]
pub struct LoopHandle {
    pub guard: StateId,
    pub body: StateId,
    pub exit: StateId,
    pub var: String,
    pub init_edge: EdgeId,
    pub enter_edge: EdgeId,
    pub back_edge: EdgeId,
    pub exit_edge: EdgeId,
}

/// A detected canonical loop.
#[derive(Clone, Debug)]
pub struct LoopInfo {
    pub guard: StateId,
    /// Body states in control-flow order (entry first).
    pub body: Vec<StateId>,
    pub exit: StateId,
    /// Iteration variable.
    pub var: String,
    /// Initial value assigned on the init edge.
    pub start: SymExpr,
    /// Bound used in the guard condition.
    pub end: SymExpr,
    /// Comparison of the enter condition (`var <op> end`).
    pub cmp: CmpOp,
    /// Increment applied on the back edge (may be negative).
    pub step: SymExpr,
    pub init_edge: EdgeId,
    pub enter_edge: EdgeId,
    pub back_edge: EdgeId,
    pub exit_edge: EdgeId,
}

impl LoopInfo {
    /// The exact number of iterations under concrete bindings (correct for
    /// inclusive `<=`/`>=` bounds with positive or negative step), or
    /// `None` when the loop does not terminate / bindings are missing.
    pub fn trip_count(&self, b: &Bindings) -> Option<i64> {
        let start = self.start.eval(b).ok()?;
        let end = self.end.eval(b).ok()?;
        let step = self.step.eval(b).ok()?;
        if step == 0 {
            return None;
        }
        let span = match self.cmp {
            CmpOp::Le => end - start,
            CmpOp::Ge => end - start,
            CmpOp::Lt => end - start - 1,
            CmpOp::Gt => end - start + 1,
            _ => return None,
        };
        // Number of taken iterations: floor(span / step) + 1, clamped at 0.
        if (step > 0 && span < 0) || (step < 0 && span > 0) {
            return Some(0);
        }
        Some(span.div_euclid(step) + 1)
    }
}

/// Extracts `(var, start)` from an init-style edge with one assignment.
fn single_assignment(e: &InterstateEdge) -> Option<(&str, &SymExpr)> {
    match e.assignments.as_slice() {
        [(var, value)] => Some((var.as_str(), value)),
        _ => None,
    }
}

/// Tries to detect the canonical loop pattern with `guard` as loop guard.
///
/// Pattern requirements:
/// * `guard` has exactly two outgoing edges: an *enter* edge with condition
///   `var <cmp> end` and an *exit* edge with the negated condition;
/// * the body is a linear chain of states leading back to `guard` via a
///   *back edge* assigning `var = var + step`;
/// * `guard` has exactly one other incoming edge (the *init* edge)
///   assigning `var = start`.
pub fn detect_loop(sdfg: &Sdfg, guard: StateId) -> Option<LoopInfo> {
    let out: Vec<EdgeId> = sdfg.states.out_edge_ids(guard).to_vec();
    if out.len() != 2 {
        return None;
    }
    // Identify enter edge: condition Cmp(var, end) where negation matches
    // the other edge.
    let (enter_edge, exit_edge) = {
        let classify = |e: EdgeId| -> Option<(String, CmpOp, SymExpr)> {
            let edge = sdfg.states.edge(e);
            if !edge.assignments.is_empty() {
                return None;
            }
            if let CondExpr::Cmp(op, lhs, rhs) = &edge.condition {
                if matches!(op, CmpOp::Le | CmpOp::Lt | CmpOp::Ge | CmpOp::Gt) {
                    if let Some(var) = lhs.as_sym() {
                        return Some((var.to_string(), *op, rhs.clone()));
                    }
                }
            }
            None
        };
        match (classify(out[0]), classify(out[1])) {
            (Some((v0, op0, _)), Some((v1, op1, _))) if v0 == v1 => {
                // The edge whose op is "continue" style (Le/Lt for ascending,
                // Ge/Gt for descending) paired with its negation. Pick the
                // one whose negation equals the other's op.
                let neg_matches = |a: CmpOp, b: CmpOp| {
                    matches!(
                        (a, b),
                        (CmpOp::Le, CmpOp::Gt)
                            | (CmpOp::Lt, CmpOp::Ge)
                            | (CmpOp::Ge, CmpOp::Lt)
                            | (CmpOp::Gt, CmpOp::Le)
                    )
                };
                if neg_matches(op0, op1) {
                    // Heuristic: the enter edge is the one leading into the
                    // body chain that comes back to the guard. Try out[0]
                    // first; fall back to out[1].
                    if trace_body(sdfg, guard, sdfg.states.dst(out[0])).is_some() {
                        (out[0], out[1])
                    } else {
                        (out[1], out[0])
                    }
                } else {
                    return None;
                }
            }
            _ => return None,
        }
    };

    let (var, cmp, end) = {
        let edge = sdfg.states.edge(enter_edge);
        match &edge.condition {
            CondExpr::Cmp(op, lhs, rhs) => (lhs.as_sym()?.to_string(), *op, rhs.clone()),
            _ => return None,
        }
    };

    let body = trace_body(sdfg, guard, sdfg.states.dst(enter_edge))?;
    let tail = *body.last()?;
    let back_edge = *sdfg
        .states
        .out_edge_ids(tail)
        .iter()
        .find(|&&e| sdfg.states.dst(e) == guard)?;
    let (bvar, bval) = single_assignment(sdfg.states.edge(back_edge))?;
    if bvar != var {
        return None;
    }
    // Increment must be var + step.
    let step = (bval.clone() - SymExpr::sym(&var)).simplify();
    if step.references(&var) {
        return None;
    }

    // Init edge: the only other incoming edge of the guard.
    let init_edge = *sdfg
        .states
        .in_edge_ids(guard)
        .iter()
        .find(|&&e| e != back_edge)?;
    if sdfg.states.in_edge_ids(guard).len() != 2 {
        return None;
    }
    let (ivar, start) = single_assignment(sdfg.states.edge(init_edge))?;
    if ivar != var {
        return None;
    }

    Some(LoopInfo {
        guard,
        body,
        exit: sdfg.states.dst(exit_edge),
        var,
        start: start.clone(),
        end,
        cmp,
        step,
        init_edge,
        enter_edge,
        back_edge,
        exit_edge,
    })
}

/// Follows the linear chain of states from `entry` until an edge returns to
/// `guard`. Returns the chain, or `None` if the walk branches or escapes.
fn trace_body(sdfg: &Sdfg, guard: StateId, entry: StateId) -> Option<Vec<StateId>> {
    let mut chain = vec![entry];
    let mut current = entry;
    for _ in 0..sdfg.states.node_count() + 1 {
        let out = sdfg.states.out_edge_ids(current);
        if out.len() != 1 {
            return None;
        }
        let next = sdfg.states.dst(out[0]);
        if next == guard {
            return Some(chain);
        }
        chain.push(next);
        current = next;
    }
    None
}

/// Detects every canonical loop in the program.
pub fn detect_all_loops(sdfg: &Sdfg) -> Vec<LoopInfo> {
    sdfg.states
        .node_ids()
        .filter_map(|st| detect_loop(sdfg, st))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SdfgBuilder;
    use fuzzyflow_sym::sym;

    #[test]
    fn detects_builder_loop() {
        let mut b = SdfgBuilder::new("p");
        b.symbol("N");
        let lh = b.for_loop(
            b.start(),
            "i",
            SymExpr::Int(0),
            sym("N") - SymExpr::Int(1),
            1,
            "l",
        );
        let s = b.build();
        let info = detect_loop(&s, lh.guard).expect("loop detected");
        assert_eq!(info.var, "i");
        assert_eq!(info.step.as_int(), Some(1));
        assert_eq!(info.body, vec![lh.body]);
        assert_eq!(info.exit, lh.exit);
        let bind = Bindings::from_pairs([("N", 10)]);
        assert_eq!(info.trip_count(&bind), Some(10));
    }

    #[test]
    fn detects_negative_step_loop() {
        let mut b = SdfgBuilder::new("p");
        let lh = b.for_loop(b.start(), "i", SymExpr::Int(4), SymExpr::Int(1), -1, "down");
        let s = b.build();
        let info = detect_loop(&s, lh.guard).expect("loop detected");
        assert_eq!(info.step.as_int(), Some(-1));
        assert_eq!(info.cmp, CmpOp::Ge);
        assert_eq!(info.trip_count(&Bindings::new()), Some(4));
    }

    #[test]
    fn trip_count_zero_iterations() {
        let mut b = SdfgBuilder::new("p");
        let lh = b.for_loop(b.start(), "i", SymExpr::Int(5), SymExpr::Int(1), 1, "l");
        let s = b.build();
        let info = detect_loop(&s, lh.guard).unwrap();
        assert_eq!(info.trip_count(&Bindings::new()), Some(0));
    }

    #[test]
    fn non_loop_states_do_not_match() {
        let mut b = SdfgBuilder::new("p");
        let st = b.add_state_after(b.start(), "next");
        let s = b.build();
        assert!(detect_loop(&s, s.start).is_none());
        assert!(detect_loop(&s, st).is_none());
    }

    #[test]
    fn detect_all_finds_nested_sequence() {
        let mut b = SdfgBuilder::new("p");
        b.symbol("N");
        let l1 = b.for_loop(b.start(), "i", SymExpr::Int(0), sym("N"), 1, "a");
        let _l2 = b.for_loop(l1.exit, "j", SymExpr::Int(0), sym("N"), 1, "b");
        let s = b.build();
        let loops = detect_all_loops(&s);
        assert_eq!(loops.len(), 2);
    }

    #[test]
    fn multi_state_body_chain() {
        let mut b = SdfgBuilder::new("p");
        b.symbol("N");
        let lh = b.for_loop(b.start(), "i", SymExpr::Int(0), sym("N"), 1, "l");
        // Splice an extra state into the body: body -> extra -> guard.
        let sdfg = b.sdfg_mut();
        let extra = sdfg.add_state("extra");
        // Redirect the back edge: body -> extra, extra -> guard with the
        // original assignment.
        let back = sdfg.states.edge(lh.back_edge).clone();
        sdfg.states.remove_edge(lh.back_edge);
        sdfg.add_interstate_edge(lh.body, extra, InterstateEdge::always());
        sdfg.add_interstate_edge(extra, lh.guard, back);
        let s = b.build();
        let info = detect_loop(&s, lh.guard).expect("loop detected");
        assert_eq!(info.body.len(), 2);
    }
}
